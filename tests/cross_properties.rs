//! Cross-crate property tests: invariants of full episodes and of the
//! backend-equivalence contract, under randomized cohorts and models.

use proptest::prelude::*;

use sbgt_repro::sbgt::prelude::*;
use sbgt_repro::sbgt::ExecMode;
use sbgt_repro::sbgt_lattice::kernels::ParConfig;
use sbgt_repro::sbgt_sim::runner::EpisodeConfig;
use sbgt_repro::sbgt_sim::{run_episode, Population, RiskProfile};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Episode bookkeeping invariants hold for arbitrary cohorts/seeds.
    #[test]
    fn episode_invariants(
        n in 4usize..10,
        p in 0.01f64..0.3,
        seed in 0u64..500,
    ) {
        let profile = RiskProfile::Flat { n, p };
        let pop = Population::sample(&profile, seed);
        let model = BinaryDilutionModel::pcr_like();
        let r = run_episode(&pop, &model, &EpisodeConfig::standard(seed));

        // Accounting: history length is the test count; confusion covers
        // the whole cohort; stages never exceed tests.
        prop_assert_eq!(r.stats.tests, r.history.len());
        prop_assert_eq!(r.confusion.total(), n);
        prop_assert!(r.stats.stages <= r.stats.tests.max(1));
        prop_assert_eq!(r.stats.subjects, n);
        prop_assert_eq!(r.marginals.len(), n);
        for &m in &r.marginals {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
        }
        // Classification is consistent with the final marginals.
        for (i, s) in r.classification.statuses.iter().enumerate() {
            match s {
                SubjectStatus::Positive => prop_assert!(r.marginals[i] >= 0.99 - 1e-9),
                SubjectStatus::Negative => prop_assert!(r.marginals[i] <= 0.01 + 1e-9),
                SubjectStatus::Undetermined => {}
            }
        }
        // Every tested pool was non-empty and within the cohort.
        for (pool, _) in &r.history {
            prop_assert!(!pool.is_empty());
            prop_assert!(pool.is_subset_of(State::full(n)));
        }
    }

    /// Serial and parallel sessions remain bit-compatible (to reduction
    /// tolerance) over random observation sequences.
    #[test]
    fn backend_equivalence(
        n in 3usize..9,
        seed in 0u64..200,
        steps in 1usize..6,
    ) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let risks: Vec<f64> = (0..n).map(|_| 0.01 + (next() % 40) as f64 / 100.0).collect();
        let model = BinaryDilutionModel::pcr_like();
        let mut serial = SbgtSession::new(
            Prior::from_risks(&risks),
            model,
            SbgtConfig::default().serial(),
        );
        let mut parallel = SbgtSession::new(
            Prior::from_risks(&risks),
            model,
            SbgtConfig {
                exec: ExecMode::Parallel(ParConfig { chunk_len: 7, threshold: 0 }),
                ..SbgtConfig::default()
            },
        );
        for _ in 0..steps {
            let mask = (next() as u64 % ((1 << n) - 1)) + 1; // non-empty
            let pool = State(mask);
            let outcome = next() % 2 == 0;
            let a = serial.observe(pool, outcome);
            let b = parallel.observe(pool, outcome);
            match (a, b) {
                (Ok(za), Ok(zb)) => prop_assert!(close(za, zb)),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (a, b) => prop_assert!(false, "backends diverged: {a:?} vs {b:?}"),
            }
        }
        for (a, b) in serial.marginals().iter().zip(parallel.marginals()) {
            prop_assert!(close(*a, b));
        }
    }

    /// With a perfect assay, the sequential procedure always terminates
    /// with an exactly correct classification and at most one test per
    /// subject plus a logarithmic overhead.
    #[test]
    fn perfect_assay_is_exact(
        n in 4usize..10,
        truth_bits in any::<u64>(),
    ) {
        let truth = State(truth_bits & ((1 << n) - 1));
        let profile = RiskProfile::Flat { n, p: 0.2 };
        let pop = Population::with_truth(&profile, truth);
        let model = BinaryDilutionModel::perfect();
        let r = run_episode(&pop, &model, &EpisodeConfig::standard(1));
        prop_assert!(r.classification.is_terminal());
        prop_assert_eq!(r.confusion.fp, 0);
        prop_assert_eq!(r.confusion.fn_, 0);
        prop_assert_eq!(r.confusion.tp, truth.rank() as usize);
        // Binary search information bound: a perfect strategy needs at
        // most n + |truth| * ceil(log2 n) + slack tests.
        let log_n = (n as f64).log2().ceil() as usize;
        let bound = n + (truth.rank() as usize + 1) * (log_n + 1);
        prop_assert!(
            r.stats.tests <= bound,
            "tests {} exceed bound {bound} (n={n}, truth {truth})",
            r.stats.tests
        );
    }
}
