//! Cross-crate integration tests: full pipelines spanning the engine,
//! lattice, response, Bayes, selection, simulation, and session layers.

use sbgt_repro::sbgt::prelude::*;
use sbgt_repro::sbgt::{ExecMode, ShardedPosterior};
use sbgt_repro::sbgt_engine::{Engine, EngineConfig};
use sbgt_repro::sbgt_lattice::kernels::ParConfig;
use sbgt_repro::sbgt_sim::runner::{EpisodeConfig, SelectionMethod};
use sbgt_repro::sbgt_sim::{run_dorfman, run_episode, run_individual, Population, RiskProfile};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
}

/// The three execution backends (serial kernels, rayon kernels, engine
/// dataflow) must produce identical posteriors for an identical
/// observation sequence.
#[test]
fn all_three_backends_agree_end_to_end() {
    let risks = [0.02, 0.08, 0.01, 0.15, 0.05, 0.03, 0.11, 0.07, 0.02, 0.04];
    let model = BinaryDilutionModel::pcr_like();
    let observations = [
        (State::from_subjects([0, 1, 2, 3, 4]), false),
        (State::from_subjects([5, 6, 7]), true),
        (State::from_subjects([5]), false),
        (State::from_subjects([6, 7]), true),
    ];

    let mut serial = SbgtSession::new(
        Prior::from_risks(&risks),
        model,
        SbgtConfig::default().serial(),
    );
    let mut parallel = SbgtSession::new(
        Prior::from_risks(&risks),
        model,
        SbgtConfig {
            exec: ExecMode::Parallel(ParConfig {
                chunk_len: 33,
                threshold: 0,
            }),
            ..SbgtConfig::default()
        },
    );
    let engine = Engine::new(EngineConfig::default().with_threads(2));
    let mut sharded = ShardedPosterior::from_dense(&Prior::from_risks(&risks).to_dense(), 6);

    for (pool, outcome) in observations {
        let zs = serial.observe(pool, outcome).unwrap();
        let zp = parallel.observe(pool, outcome).unwrap();
        let ze = sharded.update(&engine, &model, pool, outcome).unwrap();
        assert!(close(zs, zp), "{zs} vs {zp}");
        assert!(close(zs, ze), "{zs} vs {ze}");
    }

    let ms = serial.marginals();
    let mp = parallel.marginals();
    let me = sharded.marginals(&engine);
    for i in 0..risks.len() {
        assert!(close(ms[i], mp[i]));
        assert!(close(ms[i], me[i]));
    }

    // Selections agree too.
    let ss = serial.select_next().unwrap();
    let sp = parallel.select_next().unwrap();
    assert_eq!(ss.pool, sp.pool);
    // Sharded prefix masses are unnormalized; normalize by the total.
    let masses = sharded.prefix_negative_masses(&engine, &serial.eligible_order());
    assert!(close(
        masses[ss.pool.rank() as usize] / masses[0],
        ss.negative_mass
    ));
}

/// The SBGT session and the baseline framework must classify identically
/// (same math, different cost model) against the same deterministic lab.
#[test]
fn sbgt_and_baseline_classify_identically() {
    let risks = [0.03, 0.07, 0.02, 0.12, 0.05, 0.08, 0.01];
    let truth = State::from_subjects([3, 5]);
    let model = BinaryDilutionModel::perfect();

    let mut fast = SbgtSession::new(
        Prior::from_risks(&risks),
        model,
        SbgtConfig::default().serial(),
    );
    let fast_out = fast.run_to_classification(|pool| truth.intersects(pool));

    let mut base = BaselineSession::new(
        Prior::from_risks(&risks),
        model,
        SbgtConfig::default().serial(),
    );
    let base_out = base.run_to_classification(|pool| truth.intersects(pool));

    assert_eq!(
        fast_out.classification.statuses,
        base_out.classification.statuses
    );
    assert_eq!(fast_out.tests, base_out.tests);
    // Both must be exactly right with a perfect assay.
    for (i, s) in fast_out.classification.statuses.iter().enumerate() {
        let expected = if truth.contains(i) {
            SubjectStatus::Positive
        } else {
            SubjectStatus::Negative
        };
        assert_eq!(*s, expected, "subject {i}");
    }
}

/// Group testing dominates individual testing in assay count at low
/// prevalence, and Dorfman sits in between — the classical ordering the
/// paper's efficiency experiments rest on.
#[test]
fn efficiency_ordering_holds_at_low_prevalence() {
    let profile = RiskProfile::Flat { n: 16, p: 0.01 };
    let model = BinaryDilutionModel::perfect();
    let reps = 20;
    let (mut bha, mut dorf, mut indiv) = (0usize, 0usize, 0usize);
    for seed in 0..reps {
        let pop = Population::sample(&profile, 7000 + seed);
        bha += run_episode(&pop, &model, &EpisodeConfig::standard(seed))
            .stats
            .tests;
        dorf += run_dorfman(&pop, &model, 8, seed).stats.tests;
        indiv += run_individual(&pop, &model, seed).stats.tests;
    }
    assert!(bha < dorf, "BHA {bha} !< Dorfman {dorf}");
    assert!(dorf < indiv, "Dorfman {dorf} !< individual {indiv}");
}

/// Exhaustive halving (ground truth) never classifies worse than the fast
/// prefix rule with a perfect assay, and both terminate.
#[test]
fn selection_methods_all_terminate_correctly() {
    let profile = RiskProfile::Flat { n: 8, p: 0.1 };
    let model = BinaryDilutionModel::perfect();
    for seed in 0..6 {
        let pop = Population::sample(&profile, 300 + seed);
        for selection in [
            SelectionMethod::HalvingPrefix,
            SelectionMethod::HalvingExhaustive,
            SelectionMethod::Lookahead { width: 2 },
        ] {
            let cfg = EpisodeConfig {
                selection,
                ..EpisodeConfig::standard(seed)
            };
            let r = run_episode(&pop, &model, &cfg);
            assert!(r.classification.is_terminal(), "{selection:?} seed {seed}");
            assert_eq!(
                r.confusion.accuracy(),
                1.0,
                "{selection:?} seed {seed}: perfect assay must classify perfectly"
            );
        }
    }
}

/// The session's evidence stream reconstructs the joint likelihood of the
/// observation sequence (chain rule), independent of backend.
#[test]
fn evidence_chain_rule() {
    let risks = [0.1, 0.2, 0.05];
    let model = BinaryDilutionModel::pcr_like();
    let observations = [
        (State::from_subjects([0, 1]), true),
        (State::from_subjects([2]), false),
        (State::from_subjects([0]), true),
    ];
    let mut session = SbgtSession::new(
        Prior::from_risks(&risks),
        model,
        SbgtConfig::default().serial(),
    );
    let mut joint = 1.0;
    for (pool, outcome) in observations {
        joint *= session.observe(pool, outcome).unwrap();
    }
    // Recompute the joint likelihood by brute force over all states.
    let prior = Prior::from_risks(&risks).to_dense();
    let mut brute = 0.0;
    for idx in 0..prior.len() {
        let s = State(idx as u64);
        let mut lik = prior.get(s);
        for (pool, outcome) in observations {
            lik *= model.likelihood(outcome, s.positives_in(pool), pool.rank());
        }
        brute += lik;
    }
    assert!(close(joint, brute), "chain {joint} vs brute {brute}");
}

/// Heterogeneous risk: with enough low-risk subjects to reach the halving
/// mass on their own, the rule pools low-risk subjects and leaves the
/// high-risk contacts for individual-ish follow-up. (With too few low-risk
/// subjects the optimal pool legitimately extends into the high-risk
/// group — the mass, not the labels, drives the rule.)
#[test]
fn halving_pools_low_risk_subjects_first() {
    // 0.95^12 ≈ 0.54 is the closest achievable mass to 1/2 and uses only
    // low-risk subjects; adding a 0.4-risk contact would overshoot to 0.32.
    let prior = Prior::from_groups(&[(12, 0.05), (2, 0.4)]);
    let session = SbgtSession::new(
        prior,
        BinaryDilutionModel::pcr_like(),
        SbgtConfig::default().serial(),
    );
    let sel = session.select_next().unwrap();
    assert_eq!(sel.pool, State::from_subjects(0..12));
    assert!((sel.negative_mass - 0.95f64.powi(12)).abs() < 1e-9);
}

use sbgt_repro::sbgt_response::ResponseModel;

/// Continuous (viral-load) outcomes flow through the same lattice update
/// path and concentrate the posterior on the right state.
#[test]
fn continuous_outcomes_classify() {
    let model = GaussianResponse::pcr_like();
    let mut post = Prior::flat(6, 0.1).to_dense();
    let truth = State::from_subjects([2]);
    // Simulate noiseless-mean outcomes for a few pools.
    let pools = [
        State::from_subjects([0, 1, 2]),
        State::from_subjects([2, 3]),
        State::from_subjects([4, 5]),
        State::from_subjects([2]),
    ];
    for pool in pools {
        let y = model.mean(truth.positives_in(pool), pool.rank());
        sbgt_repro::sbgt_bayes::update_dense(
            &mut post,
            &model,
            &sbgt_repro::sbgt_bayes::Observation::new(pool, y),
        )
        .unwrap();
    }
    let m = post.marginals();
    assert!(m[2] > 0.99, "subject 2 marginal {}", m[2]);
    for (i, &mi) in m.iter().enumerate() {
        if i != 2 {
            assert!(mi < 0.2, "subject {i} marginal {mi}");
        }
    }
}
