//! Fixed-seed regression tests: pin down concrete numbers so refactors
//! that silently change semantics (kernel order, RNG consumption, selection
//! tie-breaks) are caught immediately.

use sbgt_repro::sbgt::prelude::*;
use sbgt_repro::sbgt_sim::runner::EpisodeConfig;
use sbgt_repro::sbgt_sim::{run_episode, Population, RiskProfile};

#[test]
fn pinned_episode_low_prevalence() {
    let profile = RiskProfile::Flat { n: 10, p: 0.02 };
    let pop = Population::sample(&profile, 424242);
    let model = BinaryDilutionModel::perfect();
    let r = run_episode(&pop, &model, &EpisodeConfig::standard(424242));

    // Pin the ground truth drawn by this seed and the full cost profile.
    assert_eq!(pop.n_positive(), 0, "seed draws an all-negative cohort");
    assert!(r.classification.is_terminal());
    // The halving pool at p=0.02 is the whole cohort (0.98^10 is the
    // closest achievable negative mass to 1/2), and one perfect negative
    // outcome classifies everyone.
    assert_eq!(
        r.stats.tests, 1,
        "one all-negative pool settles 10 subjects"
    );
    assert_eq!(r.stats.stages, 1);
    assert_eq!(r.confusion.tn, 10);
}

#[test]
fn pinned_episode_with_positives() {
    let profile = RiskProfile::Flat { n: 10, p: 0.15 };
    let pop = Population::sample(&profile, 77);
    let model = BinaryDilutionModel::perfect();
    let r = run_episode(&pop, &model, &EpisodeConfig::standard(77));
    assert!(r.classification.is_terminal());
    assert_eq!(r.confusion.fp + r.confusion.fn_, 0);
    assert_eq!(
        r.classification.positives(),
        pop.n_positive(),
        "classified positives must match the drawn truth"
    );
    // Pin the exact test count so selection changes surface.
    assert_eq!(
        r.stats.tests, 5,
        "pinned test count changed: selection or RNG semantics moved"
    );
}

#[test]
fn pinned_first_selection() {
    // Ten subjects with ascending risks: the first halving pool must be a
    // prefix of the five lowest-risk subjects whose negative mass is
    // nearest 1/2 — pinned to the exact pool.
    let risks: Vec<f64> = (0..10).map(|i| 0.02 + 0.03 * i as f64).collect();
    let session = SbgtSession::new(
        Prior::from_risks(&risks),
        BinaryDilutionModel::pcr_like(),
        SbgtConfig::default().serial(),
    );
    let sel = session.select_next().unwrap();
    assert_eq!(sel.pool, State::from_subjects(0..6));
    let expected: f64 = (0..6).map(|i| 1.0 - (0.02 + 0.03 * i as f64)).product();
    assert!(
        (sel.negative_mass - expected).abs() < 1e-9,
        "{}",
        sel.negative_mass
    );
}

#[test]
fn pinned_posterior_after_observation() {
    let mut session = SbgtSession::new(
        Prior::from_risks(&[0.1, 0.2, 0.3]),
        BinaryDilutionModel::pcr_like(),
        SbgtConfig::default().serial(),
    );
    let z = session.observe(State::from_subjects([0, 1]), true).unwrap();
    // Pinned evidence: P(+) over the 8-state lattice under the PCR-like
    // model (sens 0.99, spec 0.995, exponential dilution alpha = 4).
    assert!((z - 0.250117167).abs() < 1e-6, "evidence {z}");
    let m = session.marginals();
    assert!((m[2] - 0.3).abs() < 1e-9, "untested subject unchanged");
    assert!(m[1] > m[0], "higher prior risk stays higher after pooling");
}

#[test]
fn pinned_report_shape() {
    let session = SbgtSession::new(
        Prior::flat(6, 0.5),
        BinaryDilutionModel::pcr_like(),
        SbgtConfig::default().serial(),
    );
    let r = session.report(4);
    assert!(
        (r.entropy - 64f64.ln()).abs() < 1e-9,
        "uniform prior entropy"
    );
    assert_eq!(r.top_states.len(), 4);
    assert!((r.expected_positives - 3.0).abs() < 1e-9);
    assert!((r.rank_distribution[3] - 0.3125).abs() < 1e-9, "C(6,3)/64");
}
