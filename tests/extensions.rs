//! Integration tests for the extension features: log-domain episodes,
//! zeta-transform global selection, credible sets, Ct-value outcomes,
//! sparse sessions, and engine fault tolerance under surveillance load.

use sbgt_repro::sbgt::prelude::*;
use sbgt_repro::sbgt_bayes::{credible_set, update_dense, Observation};
use sbgt_repro::sbgt_engine::{Engine, EngineConfig, RetryPolicy};
use sbgt_repro::sbgt_lattice::transform::{all_pool_negative_masses, up_set_masses};
use sbgt_repro::sbgt_lattice::{DensePosterior, LogPosterior};
use sbgt_repro::sbgt_response::{CtOutcome, CtValueModel, ResponseModel};
use sbgt_repro::sbgt_sim::runner::{EpisodeConfig, SelectionMethod};
use sbgt_repro::sbgt_sim::{run_episode, Population, RiskProfile};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
}

/// A whole episode replayed in the log domain reproduces the linear-domain
/// marginals at every step.
#[test]
fn log_domain_replays_episode_exactly() {
    let risks = [0.03, 0.12, 0.06, 0.2, 0.09];
    let model = BinaryDilutionModel::pcr_like();
    let profile = RiskProfile::Groups(vec![(5, 0.1)]); // dummy, replaced below
    let _ = profile;
    let pop = Population::sample(&RiskProfile::Flat { n: 5, p: 0.1 }, 42);
    let cfg = EpisodeConfig::standard(42);
    let episode = run_episode(&pop, &model, &cfg);

    // Replay the recorded history through both domains using the episode's
    // actual prior (flat 0.1), not `risks`.
    let _ = risks;
    let mut linear = pop.prior().to_dense();
    let mut log = LogPosterior::from_risks(pop.risks());
    for &(pool, outcome) in &episode.history {
        let table = model.likelihood_table(outcome, pool.rank());
        update_dense(&mut linear, &model, &Observation::new(pool, outcome)).unwrap();
        log.update(pool, &table).unwrap();
    }
    for (a, b) in linear.marginals().iter().zip(log.marginals()) {
        assert!(close(*a, b));
    }
    for (a, b) in episode.marginals.iter().zip(linear.marginals()) {
        assert!(close(*a, b));
    }
}

/// Episodes driven by the zeta-global rule classify exactly (perfect
/// assay) and never use more tests than the prefix rule on average.
#[test]
fn global_selection_episodes() {
    let profile = RiskProfile::Flat { n: 9, p: 0.08 };
    let model = BinaryDilutionModel::perfect();
    let mut prefix_tests = 0usize;
    let mut global_tests = 0usize;
    for seed in 0..10 {
        let pop = Population::sample(&profile, 600 + seed);
        let p = run_episode(&pop, &model, &EpisodeConfig::standard(seed));
        let g = run_episode(
            &pop,
            &model,
            &EpisodeConfig {
                selection: SelectionMethod::HalvingGlobal,
                ..EpisodeConfig::standard(seed)
            },
        );
        assert!(p.classification.is_terminal());
        assert!(g.classification.is_terminal());
        assert_eq!(g.confusion.accuracy(), 1.0);
        prefix_tests += p.stats.tests;
        global_tests += g.stats.tests;
    }
    // Exact bisection can only help (or tie) in expectation.
    assert!(
        global_tests <= prefix_tests + 2,
        "global {global_tests} vs prefix {prefix_tests}"
    );
}

/// The credible set of a session posterior shrinks to one state as a
/// perfect-assay episode resolves, and its certain positives match the
/// classification.
#[test]
fn credible_set_resolves_with_session() {
    let truth = State::from_subjects([3]);
    let mut session = SbgtSession::new(
        Prior::flat(7, 0.1),
        BinaryDilutionModel::perfect(),
        SbgtConfig::default().serial(),
    );
    let before = credible_set(session.posterior(), 0.95);
    session.run_to_classification(|pool| truth.intersects(pool));
    let after = credible_set(session.posterior(), 0.95);
    assert!(after.size() < before.size());
    assert_eq!(after.size(), 1);
    assert_eq!(after.states[0].0, truth);
    assert!(after.certain_positives().contains(3));
    assert!(after.certain_negatives(7).contains(0));
}

/// Ct-value (censored continuous) outcomes drive a manual episode to a
/// confident classification through the generic update path.
#[test]
fn ct_value_episode_manual_loop() {
    let model = CtValueModel::pcr_like();
    let truth = State::from_subjects([1]);
    let mut post = Prior::flat(6, 0.1).to_dense();
    // Virtual lab with noiseless-mean Ct (deterministic).
    let lab = |pool: State| -> CtOutcome {
        let k = truth.positives_in(pool);
        if k == 0 {
            CtOutcome::NotDetected
        } else {
            CtOutcome::Detected(model.ct_mean(k, pool.rank()))
        }
    };
    let pools = [
        State::from_subjects([0, 1, 2]),
        State::from_subjects([3, 4, 5]),
        State::from_subjects([0, 1]),
        State::from_subjects([1]),
    ];
    for pool in pools {
        let outcome = lab(pool);
        update_dense(&mut post, &model, &Observation::new(pool, outcome)).unwrap();
    }
    let m = post.marginals();
    assert!(m[1] > 0.99, "marginal {}", m[1]);
    // Subjects in the all-censored pool are strongly ruled out; subjects 0
    // and 2 shared detected pools with the true positive, so explaining-
    // away pulls them below (but near) their prior of 0.1 — the Ct means
    // for k=1 vs k=2 differ by only ~1 cycle against σ=1.5, so the effect
    // is real but mild.
    for i in [3usize, 4, 5] {
        assert!(m[i] < 0.05, "subject {i}: {}", m[i]);
    }
    for i in [0usize, 2] {
        assert!(m[i] < 0.1, "subject {i}: {} not below prior", m[i]);
    }
}

/// Sparse session with realistic pruning classifies a 12-subject cohort
/// while holding a small working set.
#[test]
fn sparse_session_holds_small_support() {
    let truth = State::from_subjects([4, 9]);
    let mut s = SparseSession::new(
        Prior::flat(12, 0.05),
        BinaryDilutionModel::perfect(),
        SbgtConfig::default().serial(),
        1e-9,
    )
    .unwrap();
    let out = s.run_to_classification(|pool| truth.intersects(pool));
    assert!(out.classification.is_terminal());
    assert_eq!(out.classification.positives(), 2);
    // 2^12 = 4096 states; the working set must have collapsed far below.
    assert!(s.support() < 256, "support {}", s.support());
}

/// The zeta transform's joint up-set masses answer contact-cluster
/// queries that marginals cannot: P(both members of a household positive).
#[test]
fn joint_infection_queries_via_up_sets() {
    let model = BinaryDilutionModel::pcr_like();
    let mut post = Prior::flat(6, 0.2).to_dense();
    // A strongly positive pool over subjects {0,1} correlates them.
    update_dense(
        &mut post,
        &model,
        &Observation::new(State::from_subjects([0, 1]), true),
    )
    .unwrap();
    let up = up_set_masses(&post);
    let marginals = post.marginals();
    let joint_01 = up[State::from_subjects([0, 1]).index()];
    // Joint must be consistent: P(0∧1) <= min(P(0), P(1)) and positive.
    assert!(joint_01 > 0.0);
    assert!(joint_01 <= marginals[0].min(marginals[1]) + 1e-12);
    // Against brute force.
    let brute: f64 = (0..post.len())
        .filter(|&idx| idx & 0b11 == 0b11)
        .map(|idx| post.probs()[idx])
        .sum();
    assert!(close(joint_01, brute));
    // And the all-pool masses agree with the marginal identity
    // m({i}) = 1 - P(i positive) for a normalized posterior.
    let all = all_pool_negative_masses(&post);
    for i in 0..6 {
        assert!(close(all[1 << i], 1.0 - marginals[i]));
    }
}

/// Engine retry keeps a surveillance-style job alive through transient
/// task failures.
#[test]
fn retry_survives_transient_surveillance_failures() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let engine = Engine::new(EngineConfig::default().with_threads(2));
    let flaky_counter = Arc::new(AtomicUsize::new(0));
    let profile = RiskProfile::Flat { n: 8, p: 0.05 };
    let model = BinaryDilutionModel::perfect();

    let tasks: Vec<_> = (0..6u64)
        .map(|cohort| {
            let counter = Arc::clone(&flaky_counter);
            let profile = profile.clone();
            move || {
                // Cohort 3's first attempt dies (simulated executor loss).
                if cohort == 3 && counter.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("executor lost");
                }
                let pop = Population::sample(&profile, cohort);
                run_episode(&pop, &model, &EpisodeConfig::standard(cohort))
                    .stats
                    .tests
            }
        })
        .collect();
    let (tests, retries) = engine
        .run_job_retrying("surveillance", tasks, RetryPolicy::default())
        .unwrap();
    assert_eq!(tests.len(), 6);
    assert_eq!(retries, 1);
    assert!(tests.iter().all(|&t| t >= 1));
}

/// Information-gain refinement and halving agree on which pools are
/// worth testing for an undiluted assay (IG is monotone in halving
/// distance there), and IG stays within the one-bit bound.
#[test]
fn information_gain_consistency() {
    use sbgt_repro::sbgt_select::select_information_gain;
    let risks = [0.02, 0.05, 0.09, 0.14, 0.2, 0.26];
    let post = DensePosterior::from_risks(&risks);
    let model = BinaryDilutionModel::new(0.99, 0.995, Dilution::None);
    let order: Vec<usize> = (0..risks.len()).collect();
    let sel = select_information_gain(&post, &model, &order, 6, 6).unwrap();
    assert!(sel.information_gain > 0.0);
    assert!(sel.information_gain <= 2f64.ln() + 1e-12);
    // For a near-perfect assay, the IG choice is the near-halving pool.
    let mass = post.pool_negative_mass(sel.pool);
    assert!((mass - 0.5).abs() < 0.2, "mass {mass}");
}
