//! # sbgt-repro — umbrella crate for the SBGT reproduction
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can use one import root. See the individual crates for the real
//! documentation:
//!
//! * [`sbgt`] — the SBGT framework itself (sessions, parallel operators,
//!   serial baseline).
//! * [`sbgt_engine`] — the partitioned dataflow engine (Spark substitute).
//! * [`sbgt_lattice`] — Boolean-lattice posteriors and kernels.
//! * [`sbgt_response`] — dilution-aware test response models.
//! * [`sbgt_bayes`] — priors, updates, classification, analyses.
//! * [`sbgt_select`] — Bayesian Halving Algorithm and look-ahead rules.
//! * [`sbgt_sim`] — synthetic cohorts and the sequential-testing runner.
//! * [`sbgt_service`] — the multi-cohort surveillance service (batched
//!   ingestion, admission control, checkpoint/restore).

pub use sbgt;
pub use sbgt_bayes;
pub use sbgt_engine;
pub use sbgt_lattice;
pub use sbgt_response;
pub use sbgt_select;
pub use sbgt_service;
pub use sbgt_sim;
