//! A minimal non-blocking I/O reactor — epoll without libc or an async
//! runtime.
//!
//! The workspace vendors no FFI bindings, so on Linux/x86_64 the three
//! epoll calls (`epoll_create1`, `epoll_ctl`, `epoll_wait`) are issued as
//! raw syscalls via inline assembly; sockets themselves stay ordinary
//! `std::net` types in non-blocking mode, and the reactor only deals in
//! raw file descriptors and caller-chosen tokens. One thread calls
//! [`Reactor::wait`] in a loop and multiplexes every connection — the
//! shard server's whole event loop.
//!
//! On other targets the same API is backed by a portable readiness
//! *poller*: every registered descriptor is reported ready after a short
//! sleep, and the non-blocking socket's `WouldBlock` is the actual
//! readiness test. Strictly worse latency/CPU than epoll, but correct —
//! the server code is identical on both backends.

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable.
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — while a response is partially flushed.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (or the peer closed — a read will then return 0).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition; the connection should be torn down.
    pub closed: bool,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod backend {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_CREATE1: usize = 291;

    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EINTR: i32 = 4;

    /// The x86_64 kernel ABI lays `epoll_event` out packed (u32 events
    /// immediately followed by the u64 payload).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// One raw syscall; returns the kernel's raw result (negative errno on
    /// failure).
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            out("rcx") _,
            out("r11") _,
            options(nostack)
        );
        ret
    }

    fn check(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Level-triggered epoll instance.
    pub struct Reactor {
        epfd: RawFd,
    }

    impl Reactor {
        pub fn new() -> io::Result<Reactor> {
            let epfd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Reactor {
                epfd: epfd as RawFd,
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let ptr = event
                .as_ref()
                .map_or(std::ptr::null(), |e| e as *const EpollEvent);
            check(unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    ptr as usize,
                )
            })
            .map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: mask(interest),
                    data: token,
                }),
            )
        }

        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: mask(interest),
                    data: token,
                }),
            )
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, timeout: Option<Duration>) -> io::Result<Vec<Event>> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let timeout_ms: isize =
                timeout.map_or(-1, |d| d.as_millis().min(i32::MAX as u128) as isize);
            let n = loop {
                let ret = unsafe {
                    syscall4(
                        SYS_EPOLL_WAIT,
                        self.epfd as usize,
                        buf.as_mut_ptr() as usize,
                        buf.len(),
                        timeout_ms as usize,
                    )
                };
                match check(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                    Err(e) => return Err(e),
                }
            };
            Ok(buf[..n]
                .iter()
                .map(|e| {
                    let events = e.events;
                    Event {
                        token: e.data,
                        readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                        writable: events & EPOLLOUT != 0,
                        closed: events & (EPOLLERR | EPOLLHUP) != 0,
                    }
                })
                .collect())
        }
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            unsafe {
                syscall4(SYS_CLOSE, self.epfd as usize, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod backend {
    use super::{Event, Interest};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Portable fallback: no kernel readiness at all — every registered
    /// descriptor is reported ready after a short sleep, and the caller's
    /// non-blocking `WouldBlock` handling does the real filtering.
    pub struct Reactor {
        registered: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
    }

    impl Reactor {
        pub fn new() -> io::Result<Reactor> {
            Ok(Reactor {
                registered: Mutex::new(BTreeMap::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .expect("reactor lock")
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().expect("reactor lock").remove(&fd);
            Ok(())
        }

        pub fn wait(&self, timeout: Option<Duration>) -> io::Result<Vec<Event>> {
            let pause = timeout
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            std::thread::sleep(pause);
            Ok(self
                .registered
                .lock()
                .expect("reactor lock")
                .values()
                .map(|&(token, interest)| Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    closed: false,
                })
                .collect())
        }
    }
}

pub use backend::Reactor;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn readiness_flows_through_the_reactor() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let reactor = Reactor::new().unwrap();
        reactor
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();

        // The listener must become readable (accept-ready).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            assert!(std::time::Instant::now() < deadline, "accept never ready");
            let events = reactor.wait(Some(Duration::from_millis(100))).unwrap();
            if events.iter().any(|e| e.token == 1 && e.readable) {
                match listener.accept() {
                    Ok((stream, _)) => break stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
        };
        accepted.set_nonblocking(true).unwrap();
        reactor
            .register(accepted.as_raw_fd(), 2, Interest::READ)
            .unwrap();

        // Data from the client must surface as readability on token 2.
        client.write_all(b"hello").unwrap();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 5 {
            assert!(std::time::Instant::now() < deadline, "data never ready");
            let events = reactor.wait(Some(Duration::from_millis(100))).unwrap();
            if events.iter().any(|e| e.token == 2 && e.readable) {
                let mut chunk = [0u8; 16];
                match (&accepted).read(&mut chunk) {
                    Ok(n) => got.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
        assert_eq!(&got, b"hello");
        reactor.deregister(accepted.as_raw_fd()).unwrap();
        reactor.deregister(listener.as_raw_fd()).unwrap();
    }
}
