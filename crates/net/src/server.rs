//! The shard server: one [`SurveillanceService`] behind a TCP front door.
//!
//! A single event-loop thread drives every connection through the
//! [`Reactor`](crate::reactor::Reactor): non-blocking accept, per-connection
//! read buffers, frame decode, dispatch, and buffered writes (write
//! interest is armed only while a response is partially flushed). There is
//! no per-connection thread and no async runtime — the service's own
//! batcher/worker threads do the heavy lifting, and every front-door verb
//! is either non-blocking or terminal.
//!
//! Malformed input never kills the server: torn frames wait for more
//! bytes, anything else typed by [`DecodeError`] gets an error frame and
//! the connection is closed (a desynced length-prefixed stream cannot be
//! re-synchronized safely).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::thread;
use std::time::Duration;

use sbgt_engine::obs::parse_prometheus;
use sbgt_engine::{SharedEngine, SpanKind, SpanMeta, TraceContext, TraceLevel};
use sbgt_service::{
    CohortCheckpoint, ServiceConfig, ServiceError, ShedReason, SurveillanceService,
};

use crate::frame::{DecodeError, ObsFrame, ObsHist, ObsLane, Request, Response};
use crate::reactor::{Interest, Reactor};

const LISTENER_TOKEN: u64 = 0;
const READ_CHUNK: usize = 64 * 1024;

/// One live connection's buffers.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Close once the out-buffer is flushed (protocol error or EOF).
    closing: bool,
}

/// A running shard server. Owns the service and the event-loop thread;
/// dropping the handle does **not** stop the server — send
/// [`Request::Shutdown`] (or call [`ShardServer::shutdown`]) and then
/// [`ShardServer::join`].
pub struct ShardServer {
    addr: SocketAddr,
    thread: Option<thread::JoinHandle<()>>,
}

impl ShardServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`), start the service, and spawn
    /// the event loop.
    pub fn bind(
        addr: &str,
        engine: SharedEngine,
        config: ServiceConfig,
    ) -> io::Result<ShardServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Tag the recorder with the OS pid so spans exported over the wire
        // identify which process produced them in a merged fleet trace.
        engine.obs().set_process_tag(u64::from(std::process::id()));
        let service = SurveillanceService::start(engine.clone(), config)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let thread = thread::Builder::new()
            .name("sbgt-shard".to_string())
            .spawn(move || {
                let mut state = ServerState {
                    engine,
                    service: Some(service),
                };
                if let Err(e) = serve(listener, &mut state) {
                    eprintln!("sbgt-shard event loop error: {e}");
                }
            })?;
        Ok(ShardServer {
            addr: local,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the event loop to stop by sending [`Request::Shutdown`] over a
    /// fresh connection, then wait for it to exit.
    pub fn shutdown(mut self) -> io::Result<()> {
        let mut client = crate::client::ShardClient::connect(self.addr)?;
        let _ = client.call(&Request::Shutdown)?;
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .map_err(|_| io::Error::other("shard event loop panicked"))?;
        }
        Ok(())
    }

    /// Wait for the event loop to exit (after a wire-side `Shutdown`).
    pub fn join(mut self) -> io::Result<()> {
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .map_err(|_| io::Error::other("shard event loop panicked"))?;
        }
        Ok(())
    }
}

struct ServerState {
    engine: SharedEngine,
    /// `None` once drained — the shard then refuses work.
    service: Option<SurveillanceService>,
}

/// Dispatch one decoded request. Blocking verbs (`Drain`) are terminal,
/// so stalling the event loop on them is acceptable by design.
fn handle(state: &mut ServerState, request: Request) -> (Response, bool) {
    let mut shutdown = false;
    let response = match request {
        Request::Ping => Response::Pong,
        Request::Submit {
            tenant,
            specimens,
            trace,
        } => match &state.service {
            None => drained_error(),
            Some(service) => {
                let obs = state.engine.obs();
                let _span = obs.span(
                    TraceLevel::Spans,
                    SpanKind::Service,
                    "net:submit",
                    SpanMeta {
                        task: tenant,
                        ..SpanMeta::default()
                    },
                );
                stamp_inbound_trace(state, trace, SpanMeta::default());
                let mut accepted = 0u32;
                let mut shed = 0u32;
                let mut reason = None;
                for specimen in specimens {
                    match service.try_submit_tagged(tenant, specimen) {
                        Ok(()) => accepted += 1,
                        Err(ServiceError::Shed(r)) => {
                            shed += 1;
                            reason.get_or_insert(r);
                        }
                        Err(other) => {
                            return (
                                Response::Error {
                                    message: other.to_string(),
                                },
                                false,
                            )
                        }
                    }
                }
                Response::Accepted {
                    accepted,
                    shed,
                    reason,
                }
            }
        },
        Request::PlaceCohort { spec, trace } => match &state.service {
            None => drained_error(),
            Some(service) => {
                let obs = state.engine.obs();
                let _span = obs.span(
                    TraceLevel::Spans,
                    SpanKind::Service,
                    "net:place",
                    SpanMeta::for_cohort(spec.id),
                );
                stamp_inbound_trace(state, trace, SpanMeta::for_cohort(spec.id));
                match service.place_cohort(spec) {
                    Ok(()) => Response::Accepted {
                        accepted: 1,
                        shed: 0,
                        reason: None,
                    },
                    Err(ServiceError::Shed(reason)) => Response::Accepted {
                        accepted: 0,
                        shed: 1,
                        reason: Some(reason),
                    },
                    Err(other) => Response::Error {
                        message: other.to_string(),
                    },
                }
            }
        },
        Request::PollReports => match &state.service {
            None => Response::Reports {
                reports: Vec::new(),
            },
            Some(service) => Response::Reports {
                reports: service.take_completed(),
            },
        },
        Request::Stats => Response::Stats {
            prometheus: state.engine.render_prometheus(),
        },
        Request::Drain => match state.service.take() {
            None => drained_error(),
            Some(service) => {
                service.begin_drain();
                let checkpoint = service.suspend();
                Response::Drained {
                    reports: checkpoint.completed,
                    checkpoints: checkpoint
                        .cohorts
                        .iter()
                        .map(CohortCheckpoint::to_bytes)
                        .collect(),
                }
            }
        },
        Request::Handoff { checkpoints, trace } => match &state.service {
            None => drained_error(),
            Some(service) => {
                let obs = state.engine.obs();
                let _span = obs.span(
                    TraceLevel::Spans,
                    SpanKind::Service,
                    "net:handoff",
                    SpanMeta::default(),
                );
                stamp_inbound_trace(state, trace, SpanMeta::default());
                let mut accepted = 0u32;
                let mut shed = 0u32;
                let mut reason: Option<ShedReason> = None;
                for blob in &checkpoints {
                    let ckpt = match CohortCheckpoint::from_bytes(blob) {
                        Ok(ckpt) => ckpt,
                        Err(e) => {
                            return (
                                Response::Error {
                                    message: format!("handoff checkpoint rejected: {e}"),
                                },
                                false,
                            )
                        }
                    };
                    match service.adopt_cohort(&ckpt) {
                        Ok(()) => {
                            accepted += 1;
                            // One mark per adopted cohort: the relocated
                            // cohort's first span on its new process, under
                            // the same deterministic per-cohort trace id.
                            if obs.enabled_at(TraceLevel::Spans) {
                                obs.mark(
                                    obs.intern("net:adopt"),
                                    SpanMeta::for_cohort(ckpt.spec.id),
                                );
                            }
                        }
                        Err(ServiceError::Shed(r)) => {
                            shed += 1;
                            reason.get_or_insert(r);
                        }
                        Err(other) => {
                            return (
                                Response::Error {
                                    message: other.to_string(),
                                },
                                false,
                            )
                        }
                    }
                }
                Response::Accepted {
                    accepted,
                    shed,
                    reason,
                }
            }
        },
        Request::Shutdown => {
            shutdown = true;
            Response::Pong
        }
        Request::ObsExport => obs_export(state),
    };
    (response, shutdown)
}

/// Stamp an inbound trace context onto this process's span stream (at
/// `Full` verbosity) so a merged fleet trace can check that the sender
/// and the shard agree on the work's trace id.
fn stamp_inbound_trace(state: &ServerState, trace: Option<TraceContext>, meta: SpanMeta) {
    if let Some(ctx) = trace {
        let obs = state.engine.obs();
        if obs.enabled_at(TraceLevel::Full) {
            obs.mark_value(obs.intern("net:trace-inherit"), ctx.trace_id, meta);
        }
    }
}

/// Build the shard's [`Response::ObsFrame`]: the Prometheus page parsed
/// into samples (minus histogram families, which travel natively so the
/// fleet merge is [`sbgt_engine::LogHistogram::merge`] instead of a text
/// round-trip), plus the span-ring snapshot and name table.
fn obs_export(state: &ServerState) -> Response {
    let engine = &state.engine;
    let mut hists = Vec::new();
    let service = engine.metrics().service_stats();
    if !service.is_quiet() {
        hists.push(ObsHist {
            name: "sbgt_service_round_latency_us".to_string(),
            labels: Vec::new(),
            hist: service.round_latency_histogram().clone(),
        });
        for (&tenant, lane) in service.tenants() {
            hists.push(ObsHist {
                name: "sbgt_tenant_round_latency_us".to_string(),
                labels: vec![("tenant".to_string(), tenant.to_string())],
                hist: lane.latency.clone(),
            });
        }
    }
    let bp = engine.metrics().bp_stats();
    if !bp.is_quiet() {
        hists.push(ObsHist {
            name: "sbgt_bp_sweeps".to_string(),
            labels: Vec::new(),
            hist: bp.sweeps.clone(),
        });
        hists.push(ObsHist {
            name: "sbgt_bp_residual_nanos".to_string(),
            labels: Vec::new(),
            hist: bp.residual_nanos.clone(),
        });
    }
    let samples = match parse_prometheus(&engine.render_prometheus()) {
        Ok(samples) => samples,
        Err(message) => {
            return Response::Error {
                message: format!("prometheus self-scrape failed: {message}"),
            }
        }
    };
    // Drop the text renderings of natively-carried histogram families.
    let native: Vec<&str> = hists.iter().map(|h| h.name.as_str()).collect();
    let samples = samples
        .into_iter()
        .filter(|s| {
            !native.iter().any(|family| {
                s.name
                    .strip_prefix(family)
                    .is_some_and(|rest| matches!(rest, "_bucket" | "_sum" | "_count"))
            })
        })
        .collect();
    let obs = engine.obs();
    let snapshot = obs.snapshot();
    Response::ObsFrame {
        frame: ObsFrame {
            process_tag: obs.process_tag(),
            samples,
            hists,
            names: obs.name_table(),
            lanes: snapshot
                .lanes
                .into_iter()
                .map(|lane| ObsLane {
                    name: lane.name,
                    dropped: lane.dropped,
                    events: lane.events,
                })
                .collect(),
        },
    }
}

fn drained_error() -> Response {
    Response::Error {
        message: "shard drained: no service attached".to_string(),
    }
}

fn serve(listener: TcpListener, state: &mut ServerState) -> io::Result<()> {
    let reactor = Reactor::new()?;
    reactor.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_token: u64 = 1;
    let mut shutdown = false;

    loop {
        // Exit once asked to shut down and every response has drained.
        if shutdown && conns.values().all(|c| c.outbuf.is_empty()) {
            return Ok(());
        }
        let events = reactor.wait(Some(Duration::from_millis(100)))?;
        for event in events {
            if event.token == LISTENER_TOKEN {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(true)?;
                            stream.set_nodelay(true)?;
                            let token = next_token;
                            next_token += 1;
                            reactor.register(stream.as_raw_fd(), token, Interest::READ)?;
                            conns.insert(
                                token,
                                Conn {
                                    stream,
                                    inbuf: Vec::new(),
                                    outbuf: Vec::new(),
                                    closing: false,
                                },
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => return Err(e),
                    }
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&event.token) else {
                continue;
            };
            let mut drop_conn = event.closed;
            if event.readable && !drop_conn {
                drop_conn = read_and_dispatch(conn, state, &mut shutdown);
            }
            if !conn.outbuf.is_empty() {
                drop_conn |= flush(conn);
            }
            let want_write = !conn.outbuf.is_empty();
            if drop_conn || (conn.closing && !want_write) {
                let fd = conn.stream.as_raw_fd();
                let _ = reactor.deregister(fd);
                conns.remove(&event.token);
            } else {
                let interest = if want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                let _ = reactor.rearm(conn.stream.as_raw_fd(), event.token, interest);
            }
        }
    }
}

/// Read everything available, decode complete frames, dispatch them, and
/// queue responses. Returns `true` when the connection should be dropped.
fn read_and_dispatch(conn: &mut Conn, state: &mut ServerState, shutdown: &mut bool) -> bool {
    let mut chunk = [0u8; READ_CHUNK];
    let mut eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    let mut consumed = 0usize;
    while consumed < conn.inbuf.len() {
        match Request::decode(&conn.inbuf[consumed..]) {
            Ok((request, used)) => {
                consumed += used;
                let (response, stop) = handle(state, request);
                conn.outbuf.extend_from_slice(&response.encode());
                if stop {
                    *shutdown = true;
                    conn.closing = true;
                }
            }
            Err(DecodeError::Torn { .. }) => break,
            Err(error) => {
                // A desynced stream cannot be re-framed: answer with the
                // typed error and close after flushing.
                conn.outbuf.extend_from_slice(
                    &Response::Error {
                        message: error.to_string(),
                    }
                    .encode(),
                );
                conn.closing = true;
                conn.inbuf.clear();
                consumed = 0;
                break;
            }
        }
    }
    conn.inbuf.drain(..consumed);
    // EOF with a torn frame left over is a peer that hung up mid-message;
    // either way the connection is done once responses flush.
    if eof {
        conn.closing = true;
        if conn.outbuf.is_empty() {
            return true;
        }
    }
    false
}

/// Flush as much of the out-buffer as the socket accepts. Returns `true`
/// when the connection broke.
fn flush(conn: &mut Conn) -> bool {
    let mut written = 0usize;
    let result = loop {
        if written == conn.outbuf.len() {
            break false;
        }
        match conn.stream.write(&conn.outbuf[written..]) {
            Ok(0) => break true,
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break true,
        }
    };
    conn.outbuf.drain(..written);
    result
}
