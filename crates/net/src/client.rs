//! A blocking shard client: one request frame out, one response frame
//! back, over a plain `TcpStream`.
//!
//! The client is deliberately synchronous — the async machinery lives on
//! the server side, where one reactor multiplexes many of these. Routers,
//! tests, and the soak harness call it like a function.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::frame::{DecodeError, Request, Response, HEADER_LEN, MAX_PAYLOAD};

/// A connected shard client.
pub struct ShardClient {
    stream: TcpStream,
    /// Reassembly buffer for responses that arrive across several reads.
    buf: Vec<u8>,
}

impl ShardClient {
    /// Connect to a shard server.
    pub fn connect(addr: SocketAddr) -> io::Result<ShardClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ShardClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// [`ShardClient::connect`] with retry — shard processes need a moment
    /// between `exec` and `bind`, so fabric startup polls.
    pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> io::Result<ShardClient> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match ShardClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one request and block for its response. Wire-level decode
    /// failures surface as `InvalidData` errors carrying the typed
    /// [`DecodeError`] message.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.stream.write_all(&request.encode())?;
        loop {
            match Response::decode(&self.buf) {
                Ok((response, used)) => {
                    self.buf.drain(..used);
                    return Ok(response);
                }
                Err(DecodeError::Torn { .. }) => {
                    let mut chunk = [0u8; 64 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "shard closed mid-response",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    if self.buf.len() > HEADER_LEN + MAX_PAYLOAD as usize {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "response exceeds frame bounds",
                        ));
                    }
                }
                Err(error) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        error.to_string(),
                    ))
                }
            }
        }
    }

    /// Send raw bytes (not necessarily a valid frame) and read one
    /// response — the malformed-input tests use this to poke the server
    /// with garbage without the typed encoder getting in the way.
    pub fn call_raw(&mut self, bytes: &[u8]) -> io::Result<Response> {
        self.stream.write_all(bytes)?;
        loop {
            match Response::decode(&self.buf) {
                Ok((response, used)) => {
                    self.buf.drain(..used);
                    return Ok(response);
                }
                Err(DecodeError::Torn { .. }) => {
                    let mut chunk = [0u8; 64 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "shard closed mid-response",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(error) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        error.to_string(),
                    ))
                }
            }
        }
    }
}
