//! The shard fabric router: consistent-hash placement of cohorts across
//! shard servers, with drain/rebalance by checkpoint handoff.
//!
//! The router owns the global cohort-id sequence and forms cohorts
//! client-side (per tenant, fixed batch size), so ids stay unique across
//! shards no matter how many processes serve them — each shard's internal
//! batcher is bypassed via [`Request::PlaceCohort`]. Placement is
//! `ring.shard_for(cohort_id)`: deterministic given membership, and
//! minimally disturbed when membership changes.
//!
//! Draining a shard is a first-class rebalance: the shard freezes its live
//! cohorts at round boundaries into `SBGTCKPT` blobs, the router removes
//! it from the ring, and every blob is handed to the shard the ring now
//! assigns its cohort id — where it resumes **bit-for-bit** (the codec's
//! contract, pinned by `tests/loopback.rs`). Nothing about a cohort's
//! report depends on which shard(s) it ran on.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use sbgt_engine::obs::{
    render_chrome_trace_processes, render_prom_samples, LaneSnapshot, ProcessTrace, PromSample,
    SpanEvent,
};
use sbgt_engine::{LogHistogram, TraceContext};
use sbgt_service::{CohortCheckpoint, CohortReport, CohortSpec, ShedReason, Specimen};

use crate::client::ShardClient;
use crate::frame::{ObsFrame, ObsHist, Request, Response};
use crate::ring::{HashRing, RingError};

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Specimens per cohort formed by the router.
    pub batch_size: usize,
    /// Base seed for cohort seed derivation (same formula as the
    /// in-process batcher, so a cohort's identity is shard-independent).
    pub base_seed: u64,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: u32,
    /// How long to keep retrying each shard connection at startup.
    pub connect_timeout: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            batch_size: 8,
            base_seed: 0x5B67,
            vnodes: crate::ring::DEFAULT_VNODES,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Running tallies of what the router pushed into the fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Cohorts successfully placed on a shard.
    pub placed_cohorts: u64,
    /// Specimens inside successfully placed cohorts.
    pub accepted_specimens: u64,
    /// Specimens inside cohorts a shard shed at admission.
    pub shed_specimens: u64,
    /// Cohorts relocated by drain/handoff so far.
    pub relocated_cohorts: u64,
}

/// A client-side router over a set of shard servers.
pub struct FabricRouter {
    ring: HashRing,
    clients: BTreeMap<u32, ShardClient>,
    /// Drained shards kept connected for stats/shutdown.
    retired: BTreeMap<u32, ShardClient>,
    next_cohort: u64,
    batch_size: usize,
    base_seed: u64,
    pending: BTreeMap<u32, Vec<Specimen>>,
    counters: FabricCounters,
    last_shed_reason: Option<ShedReason>,
}

impl FabricRouter {
    /// Connect to every `(shard id, address)` pair, retrying each until
    /// `config.connect_timeout` — shard processes bind asynchronously.
    pub fn connect(
        shards: &[(u32, SocketAddr)],
        config: &FabricConfig,
    ) -> io::Result<FabricRouter> {
        assert!(config.batch_size > 0, "fabric batch size must be positive");
        let mut ring = HashRing::new(config.vnodes);
        let mut clients = BTreeMap::new();
        for &(id, addr) in shards {
            let client = ShardClient::connect_retry(addr, config.connect_timeout)?;
            ring.add_shard(id);
            clients.insert(id, client);
        }
        Ok(FabricRouter {
            ring,
            clients,
            retired: BTreeMap::new(),
            next_cohort: 0,
            batch_size: config.batch_size,
            base_seed: config.base_seed,
            pending: BTreeMap::new(),
            counters: FabricCounters::default(),
            last_shed_reason: None,
        })
    }

    /// Tallies so far.
    pub fn counters(&self) -> FabricCounters {
        self.counters
    }

    /// Reason of the most recent shed, if any occurred.
    pub fn last_shed_reason(&self) -> Option<ShedReason> {
        self.last_shed_reason
    }

    /// Live (non-drained) shard ids.
    pub fn live_shards(&self) -> Vec<u32> {
        self.ring.shards()
    }

    /// Buffer one specimen on its tenant's client-side batch, placing the
    /// cohort once the batch is full.
    pub fn submit(&mut self, tenant: u32, specimen: Specimen) -> io::Result<()> {
        let batch = self.pending.entry(tenant).or_default();
        batch.push(specimen);
        if batch.len() >= self.batch_size {
            self.flush_tenant(tenant)?;
        }
        Ok(())
    }

    /// Seal and place `tenant`'s open batch, if any.
    pub fn flush_tenant(&mut self, tenant: u32) -> io::Result<()> {
        let Some(batch) = self.pending.remove(&tenant) else {
            return Ok(());
        };
        if batch.is_empty() {
            return Ok(());
        }
        let id = self.next_cohort;
        self.next_cohort += 1;
        let spec = CohortSpec::from_specimens(id, self.base_seed, &batch).with_tenant(tenant);
        self.place(spec)
    }

    /// Seal and place every open batch.
    pub fn flush_all(&mut self) -> io::Result<()> {
        let tenants: Vec<u32> = self.pending.keys().copied().collect();
        for tenant in tenants {
            self.flush_tenant(tenant)?;
        }
        Ok(())
    }

    /// Place one fully-formed cohort on the shard the ring assigns it.
    /// The request carries the cohort's deterministic [`TraceContext`]
    /// (a pure function of the cohort id — no clock, no RNG), so the
    /// wire bytes are identical whether or not tracing is enabled and
    /// the shard can stitch its spans under the router's trace.
    pub fn place(&mut self, spec: CohortSpec) -> io::Result<()> {
        let subjects = spec.n_subjects() as u64;
        let trace = Some(TraceContext::for_cohort(spec.id));
        let shard = self
            .ring
            .shard_for(spec.id)
            .map_err(|e: RingError| io::Error::other(e.to_string()))?;
        let client = self
            .clients
            .get_mut(&shard)
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        match client.call(&Request::PlaceCohort { spec, trace })? {
            Response::Accepted { accepted: 1, .. } => {
                self.counters.placed_cohorts += 1;
                self.counters.accepted_specimens += subjects;
                Ok(())
            }
            Response::Accepted { reason, .. } => {
                self.counters.shed_specimens += subjects;
                if reason.is_some() {
                    self.last_shed_reason = reason;
                }
                Ok(())
            }
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Collect (and clear) completed reports from every live and retired
    /// shard.
    pub fn poll_reports(&mut self) -> io::Result<Vec<CohortReport>> {
        let mut all = Vec::new();
        for client in self.clients.values_mut().chain(self.retired.values_mut()) {
            match client.call(&Request::PollReports)? {
                Response::Reports { reports } => all.extend(reports),
                Response::Error { message } => return Err(io::Error::other(message)),
                other => return Err(unexpected(&other)),
            }
        }
        all.sort_by_key(|r| r.cohort);
        Ok(all)
    }

    /// Scrape one shard's Prometheus text exposition.
    pub fn stats(&mut self, shard: u32) -> io::Result<String> {
        let client = self
            .clients
            .get_mut(&shard)
            .or_else(|| self.retired.get_mut(&shard))
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        match client.call(&Request::Stats)? {
            Response::Stats { prometheus } => Ok(prometheus),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Drain `shard` out of the fabric: freeze its live cohorts, remove it
    /// from the ring, and hand each frozen cohort to the shard the
    /// shrunken ring now assigns it. Returns the reports the shard had
    /// already completed; the relocated cohorts finish on their new homes
    /// with identical results.
    pub fn drain_shard(&mut self, shard: u32) -> io::Result<Vec<CohortReport>> {
        let mut client = self
            .clients
            .remove(&shard)
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        let (reports, checkpoints) = match client.call(&Request::Drain)? {
            Response::Drained {
                reports,
                checkpoints,
            } => (reports, checkpoints),
            Response::Error { message } => return Err(io::Error::other(message)),
            other => return Err(unexpected(&other)),
        };
        self.ring.remove_shard(shard);
        self.retired.insert(shard, client);

        // Re-place every frozen cohort where the shrunken ring points. The
        // blobs travel untouched — the byte-exactness of the handoff is
        // exactly the checkpoint codec's round-trip guarantee.
        let mut by_target: BTreeMap<u32, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
        for blob in checkpoints {
            let id = CohortCheckpoint::from_bytes(&blob)
                .map_err(|e| io::Error::other(format!("drained checkpoint rejected: {e}")))?
                .spec
                .id;
            let target = self
                .ring
                .shard_for(id)
                .map_err(|e| io::Error::other(e.to_string()))?;
            by_target.entry(target).or_default().push((id, blob));
        }
        for (target, entries) in by_target {
            let n = entries.len() as u32;
            // The migration runs under the first relocated cohort's
            // deterministic trace, so the receiving shard's handoff spans
            // stitch into the same fleet tree.
            let trace = entries.first().map(|&(id, _)| TraceContext::for_cohort(id));
            let blobs: Vec<Vec<u8>> = entries.into_iter().map(|(_, blob)| blob).collect();
            let client = self
                .clients
                .get_mut(&target)
                .ok_or_else(|| io::Error::other(format!("no client for shard {target}")))?;
            match client.call(&Request::Handoff {
                checkpoints: blobs,
                trace,
            })? {
                Response::Accepted { accepted, shed: 0, .. } if accepted == n => {
                    self.counters.relocated_cohorts += u64::from(n);
                }
                Response::Accepted { accepted, shed, .. } => {
                    return Err(io::Error::other(format!(
                        "handoff to shard {target} lost cohorts: {accepted} adopted, {shed} shed of {n}"
                    )))
                }
                Response::Error { message } => return Err(io::Error::other(message)),
                other => return Err(unexpected(&other)),
            }
        }
        Ok(reports)
    }

    /// Every connected shard id, live and retired (drained shards keep
    /// their telemetry until shutdown, so a fleet scrape includes them).
    pub fn all_shards(&self) -> Vec<u32> {
        self.clients
            .keys()
            .chain(self.retired.keys())
            .copied()
            .collect()
    }

    /// Fetch one shard's binary telemetry export.
    pub fn obs_export(&mut self, shard: u32) -> io::Result<ObsFrame> {
        let client = self
            .clients
            .get_mut(&shard)
            .or_else(|| self.retired.get_mut(&shard))
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        match client.call(&Request::ObsExport)? {
            Response::ObsFrame { frame } => Ok(frame),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Stop every shard server (live and retired) and consume the router.
    pub fn shutdown_all(mut self) -> io::Result<()> {
        for (_, mut client) in std::mem::take(&mut self.clients)
            .into_iter()
            .chain(std::mem::take(&mut self.retired))
        {
            let _ = client.call(&Request::Shutdown)?;
        }
        Ok(())
    }
}

fn unexpected(response: &Response) -> io::Error {
    io::Error::other(format!("unexpected response kind: {response:?}"))
}

/// One shard's accumulated telemetry inside a [`FleetScraper`].
struct ShardObs {
    process_tag: u64,
    /// Latest scalar samples (counters/gauges are cumulative, so the
    /// newest scrape supersedes older ones).
    samples: Vec<PromSample>,
    /// Latest native histograms (cumulative for the same reason).
    hists: Vec<ObsHist>,
    /// Latest name table (grows monotonically on the shard).
    names: Vec<String>,
    /// Accumulated span lanes, deduplicated across polls.
    lanes: Vec<AccumLane>,
}

/// One recorder lane accumulated across polls. The shard's ring reports
/// `dropped` (events lost to wrap) and the retained tail; `dropped +
/// retained` is an absolute position in the lane's event stream, so a
/// cursor on that position identifies exactly which tail entries are new
/// since the previous poll — polling twice never duplicates an event.
struct AccumLane {
    name: String,
    /// Events that wrapped out of the ring before any poll saw them.
    dropped: u64,
    events: Vec<SpanEvent>,
    /// Absolute stream position already ingested.
    cursor: u64,
}

/// Fleet-wide telemetry aggregator: polls every shard's
/// [`Request::ObsExport`], merges histograms bucket-by-bucket
/// ([`LogHistogram::merge`] — exactly the union of the shard streams),
/// re-labels scalar samples by shard, and renders one Prometheus page and
/// one merged Chrome trace for the whole fleet.
#[derive(Default)]
pub struct FleetScraper {
    shards: BTreeMap<u32, ShardObs>,
}

impl FleetScraper {
    /// Empty scraper; feed it with [`FleetScraper::poll`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Scrape every shard the router knows (live and retired) once.
    pub fn poll(&mut self, router: &mut FabricRouter) -> io::Result<()> {
        for shard in router.all_shards() {
            let frame = router.obs_export(shard)?;
            self.ingest(shard, frame);
        }
        Ok(())
    }

    /// Fold one shard's export into the accumulated state (public so a
    /// test or an out-of-band transport can feed frames directly).
    pub fn ingest(&mut self, shard: u32, frame: ObsFrame) {
        let entry = self.shards.entry(shard).or_insert_with(|| ShardObs {
            process_tag: 0,
            samples: Vec::new(),
            hists: Vec::new(),
            names: Vec::new(),
            lanes: Vec::new(),
        });
        entry.process_tag = frame.process_tag;
        entry.samples = frame.samples;
        entry.hists = frame.hists;
        entry.names = frame.names;
        for (i, lane) in frame.lanes.into_iter().enumerate() {
            if entry.lanes.len() <= i {
                entry.lanes.push(AccumLane {
                    name: lane.name.clone(),
                    dropped: 0,
                    events: Vec::new(),
                    cursor: 0,
                });
            }
            let acc = &mut entry.lanes[i];
            acc.name = lane.name;
            let high = lane.dropped + lane.events.len() as u64;
            if high > acc.cursor {
                let fresh = (high - acc.cursor).min(lane.events.len() as u64) as usize;
                acc.events
                    .extend_from_slice(&lane.events[lane.events.len() - fresh..]);
                acc.dropped += (high - acc.cursor) - fresh as u64;
                acc.cursor = high;
            }
        }
    }

    /// Shards scraped so far.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Accumulated (deduplicated) events across all shards and lanes.
    pub fn total_events(&self) -> usize {
        self.shards
            .values()
            .flat_map(|obs| obs.lanes.iter())
            .map(|lane| lane.events.len())
            .sum()
    }

    /// One shard's accumulated events, flattened across its lanes.
    pub fn shard_events(&self, shard: u32) -> Vec<SpanEvent> {
        self.shards
            .get(&shard)
            .map(|obs| {
                obs.lanes
                    .iter()
                    .flat_map(|lane| lane.events.iter().copied())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// One shard's latest interned name table.
    pub fn shard_names(&self, shard: u32) -> Vec<String> {
        self.shards
            .get(&shard)
            .map(|obs| obs.names.clone())
            .unwrap_or_default()
    }

    /// `(shard id, process tag)` pairs of everything scraped.
    pub fn process_tags(&self) -> Vec<(u32, u64)> {
        self.shards
            .iter()
            .map(|(&shard, obs)| (shard, obs.process_tag))
            .collect()
    }

    /// One shard's latest native histogram for `name` (labels ignored
    /// when `labels` is `None`; otherwise exact match).
    pub fn shard_hist(&self, shard: u32, name: &str) -> Option<&LogHistogram> {
        self.shards.get(&shard)?.hists.iter().find_map(|h| {
            if h.name == name && h.labels.is_empty() {
                Some(&h.hist)
            } else {
                None
            }
        })
    }

    /// Every distinct histogram series merged across shards, sorted by
    /// `(name, labels)`. The merge is [`LogHistogram::merge`], so each
    /// returned histogram equals one recorder fed all shards' samples.
    pub fn merged_hists(&self) -> Vec<ObsHist> {
        let mut merged: BTreeMap<(String, Vec<(String, String)>), LogHistogram> = BTreeMap::new();
        for obs in self.shards.values() {
            for h in &obs.hists {
                merged
                    .entry((h.name.clone(), h.labels.clone()))
                    .and_modify(|m| m.merge(&h.hist))
                    .or_insert_with(|| h.hist.clone());
            }
        }
        merged
            .into_iter()
            .map(|((name, labels), hist)| ObsHist { name, labels, hist })
            .collect()
    }

    /// Render the fleet Prometheus page: every shard's scalar samples
    /// re-labeled with `shard="<id>"`, per-shard `_count`/`_sum` series
    /// for each native histogram, and fleet-merged `sbgt_fleet_*`
    /// histogram families (bucket/sum/count) whose buckets are the exact
    /// sum of the per-shard scrapes.
    pub fn render_prometheus(&self) -> String {
        let mut samples = Vec::new();
        for (&shard, obs) in &self.shards {
            let shard_label = ("shard".to_string(), shard.to_string());
            for s in &obs.samples {
                let mut labels = s.labels.clone();
                labels.push(shard_label.clone());
                samples.push(PromSample {
                    name: s.name.clone(),
                    labels,
                    value: s.value,
                });
            }
            for h in &obs.hists {
                let mut labels = h.labels.clone();
                labels.push(shard_label.clone());
                samples.push(PromSample {
                    name: format!("{}_count", h.name),
                    labels: labels.clone(),
                    value: h.hist.count() as f64,
                });
                samples.push(PromSample {
                    name: format!("{}_sum", h.name),
                    labels,
                    value: h.hist.sum() as f64,
                });
            }
        }
        for h in self.merged_hists() {
            let fleet = format!(
                "sbgt_fleet_{}",
                h.name.strip_prefix("sbgt_").unwrap_or(&h.name)
            );
            for (bound, cumulative) in h.hist.cumulative_buckets() {
                let mut labels = h.labels.clone();
                labels.push(("le".to_string(), bound.to_string()));
                samples.push(PromSample {
                    name: format!("{fleet}_bucket"),
                    labels,
                    value: cumulative as f64,
                });
            }
            let mut labels = h.labels.clone();
            labels.push(("le".to_string(), "+Inf".to_string()));
            samples.push(PromSample {
                name: format!("{fleet}_bucket"),
                labels,
                value: h.hist.count() as f64,
            });
            samples.push(PromSample {
                name: format!("{fleet}_count"),
                labels: h.labels.clone(),
                value: h.hist.count() as f64,
            });
            samples.push(PromSample {
                name: format!("{fleet}_sum"),
                labels: h.labels.clone(),
                value: h.hist.sum() as f64,
            });
        }
        render_prom_samples(&samples)
    }

    /// Render one Chrome trace covering every scraped shard: shard `N`
    /// becomes trace process `N + 1` (trace pids must be non-zero and the
    /// OS pids of a same-host loopback fleet may collide), and per-cohort
    /// trace ids — deterministic functions of the cohort id — stitch
    /// spans recorded on different processes under one tree.
    pub fn render_chrome_trace(&self) -> String {
        let processes: Vec<ProcessTrace> = self
            .shards
            .iter()
            .map(|(&shard, obs)| ProcessTrace {
                pid: shard + 1,
                label: format!("shard-{shard}"),
                names: obs.names.clone(),
                lanes: obs
                    .lanes
                    .iter()
                    .map(|lane| LaneSnapshot {
                        name: lane.name.clone(),
                        events: lane.events.clone(),
                        dropped: lane.dropped,
                    })
                    .collect(),
            })
            .collect();
        render_chrome_trace_processes(&processes)
    }
}
