//! The shard fabric router: consistent-hash placement of cohorts across
//! shard servers, with drain/rebalance by checkpoint handoff.
//!
//! The router owns the global cohort-id sequence and forms cohorts
//! client-side (per tenant, fixed batch size), so ids stay unique across
//! shards no matter how many processes serve them — each shard's internal
//! batcher is bypassed via [`Request::PlaceCohort`]. Placement is
//! `ring.shard_for(cohort_id)`: deterministic given membership, and
//! minimally disturbed when membership changes.
//!
//! Draining a shard is a first-class rebalance: the shard freezes its live
//! cohorts at round boundaries into `SBGTCKPT` blobs, the router removes
//! it from the ring, and every blob is handed to the shard the ring now
//! assigns its cohort id — where it resumes **bit-for-bit** (the codec's
//! contract, pinned by `tests/loopback.rs`). Nothing about a cohort's
//! report depends on which shard(s) it ran on.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use sbgt_service::{CohortCheckpoint, CohortReport, CohortSpec, ShedReason, Specimen};

use crate::client::ShardClient;
use crate::frame::{Request, Response};
use crate::ring::{HashRing, RingError};

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Specimens per cohort formed by the router.
    pub batch_size: usize,
    /// Base seed for cohort seed derivation (same formula as the
    /// in-process batcher, so a cohort's identity is shard-independent).
    pub base_seed: u64,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: u32,
    /// How long to keep retrying each shard connection at startup.
    pub connect_timeout: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            batch_size: 8,
            base_seed: 0x5B67,
            vnodes: crate::ring::DEFAULT_VNODES,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Running tallies of what the router pushed into the fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Cohorts successfully placed on a shard.
    pub placed_cohorts: u64,
    /// Specimens inside successfully placed cohorts.
    pub accepted_specimens: u64,
    /// Specimens inside cohorts a shard shed at admission.
    pub shed_specimens: u64,
    /// Cohorts relocated by drain/handoff so far.
    pub relocated_cohorts: u64,
}

/// A client-side router over a set of shard servers.
pub struct FabricRouter {
    ring: HashRing,
    clients: BTreeMap<u32, ShardClient>,
    /// Drained shards kept connected for stats/shutdown.
    retired: BTreeMap<u32, ShardClient>,
    next_cohort: u64,
    batch_size: usize,
    base_seed: u64,
    pending: BTreeMap<u32, Vec<Specimen>>,
    counters: FabricCounters,
    last_shed_reason: Option<ShedReason>,
}

impl FabricRouter {
    /// Connect to every `(shard id, address)` pair, retrying each until
    /// `config.connect_timeout` — shard processes bind asynchronously.
    pub fn connect(
        shards: &[(u32, SocketAddr)],
        config: &FabricConfig,
    ) -> io::Result<FabricRouter> {
        assert!(config.batch_size > 0, "fabric batch size must be positive");
        let mut ring = HashRing::new(config.vnodes);
        let mut clients = BTreeMap::new();
        for &(id, addr) in shards {
            let client = ShardClient::connect_retry(addr, config.connect_timeout)?;
            ring.add_shard(id);
            clients.insert(id, client);
        }
        Ok(FabricRouter {
            ring,
            clients,
            retired: BTreeMap::new(),
            next_cohort: 0,
            batch_size: config.batch_size,
            base_seed: config.base_seed,
            pending: BTreeMap::new(),
            counters: FabricCounters::default(),
            last_shed_reason: None,
        })
    }

    /// Tallies so far.
    pub fn counters(&self) -> FabricCounters {
        self.counters
    }

    /// Reason of the most recent shed, if any occurred.
    pub fn last_shed_reason(&self) -> Option<ShedReason> {
        self.last_shed_reason
    }

    /// Live (non-drained) shard ids.
    pub fn live_shards(&self) -> Vec<u32> {
        self.ring.shards()
    }

    /// Buffer one specimen on its tenant's client-side batch, placing the
    /// cohort once the batch is full.
    pub fn submit(&mut self, tenant: u32, specimen: Specimen) -> io::Result<()> {
        let batch = self.pending.entry(tenant).or_default();
        batch.push(specimen);
        if batch.len() >= self.batch_size {
            self.flush_tenant(tenant)?;
        }
        Ok(())
    }

    /// Seal and place `tenant`'s open batch, if any.
    pub fn flush_tenant(&mut self, tenant: u32) -> io::Result<()> {
        let Some(batch) = self.pending.remove(&tenant) else {
            return Ok(());
        };
        if batch.is_empty() {
            return Ok(());
        }
        let id = self.next_cohort;
        self.next_cohort += 1;
        let spec = CohortSpec::from_specimens(id, self.base_seed, &batch).with_tenant(tenant);
        self.place(spec)
    }

    /// Seal and place every open batch.
    pub fn flush_all(&mut self) -> io::Result<()> {
        let tenants: Vec<u32> = self.pending.keys().copied().collect();
        for tenant in tenants {
            self.flush_tenant(tenant)?;
        }
        Ok(())
    }

    /// Place one fully-formed cohort on the shard the ring assigns it.
    pub fn place(&mut self, spec: CohortSpec) -> io::Result<()> {
        let subjects = spec.n_subjects() as u64;
        let shard = self
            .ring
            .shard_for(spec.id)
            .map_err(|e: RingError| io::Error::other(e.to_string()))?;
        let client = self
            .clients
            .get_mut(&shard)
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        match client.call(&Request::PlaceCohort { spec })? {
            Response::Accepted { accepted: 1, .. } => {
                self.counters.placed_cohorts += 1;
                self.counters.accepted_specimens += subjects;
                Ok(())
            }
            Response::Accepted { reason, .. } => {
                self.counters.shed_specimens += subjects;
                if reason.is_some() {
                    self.last_shed_reason = reason;
                }
                Ok(())
            }
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Collect (and clear) completed reports from every live and retired
    /// shard.
    pub fn poll_reports(&mut self) -> io::Result<Vec<CohortReport>> {
        let mut all = Vec::new();
        for client in self.clients.values_mut().chain(self.retired.values_mut()) {
            match client.call(&Request::PollReports)? {
                Response::Reports { reports } => all.extend(reports),
                Response::Error { message } => return Err(io::Error::other(message)),
                other => return Err(unexpected(&other)),
            }
        }
        all.sort_by_key(|r| r.cohort);
        Ok(all)
    }

    /// Scrape one shard's Prometheus text exposition.
    pub fn stats(&mut self, shard: u32) -> io::Result<String> {
        let client = self
            .clients
            .get_mut(&shard)
            .or_else(|| self.retired.get_mut(&shard))
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        match client.call(&Request::Stats)? {
            Response::Stats { prometheus } => Ok(prometheus),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Drain `shard` out of the fabric: freeze its live cohorts, remove it
    /// from the ring, and hand each frozen cohort to the shard the
    /// shrunken ring now assigns it. Returns the reports the shard had
    /// already completed; the relocated cohorts finish on their new homes
    /// with identical results.
    pub fn drain_shard(&mut self, shard: u32) -> io::Result<Vec<CohortReport>> {
        let mut client = self
            .clients
            .remove(&shard)
            .ok_or_else(|| io::Error::other(format!("no client for shard {shard}")))?;
        let (reports, checkpoints) = match client.call(&Request::Drain)? {
            Response::Drained {
                reports,
                checkpoints,
            } => (reports, checkpoints),
            Response::Error { message } => return Err(io::Error::other(message)),
            other => return Err(unexpected(&other)),
        };
        self.ring.remove_shard(shard);
        self.retired.insert(shard, client);

        // Re-place every frozen cohort where the shrunken ring points. The
        // blobs travel untouched — the byte-exactness of the handoff is
        // exactly the checkpoint codec's round-trip guarantee.
        let mut by_target: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
        for blob in checkpoints {
            let id = CohortCheckpoint::from_bytes(&blob)
                .map_err(|e| io::Error::other(format!("drained checkpoint rejected: {e}")))?
                .spec
                .id;
            let target = self
                .ring
                .shard_for(id)
                .map_err(|e| io::Error::other(e.to_string()))?;
            by_target.entry(target).or_default().push(blob);
        }
        for (target, blobs) in by_target {
            let n = blobs.len() as u32;
            let client = self
                .clients
                .get_mut(&target)
                .ok_or_else(|| io::Error::other(format!("no client for shard {target}")))?;
            match client.call(&Request::Handoff { checkpoints: blobs })? {
                Response::Accepted { accepted, shed: 0, .. } if accepted == n => {
                    self.counters.relocated_cohorts += u64::from(n);
                }
                Response::Accepted { accepted, shed, .. } => {
                    return Err(io::Error::other(format!(
                        "handoff to shard {target} lost cohorts: {accepted} adopted, {shed} shed of {n}"
                    )))
                }
                Response::Error { message } => return Err(io::Error::other(message)),
                other => return Err(unexpected(&other)),
            }
        }
        Ok(reports)
    }

    /// Stop every shard server (live and retired) and consume the router.
    pub fn shutdown_all(mut self) -> io::Result<()> {
        for (_, mut client) in std::mem::take(&mut self.clients)
            .into_iter()
            .chain(std::mem::take(&mut self.retired))
        {
            let _ = client.call(&Request::Shutdown)?;
        }
        Ok(())
    }
}

fn unexpected(response: &Response) -> io::Error {
    io::Error::other(format!("unexpected response kind: {response:?}"))
}
