//! Consistent-hash placement of cohorts onto shards.
//!
//! The fabric router assigns every cohort a shard by hashing its cohort id
//! onto a ring of virtual nodes. Consistent hashing is what makes
//! drain/rebalance cheap: when a shard joins or leaves, only the keys that
//! mapped to the affected arc segments move — in expectation `K/M` of `K`
//! keys across `M` shards — while every other cohort's placement is
//! untouched. The property tests in `tests/ring_props.rs` pin exactly
//! this: a key either keeps its shard or moves to the new one (on add) /
//! off the removed one (on remove), never a third shard.
//!
//! Hashing is splitmix64 — already the repo's idiom for seed derivation —
//! over `(shard, vnode)` for ring points and over the cohort id for
//! lookups. With the default 64 virtual nodes per shard the arc lengths
//! concentrate well enough that a 4-shard ring balances within ~20%.

/// Default virtual nodes per shard.
pub const DEFAULT_VNODES: u32 = 64;

/// Typed placement failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RingError {
    /// Lookup on a ring with no shards.
    Empty,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Empty => write!(f, "hash ring has no shards"),
        }
    }
}

impl std::error::Error for RingError {}

/// splitmix64: the repo's standard cheap mixing function. Bijective on
/// `u64`, so distinct `(shard, vnode)` pairs never collide by
/// construction of the input encoding alone colliding.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping `u64` keys (cohort ids) to `u32` shard
/// ids via sorted virtual-node points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; a key maps to the first point at
    /// or after its hash, wrapping.
    points: Vec<(u64, u32)>,
    vnodes: u32,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per future shard
    /// (`vnodes` is clamped to at least 1).
    pub fn new(vnodes: u32) -> Self {
        HashRing {
            points: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// A ring pre-populated with `shards`, using [`DEFAULT_VNODES`].
    pub fn with_shards(shards: impl IntoIterator<Item = u32>) -> Self {
        let mut ring = HashRing::new(DEFAULT_VNODES);
        for shard in shards {
            ring.add_shard(shard);
        }
        ring
    }

    fn point(shard: u32, vnode: u32) -> u64 {
        splitmix64((u64::from(shard) << 32) | u64::from(vnode))
    }

    /// Add a shard's virtual nodes. Adding a shard twice is a no-op.
    pub fn add_shard(&mut self, shard: u32) {
        if self.contains(shard) {
            return;
        }
        for vnode in 0..self.vnodes {
            self.points.push((Self::point(shard, vnode), shard));
        }
        // Point hashes are effectively unique (bijective mix over distinct
        // inputs); ties, if a (shard, vnode) pair ever produced one, break
        // deterministically by shard id via the tuple sort.
        self.points.sort_unstable();
    }

    /// Remove a shard's virtual nodes. Removing an absent shard is a
    /// no-op.
    pub fn remove_shard(&mut self, shard: u32) {
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether `shard` is on the ring.
    pub fn contains(&self, shard: u32) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// Shards currently on the ring, ascending and deduplicated.
    pub fn shards(&self) -> Vec<u32> {
        let mut shards: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards().len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The shard owning `key`: the first ring point at or after
    /// `splitmix64(key)`, wrapping past the top. An empty ring is a typed
    /// error, never a panic.
    pub fn shard_for(&self, key: u64) -> Result<u32, RingError> {
        if self.points.is_empty() {
            return Err(RingError::Empty);
        }
        let h = splitmix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        Ok(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_is_a_typed_error() {
        let ring = HashRing::new(8);
        assert_eq!(ring.shard_for(1), Err(RingError::Empty));
        assert_eq!(ring.len(), 0);
        assert!(ring.is_empty());
    }

    #[test]
    fn lookups_are_deterministic_and_cover_all_shards() {
        let ring = HashRing::with_shards([0, 1, 2, 3]);
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..4096u64 {
            let a = ring.shard_for(key).unwrap();
            let b = ring.shard_for(key).unwrap();
            assert_eq!(a, b);
            seen.insert(a);
        }
        assert_eq!(seen.len(), 4, "4096 keys must hit all 4 shards");
    }

    #[test]
    fn duplicate_add_and_absent_remove_are_no_ops() {
        let mut ring = HashRing::with_shards([5]);
        let before = ring.clone();
        ring.add_shard(5);
        ring.remove_shard(17);
        assert_eq!(ring, before);
    }

    #[test]
    fn balance_is_reasonable_with_default_vnodes() {
        let ring = HashRing::with_shards([0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        let keys = 40_000u64;
        for key in 0..keys {
            counts[ring.shard_for(key).unwrap() as usize] += 1;
        }
        let expected = keys as f64 / 4.0;
        for (shard, &count) in counts.iter().enumerate() {
            let skew = (count as f64 - expected).abs() / expected;
            assert!(
                skew < 0.35,
                "shard {shard} holds {count} of {keys} keys (skew {skew:.2})"
            );
        }
    }
}
