//! The SBGT wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! ┌─────────┬─────────┬────────┬──────────────┬───────────────┐
//! │ "SB"    │ version │ kind   │ payload len  │ payload       │
//! │ 2 bytes │ u8 = 3  │ u8     │ u32 LE       │ `len` bytes   │
//! └─────────┴─────────┴────────┴──────────────┴───────────────┘
//! ```
//!
//! Request kinds live in `0x01..=0x7F`, response kinds in `0x80..=0xFF`,
//! so a frame's direction is visible from its header. All integers are
//! little-endian; floats travel as raw IEEE-754 bits (never text), which
//! is what makes a report read over the wire **bit-for-bit** comparable
//! to one taken in-process.
//!
//! Decoding is total: every malformed input maps to a typed
//! [`DecodeError`], never a panic and never a truncated-but-accepted
//! message. A frame shorter than its header claims is [`DecodeError::Torn`]
//! — on a live stream the reader waits for more bytes; at EOF or in a
//! fixed buffer it is an error. A length field beyond [`MAX_PAYLOAD`] is
//! rejected as [`DecodeError::Oversized`] *before* any allocation, so a
//! hostile header cannot balloon memory.

use sbgt::SessionOutcome;
use sbgt_bayes::{CohortClassification, SubjectStatus};
use sbgt_engine::obs::hist::BUCKET_COUNT;
use sbgt_engine::obs::{LogHistogram, PromSample, SpanEvent, SpanKind, SpanMeta, TraceContext};
use sbgt_lattice::BigState;
use sbgt_service::{CohortReport, CohortSpec, ShedReason, Specimen};

/// Wire protocol version carried in every frame header. v3 appended a
/// fail-closed trailer block to the work-carrying requests (Submit,
/// PlaceCohort, Handoff) so a router can propagate a [`TraceContext`]
/// with the work, and added the [`Request::ObsExport`] /
/// [`Response::ObsFrame`] telemetry verbs. v2 widened the cohort ground
/// truth from one u64 to a length-prefixed word list so approximate
/// cohorts (more than 64 subjects) ship between shards. Older peers are
/// rejected with [`DecodeError::BadVersion`] at the header.
pub const WIRE_VERSION: u8 = 3;

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"SB";

/// Header size in bytes (magic + version + kind + payload length).
pub const HEADER_LEN: usize = 8;

/// Hard cap on a frame's payload, enforced before allocation. Sized for a
/// drain response carrying every live cohort's checkpoint on a loaded
/// shard, with an order of magnitude of headroom.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A typed wire decoding failure. Every way an input byte stream can be
/// malformed maps to exactly one variant — the server answers with an
/// error frame (or closes) instead of panicking, and tests assert the
/// variant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ends before the frame does. On a live stream this means
    /// "read more"; at EOF it means the peer hung up mid-frame.
    Torn {
        /// Bytes available.
        have: usize,
        /// Bytes the frame needs (header + declared payload).
        need: usize,
    },
    /// The header declares a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u32,
    },
    /// The first two bytes are not [`MAGIC`] — not an SBGT stream.
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// A kind byte no message maps to.
    UnknownKind(u8),
    /// The payload is self-inconsistent (short fields, trailing bytes,
    /// invalid enum byte, non-UTF-8 text).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Torn { have, need } => {
                write!(f, "torn frame: have {have} bytes, need {need}")
            }
            DecodeError::Oversized { len } => {
                write!(f, "oversized frame: payload {len} exceeds {MAX_PAYLOAD}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A client-to-shard request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Submit raw specimens onto a tenant's lane; the shard batches them
    /// itself. Single-shard path — a fabric router uses
    /// [`Request::PlaceCohort`] instead so cohort ids stay globally unique.
    Submit {
        /// Tenant (QoS lane) the specimens belong to.
        tenant: u32,
        /// The specimens, in submission order.
        specimens: Vec<Specimen>,
        /// Trace context the sender's spans for this work run under, if
        /// any; the shard stamps its server-side spans with it so a
        /// merged fleet trace stitches both processes into one tree.
        trace: Option<TraceContext>,
    },
    /// Open a fully-formed cohort (id, seed, and tenant pre-assigned by
    /// the router) on this shard.
    PlaceCohort {
        /// The cohort's static identity.
        spec: CohortSpec,
        /// Trace context of the placement (see [`Request::Submit`]).
        trace: Option<TraceContext>,
    },
    /// Collect (and clear) the reports completed since the last poll.
    PollReports,
    /// Scrape the shard's metrics as Prometheus text exposition.
    Stats,
    /// Stop admitting, run live cohorts to the next round boundary, and
    /// return completed reports plus one `SBGTCKPT` blob per live cohort.
    /// Terminal: the shard refuses further work afterwards.
    Drain,
    /// Adopt cohorts drained from another shard, each an `SBGTCKPT` blob.
    Handoff {
        /// One serialized [`sbgt_service::CohortCheckpoint`] per cohort.
        checkpoints: Vec<Vec<u8>>,
        /// Trace context of the migration (see [`Request::Submit`]).
        trace: Option<TraceContext>,
    },
    /// Stop the shard server once the response is flushed.
    Shutdown,
    /// Export the shard's telemetry as one compact binary
    /// [`Response::ObsFrame`]: Prometheus samples, latency histograms in
    /// native bucket form (mergeable without re-parsing text), and the
    /// span-ring snapshot. The fleet scraper polls this.
    ObsExport,
}

/// A shard-to-client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Outcome of a submit/place/handoff: how many specimens (or cohorts,
    /// for handoff) were admitted and how many shed, with the typed reason
    /// for the first shed.
    Accepted {
        /// Units admitted.
        accepted: u32,
        /// Units shed by admission control.
        shed: u32,
        /// Reason for the first shed, when any occurred.
        reason: Option<ShedReason>,
    },
    /// Completed cohort reports, sorted by cohort id.
    Reports {
        /// The reports, bit-for-bit as the shard computed them.
        reports: Vec<CohortReport>,
    },
    /// Prometheus text exposition of the shard's metrics registry.
    Stats {
        /// The scrape body.
        prometheus: String,
    },
    /// Result of [`Request::Drain`]: everything the shard had.
    Drained {
        /// Cohorts already classified, sorted by cohort id.
        reports: Vec<CohortReport>,
        /// One `SBGTCKPT` blob per still-live cohort, sorted by cohort id.
        checkpoints: Vec<Vec<u8>>,
    },
    /// The request could not be served (decode failure, closed service,
    /// restore error). The connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Answer to [`Request::ObsExport`]: the shard's telemetry in native
    /// binary form.
    ObsFrame {
        /// The export.
        frame: ObsFrame,
    },
}

/// One shard's telemetry export: everything a fleet aggregator needs to
/// merge per-shard metrics and traces without text round-trips.
/// Histograms travel as native buckets, so the fleet merge is
/// [`LogHistogram::merge`] — exactly the union of the shard streams.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsFrame {
    /// The shard recorder's process tag
    /// ([`sbgt_engine::SpanRecorder::process_tag`]); 0 when never set.
    pub process_tag: u64,
    /// Scalar samples of the shard's Prometheus page (counters/gauges;
    /// histogram series are carried natively in [`Self::hists`]).
    pub samples: Vec<PromSample>,
    /// Named latency/size histograms in native bucket form.
    pub hists: Vec<ObsHist>,
    /// The recorder's interned span-name table; event `name` ids in
    /// [`Self::lanes`] index into it.
    pub names: Vec<String>,
    /// Span-ring snapshot, one entry per recorder lane (thread).
    pub lanes: Vec<ObsLane>,
}

/// One named histogram of an [`ObsFrame`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObsHist {
    /// Metric name (Prometheus family, without the `_bucket` suffix).
    pub name: String,
    /// Labels identifying the series within the family.
    pub labels: Vec<(String, String)>,
    /// The buckets.
    pub hist: LogHistogram,
}

/// One recorder lane (thread) of an [`ObsFrame`]'s span snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsLane {
    /// Thread name captured at lane registration.
    pub name: String,
    /// Events lost to ring wrap-around before the snapshot.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<SpanEvent>,
}

const KIND_PING: u8 = 0x01;
const KIND_SUBMIT: u8 = 0x02;
const KIND_PLACE: u8 = 0x03;
const KIND_POLL: u8 = 0x04;
const KIND_STATS: u8 = 0x05;
const KIND_DRAIN: u8 = 0x06;
const KIND_HANDOFF: u8 = 0x07;
const KIND_SHUTDOWN: u8 = 0x08;
const KIND_OBS_EXPORT: u8 = 0x09;

const KIND_PONG: u8 = 0x81;
const KIND_ACCEPTED: u8 = 0x82;
const KIND_REPORTS: u8 = 0x83;
const KIND_STATS_RESP: u8 = 0x84;
const KIND_DRAINED: u8 = 0x85;
const KIND_ERROR: u8 = 0x86;
const KIND_OBS_FRAME: u8 = 0x87;

/// No-shed-reason sentinel on the wire (reasons encode as `0..=2`).
const NO_REASON: u8 = 0xFF;

/// Trailer tag carrying a [`TraceContext`] (16 bytes: trace id +
/// parent span id).
const TRAILER_TRACE: u8 = 0x01;

// ---------------------------------------------------------------------------
// Payload writer/reader
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Bounds-checked payload cursor; every short read is
/// [`DecodeError::Corrupt`] (within a complete frame the header's length
/// is authoritative, so running out of payload is corruption, not a torn
/// stream).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError::Corrupt("field past end of payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64_bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// A `u32` count about to drive a loop of items at least `min_item`
    /// bytes each — bounded by the remaining payload so a hostile count
    /// cannot pre-allocate unbounded memory.
    fn count(&mut self, min_item: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item.max(1)) > self.buf.len() - self.pos {
            return Err(DecodeError::Corrupt("count exceeds payload"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Corrupt("trailing bytes after message"))
        }
    }
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

fn put_spec(out: &mut Vec<u8>, spec: &CohortSpec) {
    put_u64(out, spec.id);
    put_u64(out, spec.seed);
    put_u32(out, spec.tenant);
    put_u32(out, spec.risks.len() as u32);
    for r in &spec.risks {
        put_f64_bits(out, *r);
    }
    let words = spec.truth.words();
    put_u32(out, words.len() as u32);
    for w in words {
        put_u64(out, *w);
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<CohortSpec, DecodeError> {
    let id = r.u64()?;
    let seed = r.u64()?;
    let tenant = r.u32()?;
    let n = r.count(8)?;
    let risks = (0..n).map(|_| r.f64_bits()).collect::<Result<_, _>>()?;
    let n_words = r.count(8)?;
    let words = (0..n_words).map(|_| r.u64()).collect::<Result<_, _>>()?;
    let truth = BigState::from_words(words);
    Ok(CohortSpec {
        id,
        seed,
        tenant,
        risks,
        truth,
    })
}

fn status_byte(s: SubjectStatus) -> u8 {
    match s {
        SubjectStatus::Negative => 0,
        SubjectStatus::Positive => 1,
        SubjectStatus::Undetermined => 2,
    }
}

fn status_from_byte(b: u8) -> Result<SubjectStatus, DecodeError> {
    match b {
        0 => Ok(SubjectStatus::Negative),
        1 => Ok(SubjectStatus::Positive),
        2 => Ok(SubjectStatus::Undetermined),
        _ => Err(DecodeError::Corrupt("invalid subject status byte")),
    }
}

fn put_report(out: &mut Vec<u8>, report: &CohortReport) {
    put_u64(out, report.cohort);
    put_u32(out, report.tenant);
    put_u32(out, report.subjects as u32);
    put_u64(out, report.recovered_rounds);
    put_u64(out, report.outcome.tests as u64);
    put_u64(out, report.outcome.stages as u64);
    put_u32(out, report.outcome.classification.statuses.len() as u32);
    for &s in &report.outcome.classification.statuses {
        out.push(status_byte(s));
    }
    put_u32(out, report.outcome.marginals.len() as u32);
    for &m in &report.outcome.marginals {
        put_f64_bits(out, m);
    }
}

fn read_report(r: &mut Reader<'_>) -> Result<CohortReport, DecodeError> {
    let cohort = r.u64()?;
    let tenant = r.u32()?;
    let subjects = r.u32()? as usize;
    let recovered_rounds = r.u64()?;
    let tests = r.u64()? as usize;
    let stages = r.u64()? as usize;
    let n_statuses = r.count(1)?;
    let statuses = (0..n_statuses)
        .map(|_| status_from_byte(r.u8()?))
        .collect::<Result<_, _>>()?;
    let n_marginals = r.count(8)?;
    let marginals = (0..n_marginals)
        .map(|_| r.f64_bits())
        .collect::<Result<_, _>>()?;
    Ok(CohortReport {
        cohort,
        tenant,
        subjects,
        recovered_rounds,
        outcome: SessionOutcome {
            tests,
            stages,
            subjects,
            classification: CohortClassification { statuses },
            marginals,
        },
    })
}

fn put_reports(out: &mut Vec<u8>, reports: &[CohortReport]) {
    put_u32(out, reports.len() as u32);
    for report in reports {
        put_report(out, report);
    }
}

fn read_reports(r: &mut Reader<'_>) -> Result<Vec<CohortReport>, DecodeError> {
    // Smallest report: fixed fields + two empty vectors.
    let n = r.count(40)?;
    (0..n).map(|_| read_report(r)).collect()
}

fn put_blobs(out: &mut Vec<u8>, blobs: &[Vec<u8>]) {
    put_u32(out, blobs.len() as u32);
    for blob in blobs {
        put_bytes(out, blob);
    }
}

fn read_blobs(r: &mut Reader<'_>) -> Result<Vec<Vec<u8>>, DecodeError> {
    let n = r.count(4)?;
    (0..n).map(|_| r.bytes()).collect()
}

// ---------------------------------------------------------------------------
// Trailers (v3): optional tagged blocks appended after a request's base
// payload. Decoding is fail-closed: an unknown tag is Corrupt, not
// silently skipped — a peer that attaches a trailer this version does not
// understand must not have that trailer dropped on the floor.
// ---------------------------------------------------------------------------

fn put_trailers(out: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        None => out.push(0),
        Some(ctx) => {
            out.push(1);
            out.push(TRAILER_TRACE);
            put_u32(out, 16);
            put_u64(out, ctx.trace_id);
            put_u64(out, ctx.parent_span);
        }
    }
}

fn read_trailers(r: &mut Reader<'_>) -> Result<Option<TraceContext>, DecodeError> {
    let n = r.u8()?;
    let mut trace = None;
    for _ in 0..n {
        let tag = r.u8()?;
        let len = r.u32()? as usize;
        match tag {
            TRAILER_TRACE => {
                if len != 16 {
                    return Err(DecodeError::Corrupt("trace trailer has wrong length"));
                }
                if trace.is_some() {
                    return Err(DecodeError::Corrupt("duplicate trace trailer"));
                }
                trace = Some(TraceContext {
                    trace_id: r.u64()?,
                    parent_span: r.u64()?,
                });
            }
            _ => return Err(DecodeError::Corrupt("unknown trailer tag")),
        }
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// ObsFrame codec
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn read_str(r: &mut Reader<'_>) -> Result<String, DecodeError> {
    String::from_utf8(r.bytes()?).map_err(|_| DecodeError::Corrupt("string is not UTF-8"))
}

fn put_labels(out: &mut Vec<u8>, labels: &[(String, String)]) {
    put_u32(out, labels.len() as u32);
    for (k, v) in labels {
        put_str(out, k);
        put_str(out, v);
    }
}

fn read_labels(r: &mut Reader<'_>) -> Result<Vec<(String, String)>, DecodeError> {
    let n = r.count(8)?;
    (0..n).map(|_| Ok((read_str(r)?, read_str(r)?))).collect()
}

/// Histograms travel sparse: only non-empty buckets, as `(index, count)`
/// pairs, plus the scalar sum/min/max. The decoder rebuilds the dense
/// bucket array and funnels it through [`LogHistogram::from_raw_parts`],
/// so a tampered frame (bad index, inconsistent scalars, overflowing
/// counts) is a typed [`DecodeError::Corrupt`], never an inconsistent
/// histogram in memory.
fn put_hist(out: &mut Vec<u8>, hist: &LogHistogram) {
    let counts = hist.bucket_counts();
    let filled = counts.iter().filter(|&&c| c > 0).count();
    put_u32(out, filled as u32);
    for (idx, &count) in counts.iter().enumerate() {
        if count > 0 {
            put_u32(out, idx as u32);
            put_u64(out, count);
        }
    }
    put_u64(out, hist.sum());
    put_u64(out, hist.min().unwrap_or(u64::MAX));
    put_u64(out, hist.max().unwrap_or(0));
}

fn read_hist(r: &mut Reader<'_>) -> Result<LogHistogram, DecodeError> {
    let n = r.count(12)?;
    let mut counts = vec![0u64; BUCKET_COUNT];
    for _ in 0..n {
        let idx = r.u32()? as usize;
        let count = r.u64()?;
        if idx >= BUCKET_COUNT {
            return Err(DecodeError::Corrupt("histogram bucket index out of range"));
        }
        if counts[idx] != 0 {
            return Err(DecodeError::Corrupt("duplicate histogram bucket"));
        }
        counts[idx] = count;
    }
    let sum = r.u64()?;
    let min = r.u64()?;
    let max = r.u64()?;
    LogHistogram::from_raw_parts(&counts, sum, min, max)
        .ok_or(DecodeError::Corrupt("inconsistent histogram"))
}

fn span_kind_byte(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::Stage => 0,
        SpanKind::Task => 1,
        SpanKind::Round => 2,
        SpanKind::Phase => 3,
        SpanKind::Service => 4,
        SpanKind::Mark => 5,
        SpanKind::Counter => 6,
    }
}

fn span_kind_from_byte(b: u8) -> Result<SpanKind, DecodeError> {
    Ok(match b {
        0 => SpanKind::Stage,
        1 => SpanKind::Task,
        2 => SpanKind::Round,
        3 => SpanKind::Phase,
        4 => SpanKind::Service,
        5 => SpanKind::Mark,
        6 => SpanKind::Counter,
        _ => return Err(DecodeError::Corrupt("invalid span kind byte")),
    })
}

const EVENT_FLAG_SPECULATIVE: u8 = 1;
const EVENT_FLAG_FAILED: u8 = 2;

/// Fixed encoded size of one span event (the `min_item` for counts).
const EVENT_WIRE_LEN: usize = 4 + 1 + 1 + 4 + 2 + 8 + 8 + 8 + 8 + 8;

fn put_event(out: &mut Vec<u8>, e: &SpanEvent) {
    put_u32(out, e.name);
    out.push(span_kind_byte(e.kind));
    let mut flags = 0u8;
    if e.meta.speculative {
        flags |= EVENT_FLAG_SPECULATIVE;
    }
    if e.meta.failed {
        flags |= EVENT_FLAG_FAILED;
    }
    out.push(flags);
    put_u32(out, e.meta.task);
    out.extend_from_slice(&e.meta.attempt.to_le_bytes());
    put_u64(out, e.meta.cohort);
    put_u64(out, e.meta.seq);
    put_u64(out, e.start_ns);
    put_u64(out, e.end_ns);
    put_u64(out, e.value);
}

fn read_event(r: &mut Reader<'_>) -> Result<SpanEvent, DecodeError> {
    let name = r.u32()?;
    let kind = span_kind_from_byte(r.u8()?)?;
    let flags = r.u8()?;
    if flags & !(EVENT_FLAG_SPECULATIVE | EVENT_FLAG_FAILED) != 0 {
        return Err(DecodeError::Corrupt("invalid span flag bits"));
    }
    let task = r.u32()?;
    let attempt = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
    let cohort = r.u64()?;
    let seq = r.u64()?;
    let start_ns = r.u64()?;
    let end_ns = r.u64()?;
    let value = r.u64()?;
    Ok(SpanEvent {
        name,
        kind,
        start_ns,
        end_ns,
        value,
        meta: SpanMeta {
            task,
            attempt,
            speculative: flags & EVENT_FLAG_SPECULATIVE != 0,
            failed: flags & EVENT_FLAG_FAILED != 0,
            cohort,
            seq,
        },
    })
}

fn put_obs_frame(out: &mut Vec<u8>, f: &ObsFrame) {
    put_u64(out, f.process_tag);
    put_u32(out, f.samples.len() as u32);
    for s in &f.samples {
        put_str(out, &s.name);
        put_labels(out, &s.labels);
        put_f64_bits(out, s.value);
    }
    put_u32(out, f.hists.len() as u32);
    for h in &f.hists {
        put_str(out, &h.name);
        put_labels(out, &h.labels);
        put_hist(out, &h.hist);
    }
    put_u32(out, f.names.len() as u32);
    for name in &f.names {
        put_str(out, name);
    }
    put_u32(out, f.lanes.len() as u32);
    for lane in &f.lanes {
        put_str(out, &lane.name);
        put_u64(out, lane.dropped);
        put_u32(out, lane.events.len() as u32);
        for e in &lane.events {
            put_event(out, e);
        }
    }
}

fn read_obs_frame(r: &mut Reader<'_>) -> Result<ObsFrame, DecodeError> {
    let process_tag = r.u64()?;
    let n_samples = r.count(16)?;
    let samples = (0..n_samples)
        .map(|_| {
            Ok(PromSample {
                name: read_str(r)?,
                labels: read_labels(r)?,
                value: r.f64_bits()?,
            })
        })
        .collect::<Result<_, _>>()?;
    let n_hists = r.count(36)?;
    let hists = (0..n_hists)
        .map(|_| {
            Ok(ObsHist {
                name: read_str(r)?,
                labels: read_labels(r)?,
                hist: read_hist(r)?,
            })
        })
        .collect::<Result<_, _>>()?;
    let n_names = r.count(4)?;
    let names = (0..n_names)
        .map(|_| read_str(r))
        .collect::<Result<_, _>>()?;
    let n_lanes = r.count(16)?;
    let lanes = (0..n_lanes)
        .map(|_| {
            let name = read_str(r)?;
            let dropped = r.u64()?;
            let n_events = r.count(EVENT_WIRE_LEN)?;
            let events = (0..n_events)
                .map(|_| read_event(r))
                .collect::<Result<_, _>>()?;
            Ok(ObsLane {
                name,
                dropped,
                events,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(ObsFrame {
        process_tag,
        samples,
        hists,
        names,
        lanes,
    })
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

fn frame(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Split `buf` into a validated `(kind, payload)` plus the total bytes the
/// frame occupies. Shared by both directions; the caller matches the kind.
fn decode_header(buf: &[u8]) -> Result<(u8, &[u8], usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Torn {
            have: buf.len(),
            need: HEADER_LEN,
        });
    }
    let magic = [buf[0], buf[1]];
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if buf[2] != WIRE_VERSION {
        return Err(DecodeError::BadVersion(buf[2]));
    }
    let kind = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(DecodeError::Oversized { len });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(DecodeError::Torn {
            have: buf.len(),
            need: total,
        });
    }
    Ok((kind, &buf[HEADER_LEN..total], total))
}

impl Request {
    /// Encode into one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, mut payload) = (self.kind(), Vec::new());
        match self {
            Request::Ping
            | Request::PollReports
            | Request::Stats
            | Request::Drain
            | Request::Shutdown
            | Request::ObsExport => {}
            Request::Submit {
                tenant,
                specimens,
                trace,
            } => {
                put_u32(&mut payload, *tenant);
                put_u32(&mut payload, specimens.len() as u32);
                for s in specimens {
                    put_f64_bits(&mut payload, s.risk);
                    payload.push(u8::from(s.infected));
                }
                put_trailers(&mut payload, trace);
            }
            Request::PlaceCohort { spec, trace } => {
                put_spec(&mut payload, spec);
                put_trailers(&mut payload, trace);
            }
            Request::Handoff { checkpoints, trace } => {
                put_blobs(&mut payload, checkpoints);
                put_trailers(&mut payload, trace);
            }
        }
        frame(kind, payload)
    }

    fn kind(&self) -> u8 {
        match self {
            Request::Ping => KIND_PING,
            Request::Submit { .. } => KIND_SUBMIT,
            Request::PlaceCohort { .. } => KIND_PLACE,
            Request::PollReports => KIND_POLL,
            Request::Stats => KIND_STATS,
            Request::Drain => KIND_DRAIN,
            Request::Handoff { .. } => KIND_HANDOFF,
            Request::Shutdown => KIND_SHUTDOWN,
            Request::ObsExport => KIND_OBS_EXPORT,
        }
    }

    /// Decode one request frame from the front of `buf`, returning it and
    /// the bytes consumed. [`DecodeError::Torn`] means "read more first".
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), DecodeError> {
        let (kind, payload, total) = decode_header(buf)?;
        let mut r = Reader::new(payload);
        let request = match kind {
            KIND_PING => Request::Ping,
            KIND_SUBMIT => {
                let tenant = r.u32()?;
                let n = r.count(9)?;
                let specimens = (0..n)
                    .map(|_| {
                        let risk = r.f64_bits()?;
                        let infected = match r.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(DecodeError::Corrupt("invalid infected byte")),
                        };
                        Ok(Specimen { risk, infected })
                    })
                    .collect::<Result<_, _>>()?;
                let trace = read_trailers(&mut r)?;
                Request::Submit {
                    tenant,
                    specimens,
                    trace,
                }
            }
            KIND_PLACE => {
                let spec = read_spec(&mut r)?;
                let trace = read_trailers(&mut r)?;
                Request::PlaceCohort { spec, trace }
            }
            KIND_POLL => Request::PollReports,
            KIND_STATS => Request::Stats,
            KIND_DRAIN => Request::Drain,
            KIND_HANDOFF => {
                let checkpoints = read_blobs(&mut r)?;
                let trace = read_trailers(&mut r)?;
                Request::Handoff { checkpoints, trace }
            }
            KIND_SHUTDOWN => Request::Shutdown,
            KIND_OBS_EXPORT => Request::ObsExport,
            other => return Err(DecodeError::UnknownKind(other)),
        };
        r.finish()?;
        Ok((request, total))
    }
}

impl Response {
    /// Encode into one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, mut payload) = (self.kind(), Vec::new());
        match self {
            Response::Pong => {}
            Response::Accepted {
                accepted,
                shed,
                reason,
            } => {
                put_u32(&mut payload, *accepted);
                put_u32(&mut payload, *shed);
                payload.push(reason.map_or(NO_REASON, ShedReason::to_byte));
            }
            Response::Reports { reports } => put_reports(&mut payload, reports),
            Response::Stats { prometheus } => put_bytes(&mut payload, prometheus.as_bytes()),
            Response::Drained {
                reports,
                checkpoints,
            } => {
                put_reports(&mut payload, reports);
                put_blobs(&mut payload, checkpoints);
            }
            Response::Error { message } => put_bytes(&mut payload, message.as_bytes()),
            Response::ObsFrame { frame } => put_obs_frame(&mut payload, frame),
        }
        frame(kind, payload)
    }

    fn kind(&self) -> u8 {
        match self {
            Response::Pong => KIND_PONG,
            Response::Accepted { .. } => KIND_ACCEPTED,
            Response::Reports { .. } => KIND_REPORTS,
            Response::Stats { .. } => KIND_STATS_RESP,
            Response::Drained { .. } => KIND_DRAINED,
            Response::Error { .. } => KIND_ERROR,
            Response::ObsFrame { .. } => KIND_OBS_FRAME,
        }
    }

    /// Decode one response frame from the front of `buf`, returning it and
    /// the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), DecodeError> {
        let (kind, payload, total) = decode_header(buf)?;
        let mut r = Reader::new(payload);
        let response = match kind {
            KIND_PONG => Response::Pong,
            KIND_ACCEPTED => {
                let accepted = r.u32()?;
                let shed = r.u32()?;
                let reason = match r.u8()? {
                    NO_REASON => None,
                    byte => Some(
                        ShedReason::from_byte(byte)
                            .ok_or(DecodeError::Corrupt("invalid shed reason byte"))?,
                    ),
                };
                Response::Accepted {
                    accepted,
                    shed,
                    reason,
                }
            }
            KIND_REPORTS => Response::Reports {
                reports: read_reports(&mut r)?,
            },
            KIND_STATS_RESP => Response::Stats {
                prometheus: String::from_utf8(r.bytes()?)
                    .map_err(|_| DecodeError::Corrupt("stats body is not UTF-8"))?,
            },
            KIND_DRAINED => Response::Drained {
                reports: read_reports(&mut r)?,
                checkpoints: read_blobs(&mut r)?,
            },
            KIND_ERROR => Response::Error {
                message: String::from_utf8(r.bytes()?)
                    .map_err(|_| DecodeError::Corrupt("error body is not UTF-8"))?,
            },
            KIND_OBS_FRAME => Response::ObsFrame {
                frame: read_obs_frame(&mut r)?,
            },
            other => return Err(DecodeError::UnknownKind(other)),
        };
        r.finish()?;
        Ok((response, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CohortReport {
        CohortReport {
            cohort: 42,
            tenant: 7,
            subjects: 3,
            recovered_rounds: 1,
            outcome: SessionOutcome {
                tests: 9,
                stages: 4,
                subjects: 3,
                classification: CohortClassification {
                    statuses: vec![
                        SubjectStatus::Negative,
                        SubjectStatus::Positive,
                        SubjectStatus::Undetermined,
                    ],
                },
                marginals: vec![0.001, 0.997, 0.5],
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        let spec = CohortSpec::from_specimens(
            5,
            99,
            &[
                Specimen {
                    risk: 0.02,
                    infected: false,
                },
                Specimen {
                    risk: 0.12,
                    infected: true,
                },
            ],
        )
        .with_tenant(3);
        let requests = [
            Request::Ping,
            Request::Submit {
                tenant: 2,
                specimens: vec![Specimen {
                    risk: 0.05,
                    infected: true,
                }],
                trace: None,
            },
            Request::Submit {
                tenant: 2,
                specimens: vec![Specimen {
                    risk: 0.05,
                    infected: true,
                }],
                trace: Some(TraceContext::for_cohort(42)),
            },
            Request::PlaceCohort {
                spec: spec.clone(),
                trace: None,
            },
            Request::PlaceCohort {
                spec,
                trace: Some(TraceContext {
                    trace_id: u64::MAX,
                    parent_span: 1,
                }),
            },
            Request::PollReports,
            Request::Stats,
            Request::Drain,
            Request::Handoff {
                checkpoints: vec![vec![1, 2, 3], vec![]],
                trace: None,
            },
            Request::Handoff {
                checkpoints: vec![vec![1, 2, 3], vec![]],
                trace: Some(TraceContext {
                    trace_id: TraceContext::for_cohort(7).trace_id,
                    parent_span: TraceContext::for_cohort(7).child_span(3),
                }),
            },
            Request::Shutdown,
            Request::ObsExport,
        ];
        for request in requests {
            let bytes = request.encode();
            let (decoded, used) = Request::decode(&bytes).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Pong,
            Response::Accepted {
                accepted: 10,
                shed: 2,
                reason: Some(ShedReason::SloExceeded),
            },
            Response::Accepted {
                accepted: 1,
                shed: 0,
                reason: None,
            },
            Response::Reports {
                reports: vec![sample_report()],
            },
            Response::Stats {
                prometheus: "sbgt_service_rounds_total 5\n".to_string(),
            },
            Response::Drained {
                reports: vec![sample_report()],
                checkpoints: vec![vec![9; 32]],
            },
            Response::Error {
                message: "no such cohort".to_string(),
            },
        ];
        for response in responses {
            let bytes = response.encode();
            let (decoded, used) = Response::decode(&bytes).unwrap();
            assert_eq!(decoded, response);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn marginals_survive_bit_for_bit() {
        let mut report = sample_report();
        // Values with no short decimal representation: only raw bit
        // transport preserves them.
        report.outcome.marginals = vec![0.1 + 0.2, f64::MIN_POSITIVE, 1.0 - 1e-16];
        let bytes = Response::Reports {
            reports: vec![report.clone()],
        }
        .encode();
        let (decoded, _) = Response::decode(&bytes).unwrap();
        let Response::Reports { reports } = decoded else {
            panic!("wrong response kind");
        };
        for (a, b) in reports[0]
            .outcome
            .marginals
            .iter()
            .zip(&report.outcome.marginals)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn torn_frames_are_typed_not_panics() {
        let bytes = Request::Submit {
            tenant: 0,
            specimens: vec![Specimen {
                risk: 0.1,
                infected: false,
            }],
            trace: Some(TraceContext::for_cohort(9)),
        }
        .encode();
        // Every strict prefix is Torn — never a panic, never a success.
        for cut in 0..bytes.len() {
            match Request::decode(&bytes[..cut]) {
                Err(DecodeError::Torn { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_rejected_before_allocation() {
        let mut bytes = Request::Ping.encode();
        bytes[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            Request::decode(&bytes),
            Err(DecodeError::Oversized {
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn garbage_headers_are_typed() {
        assert_eq!(
            Request::decode(b"XX\x01\x01\x00\x00\x00\x00"),
            Err(DecodeError::BadMagic(*b"XX"))
        );
        assert_eq!(
            Request::decode(b"SB\x63\x01\x00\x00\x00\x00"),
            Err(DecodeError::BadVersion(0x63))
        );
        assert_eq!(
            Request::decode(b"SB\x01\x7e\x00\x00\x00\x00"),
            Err(DecodeError::BadVersion(0x01)),
            "v1 (single-word truth) is rejected at the header"
        );
        assert_eq!(
            Request::decode(b"SB\x02\x7e\x00\x00\x00\x00"),
            Err(DecodeError::BadVersion(0x02)),
            "v2 (no trailers, no telemetry verbs) is rejected at the header"
        );
        assert_eq!(
            Request::decode(b"SB\x03\x7e\x00\x00\x00\x00"),
            Err(DecodeError::UnknownKind(0x7e))
        );
    }

    #[test]
    fn corrupt_payloads_are_typed() {
        // Submit frame whose count promises more specimens than the
        // payload holds.
        let mut payload = Vec::new();
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 1000);
        let bytes = frame(KIND_SUBMIT, payload);
        assert!(matches!(
            Request::decode(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
        // Trailing bytes after a complete message.
        let mut bytes = Request::Ping.encode();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        assert_eq!(
            Request::decode(&bytes),
            Err(DecodeError::Corrupt("trailing bytes after message"))
        );
        // A shed-reason byte outside the known range.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 1);
        payload.push(7);
        let bytes = frame(KIND_ACCEPTED, payload);
        assert_eq!(
            Response::decode(&bytes),
            Err(DecodeError::Corrupt("invalid shed reason byte"))
        );
    }

    fn sample_obs_frame() -> ObsFrame {
        let mut hist = LogHistogram::new();
        for v in [3u64, 70, 900, 900, 12_345, u64::MAX] {
            hist.record(v);
        }
        ObsFrame {
            process_tag: 0xFEED_BEEF,
            samples: vec![
                PromSample {
                    name: "sbgt_service_rounds_total".to_string(),
                    labels: vec![("tenant".to_string(), "7".to_string())],
                    value: 5.0,
                },
                PromSample {
                    name: "sbgt_tenant_slo_burn_rate".to_string(),
                    labels: vec![
                        ("tenant".to_string(), "3".to_string()),
                        ("shard".to_string(), "a\\b\"c\nd".to_string()),
                    ],
                    value: f64::INFINITY,
                },
            ],
            hists: vec![
                ObsHist {
                    name: "sbgt_service_round_latency_us".to_string(),
                    labels: vec![("tenant".to_string(), "7".to_string())],
                    hist,
                },
                ObsHist {
                    name: "sbgt_bp_sweeps".to_string(),
                    labels: vec![],
                    hist: LogHistogram::new(),
                },
            ],
            names: vec!["round".to_string(), "bp:sweep".to_string()],
            lanes: vec![
                ObsLane {
                    name: "worker-0".to_string(),
                    dropped: 3,
                    events: vec![SpanEvent {
                        name: 1,
                        kind: SpanKind::Mark,
                        start_ns: 10,
                        end_ns: 10,
                        value: 42,
                        meta: SpanMeta {
                            task: 2,
                            attempt: 1,
                            speculative: true,
                            failed: false,
                            cohort: 5,
                            seq: 9,
                        },
                    }],
                },
                ObsLane {
                    name: "worker-1".to_string(),
                    dropped: 0,
                    events: vec![],
                },
            ],
        }
    }

    #[test]
    fn obs_frames_round_trip() {
        let response = Response::ObsFrame {
            frame: sample_obs_frame(),
        };
        let bytes = response.encode();
        let (decoded, used) = Response::decode(&bytes).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(used, bytes.len());
        // The carried histogram is bit-for-bit the original: merging the
        // decoded copy into an empty histogram reproduces it exactly.
        let Response::ObsFrame { frame } = decoded else {
            unreachable!()
        };
        let mut merged = LogHistogram::new();
        merged.merge(&frame.hists[0].hist);
        assert_eq!(merged, frame.hists[0].hist);
    }

    #[test]
    fn obs_frame_prefixes_are_torn_never_panics() {
        let bytes = Response::ObsFrame {
            frame: sample_obs_frame(),
        }
        .encode();
        for cut in 0..bytes.len() {
            match Response::decode(&bytes[..cut]) {
                Err(DecodeError::Torn { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn trailer_decoding_is_fail_closed() {
        let base = |payload: &mut Vec<u8>| {
            put_u32(payload, 2); // tenant
            put_u32(payload, 0); // no specimens
        };
        // Unknown trailer tag: rejected, not skipped.
        let mut payload = Vec::new();
        base(&mut payload);
        payload.push(1);
        payload.push(0x7F);
        put_u32(&mut payload, 0);
        assert_eq!(
            Request::decode(&frame(KIND_SUBMIT, payload)),
            Err(DecodeError::Corrupt("unknown trailer tag"))
        );
        // Trace trailer with the wrong length.
        let mut payload = Vec::new();
        base(&mut payload);
        payload.push(1);
        payload.push(TRAILER_TRACE);
        put_u32(&mut payload, 8);
        put_u64(&mut payload, 1);
        assert_eq!(
            Request::decode(&frame(KIND_SUBMIT, payload)),
            Err(DecodeError::Corrupt("trace trailer has wrong length"))
        );
        // Duplicate trace trailer.
        let mut payload = Vec::new();
        base(&mut payload);
        payload.push(2);
        for _ in 0..2 {
            payload.push(TRAILER_TRACE);
            put_u32(&mut payload, 16);
            put_u64(&mut payload, 1);
            put_u64(&mut payload, 2);
        }
        assert_eq!(
            Request::decode(&frame(KIND_SUBMIT, payload)),
            Err(DecodeError::Corrupt("duplicate trace trailer"))
        );
        // Missing trailer block entirely (a v2-shaped Submit payload):
        // typed Corrupt, not a misparse.
        let mut payload = Vec::new();
        base(&mut payload);
        assert!(matches!(
            Request::decode(&frame(KIND_SUBMIT, payload)),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn tampered_obs_frames_are_typed() {
        // Histogram bucket index out of range.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // process_tag
        put_u32(&mut payload, 0); // samples
        put_u32(&mut payload, 1); // one hist
        put_str(&mut payload, "h");
        put_u32(&mut payload, 0); // labels
        put_u32(&mut payload, 1); // one bucket pair
        put_u32(&mut payload, BUCKET_COUNT as u32); // index past the end
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 1); // sum
        put_u64(&mut payload, 1); // min
        put_u64(&mut payload, 1); // max
        put_u32(&mut payload, 0); // names
        put_u32(&mut payload, 0); // lanes
        assert_eq!(
            Response::decode(&frame(KIND_OBS_FRAME, payload)),
            Err(DecodeError::Corrupt("histogram bucket index out of range"))
        );
        // Scalars inconsistent with the buckets (empty buckets, sum 5):
        // LogHistogram::from_raw_parts fails closed.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 1);
        put_str(&mut payload, "h");
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0); // no bucket pairs
        put_u64(&mut payload, 5); // but sum claims samples
        put_u64(&mut payload, u64::MAX);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        assert_eq!(
            Response::decode(&frame(KIND_OBS_FRAME, payload)),
            Err(DecodeError::Corrupt("inconsistent histogram"))
        );
        // Span event with an invalid kind byte.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 1); // one lane
        put_str(&mut payload, "lane");
        put_u64(&mut payload, 0); // dropped
        put_u32(&mut payload, 1); // one event
        put_u32(&mut payload, 0); // name id
        payload.push(7); // kind byte past Counter
        payload.extend_from_slice(&[0; EVENT_WIRE_LEN - 5]);
        assert_eq!(
            Response::decode(&frame(KIND_OBS_FRAME, payload)),
            Err(DecodeError::Corrupt("invalid span kind byte"))
        );
        // Non-UTF-8 metric name.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 1); // one sample
        put_bytes(&mut payload, &[0xFF, 0xFE]);
        put_u32(&mut payload, 0);
        put_f64_bits(&mut payload, 1.0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        assert_eq!(
            Response::decode(&frame(KIND_OBS_FRAME, payload)),
            Err(DecodeError::Corrupt("string is not UTF-8"))
        );
    }

    mod adversarial_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Flipping any byte of an encoded ObsFrame never panics: the
            /// decoder answers Ok (the flip hit a don't-care bit) or a
            /// typed DecodeError.
            fn obs_frame_byte_flips_never_panic(pos in any::<u64>(), xor in 1u8..=255) {
                let mut bytes = Response::ObsFrame { frame: sample_obs_frame() }.encode();
                let i = (pos as usize) % bytes.len();
                bytes[i] ^= xor;
                let _ = Response::decode(&bytes);
            }

            /// Truncating an encoded ObsFrame anywhere inside the payload
            /// (keeping the header intact) is always a typed error.
            fn obs_frame_payload_truncation_is_typed(frac in 0.0f64..1.0) {
                let bytes = Response::ObsFrame { frame: sample_obs_frame() }.encode();
                let cut = HEADER_LEN + ((bytes.len() - HEADER_LEN - 1) as f64 * frac) as usize;
                let mut torn = bytes[..cut].to_vec();
                // Re-declare the shorter payload so the header is
                // self-consistent and the damage is inside the body.
                torn[4..8].copy_from_slice(&((cut - HEADER_LEN) as u32).to_le_bytes());
                match Response::decode(&torn) {
                    Ok(_) => prop_assert!(false, "truncated body decoded"),
                    Err(e) => prop_assert!(matches!(e, DecodeError::Corrupt(_))),
                }
            }

            /// Trace trailers round-trip for arbitrary contexts on every
            /// work-carrying verb.
            fn trace_trailers_round_trip(
                trace_id in any::<u64>(),
                parent in any::<u64>(),
                present in any::<bool>(),
            ) {
                let trace = present.then_some(TraceContext { trace_id, parent_span: parent });
                let requests = [
                    Request::Submit { tenant: 1, specimens: vec![], trace },
                    Request::Handoff { checkpoints: vec![vec![1]], trace },
                ];
                for request in requests {
                    let (decoded, _) = Request::decode(&request.encode()).unwrap();
                    prop_assert_eq!(decoded, request);
                }
            }
        }
    }
}
