//! # sbgt-net — the network front door and shard fabric for `sbgt-service`
//!
//! PR 4 made SBGT a multi-cohort *service*; this crate makes it a
//! multi-process *system*. Four layers, bottom up:
//!
//! * [`frame`] — a length-prefixed, versioned binary wire protocol.
//!   Floats travel as raw IEEE-754 bits, so a report read over TCP is
//!   **bit-for-bit** the report the shard computed. Every malformed input
//!   is a typed [`frame::DecodeError`] (torn, oversized, unknown kind,
//!   bad magic/version, corrupt payload) — never a panic.
//! * [`reactor`] — a non-blocking epoll event loop with no async runtime
//!   and no libc: the three epoll syscalls are issued via inline assembly
//!   on Linux/x86_64, with a portable polling fallback elsewhere.
//! * [`server`] / [`client`] — one [`server::ShardServer`] wraps one
//!   [`sbgt_service::SurveillanceService`] behind the wire verbs (submit,
//!   place-cohort, poll-reports, stats, drain, handoff, shutdown); the
//!   blocking [`client::ShardClient`] is the caller side.
//! * [`ring`] / [`fabric`] — consistent-hash placement of cohorts onto
//!   shards, and a [`fabric::FabricRouter`] that forms cohorts
//!   client-side, places them by cohort id, and **rebalances by
//!   checkpoint handoff**: draining a shard freezes its live cohorts into
//!   `SBGTCKPT` blobs that resume byte-exactly on whichever shard the
//!   shrunken ring assigns them.
//!
//! On top of the fabric sits **fleet observability**: work-carrying
//! requests propagate a deterministic [`sbgt_engine::TraceContext`]
//! (derived from the cohort id, so the wire bytes are identical with
//! tracing on or off), shards answer [`frame::Request::ObsExport`] with a
//! compact binary [`frame::ObsFrame`] (Prometheus samples + native
//! histogram buckets + span-ring snapshot), and a
//! [`fabric::FleetScraper`] merges the exports into one fleet Prometheus
//! page and one Chrome trace whose per-cohort trees span processes.
//!
//! The paper's determinism contract survives the network: scheduling,
//! sharding, and migration decide *where and when* a cohort's rounds run,
//! never *what* they compute.

pub mod client;
pub mod fabric;
pub mod frame;
pub mod reactor;
pub mod ring;
pub mod server;

pub use client::ShardClient;
pub use fabric::{FabricConfig, FabricCounters, FabricRouter, FleetScraper};
pub use frame::{
    DecodeError, ObsFrame, ObsHist, ObsLane, Request, Response, MAX_PAYLOAD, WIRE_VERSION,
};
pub use reactor::{Event, Interest, Reactor};
pub use ring::{HashRing, RingError, DEFAULT_VNODES};
pub use server::ShardServer;
