//! Loopback wire tests: a workload classified through the TCP front door
//! must be **bit-for-bit** identical to the same cohorts run in-process,
//! and no byte stream — torn, oversized, or garbage — may panic the
//! server.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sbgt_engine::{EngineConfig, SharedEngine};
use sbgt_net::{
    DecodeError, FabricConfig, FabricRouter, Request, Response, ShardClient, ShardServer,
    MAX_PAYLOAD,
};
use sbgt_service::{
    batch_specimens, run_cohort_serial, CohortReport, CohortSpec, ServiceConfig, Specimen,
};

fn shared_engine() -> SharedEngine {
    SharedEngine::new(EngineConfig::default().with_threads(2))
}

fn specimens(n: usize, seed: u64) -> Vec<Specimen> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let risk = 0.01 + rng.random::<f64>() * 0.12;
            Specimen {
                risk,
                infected: rng.random_bool(risk),
            }
        })
        .collect()
}

fn wire_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        batch_size: 6,
        // Long deadline: only the size trigger forms batches, so the
        // server-side cohorts match `batch_specimens` exactly.
        batch_deadline: Duration::from_secs(5),
        dense_threshold: 5,
        parts: 3,
        base_seed: 77,
        ..ServiceConfig::default()
    }
}

/// Poll a shard until `expected` reports have arrived (or a deadline).
fn poll_until(client: &mut ShardClient, expected: usize) -> Vec<CohortReport> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut all = Vec::new();
    while all.len() < expected {
        assert!(
            Instant::now() < deadline,
            "only {} of {expected} reports arrived",
            all.len()
        );
        match client.call(&Request::PollReports).unwrap() {
            Response::Reports { reports } => all.extend(reports),
            other => panic!("unexpected response: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    all.sort_by_key(|r| r.cohort);
    all
}

#[test]
fn wire_submission_matches_in_process_run_bit_for_bit() {
    let engine = shared_engine();
    let config = wire_config();
    let sp = specimens(36, 11);

    let server = ShardServer::bind("127.0.0.1:0", engine.clone(), config.clone()).unwrap();
    let mut client = ShardClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);

    // Submit over the wire in uneven chunks (frames need not align with
    // batches).
    for chunk in sp.chunks(7) {
        match client
            .call(&Request::Submit {
                tenant: 0,
                specimens: chunk.to_vec(),
                trace: None,
            })
            .unwrap()
        {
            Response::Accepted {
                accepted,
                shed: 0,
                reason: None,
            } => assert_eq!(accepted as usize, chunk.len()),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    let specs = batch_specimens(&sp, config.batch_size, config.base_seed);
    let reports = poll_until(&mut client, specs.len());

    // Every report read over TCP equals the serial in-process reference,
    // down to the last marginal bit.
    for (report, spec) in reports.iter().zip(&specs) {
        let serial =
            run_cohort_serial(&engine, spec, config.model, config.session, config.policy());
        assert_eq!(report.cohort, spec.id);
        assert_eq!(report.tenant, 0);
        assert_eq!(report.outcome, serial);
        for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // Stats scrape over the wire parses and shows the submissions.
    match client.call(&Request::Stats).unwrap() {
        Response::Stats { prometheus } => {
            let samples = sbgt_engine::obs::parse_prometheus(&prometheus).unwrap();
            let submitted = samples
                .iter()
                .find(|s| s.name == "sbgt_service_specimens_submitted_total")
                .expect("submitted counter present");
            assert_eq!(submitted.value as usize, sp.len());
        }
        other => panic!("unexpected response: {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn malformed_frames_get_typed_errors_and_never_kill_the_server() {
    let engine = shared_engine();
    let server = ShardServer::bind("127.0.0.1:0", engine, wire_config()).unwrap();
    let addr = server.local_addr();

    // Garbage magic.
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(b"XXzzzzzz").unwrap() {
        Response::Error { message } => assert!(message.contains("bad magic"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // Future protocol version.
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(b"SB\x09\x01\x00\x00\x00\x00").unwrap() {
        Response::Error { message } => assert!(message.contains("version"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // Stale protocol version (v1, pre word-list truth).
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(b"SB\x01\x01\x00\x00\x00\x00").unwrap() {
        Response::Error { message } => assert!(message.contains("version"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // Stale protocol version (v2, pre trace-trailers).
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(b"SB\x02\x01\x00\x00\x00\x00").unwrap() {
        Response::Error { message } => assert!(message.contains("version"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // Unknown frame kind.
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(b"SB\x03\x7e\x00\x00\x00\x00").unwrap() {
        Response::Error { message } => assert!(message.contains("unknown"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // Oversized length prefix: rejected before any allocation.
    let mut header = Vec::from(*b"SB\x03\x01");
    header.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(&header).unwrap() {
        Response::Error { message } => assert!(message.contains("oversized"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // Corrupt payload: a Submit frame promising more specimens than it
    // carries.
    let mut corrupt = Vec::from(*b"SB\x03\x02");
    corrupt.extend_from_slice(&8u32.to_le_bytes());
    corrupt.extend_from_slice(&0u32.to_le_bytes());
    corrupt.extend_from_slice(&1000u32.to_le_bytes());
    let mut client = ShardClient::connect(addr).unwrap();
    match client.call_raw(&corrupt).unwrap() {
        Response::Error { message } => assert!(message.contains("corrupt"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    // A torn frame is NOT an error on a live stream: completing it later
    // must yield a normal response.
    let ping = Request::Ping.encode();
    {
        use std::io::{Read, Write};
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&ping[..5]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        raw.write_all(&ping[5..]).unwrap();
        let mut buf = [0u8; 64];
        let n = raw.read(&mut buf).unwrap();
        let (response, _) = Response::decode(&buf[..n]).unwrap();
        assert_eq!(response, Response::Pong);
    }

    // After all that abuse the server still serves.
    let mut client = ShardClient::connect(addr).unwrap();
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    server.shutdown().unwrap();
}

#[test]
fn decode_error_variants_match_the_wire_cases() {
    // The same malformed inputs the server sees, asserted at the codec
    // level for their exact typed variants.
    assert!(matches!(
        Request::decode(b"XXzzzzzz"),
        Err(DecodeError::BadMagic(_))
    ));
    assert!(matches!(
        Request::decode(b"SB\x09\x01\x00\x00\x00\x00"),
        Err(DecodeError::BadVersion(9))
    ));
    assert!(
        matches!(
            Request::decode(b"SB\x01\x7e\x00\x00\x00\x00"),
            Err(DecodeError::BadVersion(1)),
        ),
        "v1 frames are rejected at the header since the truth widened"
    );
    assert!(
        matches!(
            Request::decode(b"SB\x02\x7e\x00\x00\x00\x00"),
            Err(DecodeError::BadVersion(2)),
        ),
        "v2 frames are rejected at the header since trailers were added"
    );
    assert!(matches!(
        Request::decode(b"SB\x03\x7e\x00\x00\x00\x00"),
        Err(DecodeError::UnknownKind(0x7e))
    ));
    let ping = Request::Ping.encode();
    assert!(matches!(
        Request::decode(&ping[..5]),
        Err(DecodeError::Torn { have: 5, .. })
    ));
}

#[test]
fn drain_handoff_relocates_cohorts_bit_for_bit() {
    // Two shards, each its own engine (as in separate processes); a
    // router places 24 cohorts, then shard 0 is drained mid-run and its
    // live cohorts must finish on shard 1 with identical reports.
    let config = ServiceConfig {
        workers: 2,
        batch_size: 12,
        dense_threshold: 13,
        base_seed: 4242,
        ..ServiceConfig::default()
    };
    let server_a = ShardServer::bind("127.0.0.1:0", shared_engine(), config.clone()).unwrap();
    let server_b = ShardServer::bind("127.0.0.1:0", shared_engine(), config.clone()).unwrap();

    let fabric_config = FabricConfig {
        batch_size: 12,
        base_seed: config.base_seed,
        ..FabricConfig::default()
    };
    let mut router = FabricRouter::connect(
        &[(0, server_a.local_addr()), (1, server_b.local_addr())],
        &fabric_config,
    )
    .unwrap();

    let sp = specimens(24 * 12, 29);
    for s in &sp {
        router.submit(0, *s).unwrap();
    }
    router.flush_all().unwrap();
    let placed = router.counters().placed_cohorts;
    assert_eq!(placed, 24);
    assert_eq!(router.counters().shed_specimens, 0);

    // Drain shard 0 immediately: its live cohorts freeze into SBGTCKPT
    // blobs and re-home onto shard 1.
    let mut reports = router.drain_shard(0).unwrap();
    assert_eq!(router.live_shards(), vec![1]);
    assert!(
        router.counters().relocated_cohorts > 0,
        "drain this early must catch live cohorts"
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    while (reports.len() as u64) < placed {
        assert!(
            Instant::now() < deadline,
            "only {} of {placed} reports arrived",
            reports.len()
        );
        reports.extend(router.poll_reports().unwrap());
        std::thread::sleep(Duration::from_millis(2));
    }
    reports.sort_by_key(|r| r.cohort);

    // Reference: the router's cohort formation is deterministic (chunks of
    // 12 in submission order, sequential ids), so rebuild each spec and
    // run it serially.
    let engine = shared_engine();
    for (i, (report, chunk)) in reports.iter().zip(sp.chunks(12)).enumerate() {
        let spec = CohortSpec::from_specimens(i as u64, config.base_seed, chunk);
        let serial = run_cohort_serial(
            &engine,
            &spec,
            config.model,
            config.session,
            config.policy(),
        );
        assert_eq!(report.cohort, i as u64);
        assert_eq!(report.outcome, serial, "cohort {i} diverged after handoff");
        for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    router.shutdown_all().unwrap();
    server_a.join().unwrap();
    server_b.join().unwrap();
}

#[test]
fn drained_checkpoints_round_trip_byte_exactly() {
    // Pin the byte-exactness of the handoff payload itself: every blob a
    // drain returns re-encodes to the identical bytes after a decode.
    let config = ServiceConfig {
        workers: 1,
        batch_size: 10,
        dense_threshold: 11,
        base_seed: 99,
        ..ServiceConfig::default()
    };
    let server = ShardServer::bind("127.0.0.1:0", shared_engine(), config.clone()).unwrap();
    let mut client = ShardClient::connect(server.local_addr()).unwrap();

    let sp = specimens(40, 51);
    for (i, chunk) in sp.chunks(10).enumerate() {
        let spec = CohortSpec::from_specimens(i as u64, config.base_seed, chunk);
        match client
            .call(&Request::PlaceCohort { spec, trace: None })
            .unwrap()
        {
            Response::Accepted { accepted: 1, .. } => {}
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let checkpoints = match client.call(&Request::Drain).unwrap() {
        Response::Drained { checkpoints, .. } => checkpoints,
        other => panic!("unexpected response: {other:?}"),
    };
    assert!(
        !checkpoints.is_empty(),
        "immediate drain must freeze cohorts"
    );
    for blob in &checkpoints {
        let decoded = sbgt_service::CohortCheckpoint::from_bytes(blob).unwrap();
        assert_eq!(
            &decoded.to_bytes(),
            blob,
            "SBGTCKPT blob must round-trip byte-exactly"
        );
    }
    // A drained shard refuses new work with a typed error.
    match client
        .call(&Request::Submit {
            tenant: 0,
            specimens: vec![sp[0]],
            trace: None,
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("drained"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }
    server.shutdown().unwrap();
}
