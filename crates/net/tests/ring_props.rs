//! Property tests for the consistent-hash ring: membership changes move
//! the minimum set of keys, lookups are stable, and the empty ring is a
//! typed error.

use proptest::prelude::*;

use sbgt_net::{HashRing, RingError};

fn shard_set() -> impl Strategy<Value = Vec<u32>> {
    // Distinct shard ids, 2..=8 of them, drawn from a roomy id space.
    prop::collection::vec(0u32..1000, 2..=8).prop_map(|ids| {
        let mut ids: Vec<u32> = ids
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        if ids.len() < 2 {
            ids.push(ids[0] + 1);
        }
        ids
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding a shard only pulls keys onto the new shard: every key either
    /// keeps its previous owner or moves to the newcomer — never to a
    /// third shard. This is the defining property of consistent hashing.
    #[test]
    fn adding_a_shard_moves_keys_only_onto_it(
        shards in shard_set(),
        new_shard in 1000u32..2000,
        keys in prop::collection::vec(any::<u64>(), 256),
    ) {
        let before = HashRing::with_shards(shards.iter().copied());
        let mut after = before.clone();
        after.add_shard(new_shard);
        for &key in &keys {
            let old = before.shard_for(key).unwrap();
            let new = after.shard_for(key).unwrap();
            prop_assert!(
                new == old || new == new_shard,
                "key {key} moved {old} -> {new}, not to the new shard {new_shard}"
            );
        }
    }

    /// Removing a shard only moves the keys it owned; everything else
    /// keeps its placement (what makes drain/rebalance cheap).
    #[test]
    fn removing_a_shard_strands_no_other_keys(
        shards in shard_set(),
        victim_idx in 0usize..8,
        keys in prop::collection::vec(any::<u64>(), 256),
    ) {
        let victim = shards[victim_idx % shards.len()];
        let before = HashRing::with_shards(shards.iter().copied());
        let mut after = before.clone();
        after.remove_shard(victim);
        for &key in &keys {
            let old = before.shard_for(key).unwrap();
            let new = after.shard_for(key).unwrap();
            if old == victim {
                prop_assert!(new != victim, "key {key} still on the removed shard");
            } else {
                prop_assert_eq!(old, new, "key {} relocated needlessly", key);
            }
        }
    }

    /// Relocation volume on a membership change is ~K/M, not a reshuffle:
    /// the moved fraction stays within a loose multiple of the ideal.
    #[test]
    fn relocation_stays_near_k_over_m(
        shards in shard_set(),
        new_shard in 1000u32..2000,
    ) {
        let m = shards.len();
        let before = HashRing::with_shards(shards.iter().copied());
        let mut after = before.clone();
        after.add_shard(new_shard);
        let keys: u64 = 4096;
        let moved = (0..keys)
            .filter(|&k| before.shard_for(k).unwrap() != after.shard_for(k).unwrap())
            .count();
        let ideal = keys as f64 / (m as f64 + 1.0);
        prop_assert!(
            (moved as f64) < 3.0 * ideal + 64.0,
            "{moved} of {keys} keys moved; ideal ≈ {ideal:.0} across {m}+1 shards"
        );
    }

    /// Lookups are pure: same ring, same key, same shard — across clones
    /// and repeated queries — and always a current member.
    #[test]
    fn lookups_are_stable_and_land_on_members(
        shards in shard_set(),
        keys in prop::collection::vec(any::<u64>(), 64),
    ) {
        let ring = HashRing::with_shards(shards.iter().copied());
        let clone = ring.clone();
        for &key in &keys {
            let a = ring.shard_for(key).unwrap();
            prop_assert_eq!(a, ring.shard_for(key).unwrap());
            prop_assert_eq!(a, clone.shard_for(key).unwrap());
            prop_assert!(shards.contains(&a), "lookup returned non-member {}", a);
        }
    }

    /// Draining every shard ends at the typed empty-ring error, never a
    /// panic — the router's terminal state.
    #[test]
    fn removing_every_shard_yields_the_typed_error(
        shards in shard_set(),
        key in any::<u64>(),
    ) {
        let mut ring = HashRing::with_shards(shards.iter().copied());
        for &shard in &shards {
            ring.remove_shard(shard);
        }
        prop_assert!(ring.is_empty());
        prop_assert_eq!(ring.shard_for(key), Err(RingError::Empty));
    }
}
