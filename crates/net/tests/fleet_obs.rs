//! Fleet observability over loopback: trace contexts propagate across
//! the wire, shard telemetry exports merge into one Prometheus page and
//! one Chrome trace, and — the tentpole assertion — a cohort relocated by
//! drain/handoff leaves spans on **two processes under one trace id**,
//! with reports that stay bit-for-bit identical to a serial run.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sbgt_engine::obs::{parse_prometheus, validate_chrome_trace, NO_COHORT};
use sbgt_engine::{trace_id_for_cohort, EngineConfig, SharedEngine, TraceLevel};
use sbgt_net::{FabricConfig, FabricRouter, FleetScraper, ShardServer};
use sbgt_service::{run_cohort_serial, CohortReport, CohortSpec, ServiceConfig, Specimen};

fn specimens(n: usize, seed: u64) -> Vec<Specimen> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let risk = 0.01 + rng.random::<f64>() * 0.12;
            Specimen {
                risk,
                infected: rng.random_bool(risk),
            }
        })
        .collect()
}

fn traced_engine() -> SharedEngine {
    let engine = SharedEngine::new(EngineConfig::default().with_threads(2));
    engine.obs().set_level(TraceLevel::Full);
    engine
}

#[test]
fn relocated_cohort_stitches_one_trace_across_two_processes() {
    let config = ServiceConfig {
        workers: 2,
        batch_size: 12,
        dense_threshold: 13,
        base_seed: 4242,
        ..ServiceConfig::default()
    };
    let engine_a = traced_engine();
    let engine_b = traced_engine();
    let server_a = ShardServer::bind("127.0.0.1:0", engine_a, config.clone()).unwrap();
    let server_b = ShardServer::bind("127.0.0.1:0", engine_b, config.clone()).unwrap();

    let fabric_config = FabricConfig {
        batch_size: 12,
        base_seed: config.base_seed,
        ..FabricConfig::default()
    };
    let mut router = FabricRouter::connect(
        &[(0, server_a.local_addr()), (1, server_b.local_addr())],
        &fabric_config,
    )
    .unwrap();

    let sp = specimens(12 * 12, 29);
    for s in &sp {
        router.submit(0, *s).unwrap();
    }
    router.flush_all().unwrap();
    let placed = router.counters().placed_cohorts;
    assert_eq!(placed, 12);

    // Scrape both shards before the drain so shard 0's placement spans
    // are captured even though draining stops its service.
    let mut scraper = FleetScraper::new();
    scraper.poll(&mut router).unwrap();

    // Drain shard 0: its live cohorts relocate to shard 1, which records
    // an adoption span for each under the same deterministic trace id.
    let mut reports = router.drain_shard(0).unwrap();
    assert!(
        router.counters().relocated_cohorts > 0,
        "drain this early must catch live cohorts"
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    while (reports.len() as u64) < placed {
        assert!(
            Instant::now() < deadline,
            "only {} of {placed} reports arrived",
            reports.len()
        );
        reports.extend(router.poll_reports().unwrap());
        std::thread::sleep(Duration::from_millis(2));
    }
    reports.sort_by_key(|r| r.cohort);

    // A second poll picks up everything recorded since the first; the
    // lane cursors must not re-ingest events the first poll already saw.
    scraper.poll(&mut router).unwrap();
    let events_after_second = scraper.total_events();
    scraper.poll(&mut router).unwrap();
    assert_eq!(
        scraper.total_events(),
        events_after_second,
        "an idle re-poll must not duplicate events"
    );
    assert_eq!(scraper.shard_count(), 2);

    // Both shards stamped net-layer spans; shard 1 additionally adopted.
    let names_a = scraper.shard_names(0);
    let names_b = scraper.shard_names(1);
    assert!(names_a.iter().any(|n| n == "net:place"));
    assert!(names_a.iter().any(|n| n == "net:trace-inherit"));
    assert!(names_b.iter().any(|n| n == "net:adopt"));

    // The tentpole: at least one cohort has spans on BOTH processes.
    let cohorts = |shard: u32| -> std::collections::BTreeSet<u64> {
        scraper
            .shard_events(shard)
            .iter()
            .map(|e| e.meta.cohort)
            .filter(|&c| c != NO_COHORT)
            .collect()
    };
    let shared: Vec<u64> = cohorts(0).intersection(&cohorts(1)).copied().collect();
    assert!(
        !shared.is_empty(),
        "a relocated cohort must leave spans on both shards"
    );

    // The merged Chrome trace validates, names two processes, and carries
    // the shared cohort's deterministic trace id (the same 16-hex-digit
    // id whichever process recorded the span).
    let trace = scraper.render_chrome_trace();
    let summary = validate_chrome_trace(&trace).unwrap();
    assert_eq!(summary.processes, 2, "both shards appear as processes");
    let wanted = format!("{:016x}", trace_id_for_cohort(shared[0]));
    assert!(
        trace.contains(&wanted),
        "merged trace must carry the shared cohort's trace id {wanted}"
    );

    // Fleet Prometheus page: parses, is shard-labeled, and the merged
    // round-latency histogram is exactly the sum of the shard scrapes.
    let page = scraper.render_prometheus();
    let samples = parse_prometheus(&page).unwrap();
    assert!(samples
        .iter()
        .any(|s| s.labels.iter().any(|(k, v)| k == "shard" && v == "0")));
    assert!(samples
        .iter()
        .any(|s| s.labels.iter().any(|(k, v)| k == "shard" && v == "1")));
    let merged = scraper
        .merged_hists()
        .into_iter()
        .find(|h| h.name == "sbgt_service_round_latency_us" && h.labels.is_empty())
        .expect("fleet round-latency histogram present");
    let per_shard_total: u64 = [0u32, 1]
        .iter()
        .filter_map(|&s| scraper.shard_hist(s, "sbgt_service_round_latency_us"))
        .map(|h| h.count())
        .sum();
    assert!(per_shard_total > 0, "rounds ran on the fleet");
    assert_eq!(
        merged.hist.count(),
        per_shard_total,
        "fleet merge equals the sum of the individual shard scrapes"
    );
    let bucket_sum: f64 = samples
        .iter()
        .filter(|s| s.name == "sbgt_fleet_service_round_latency_us_count" && s.labels.is_empty())
        .map(|s| s.value)
        .sum();
    assert_eq!(bucket_sum as u64, per_shard_total);

    // Tracing never touches results: every report matches the serial
    // untraced reference bit-for-bit.
    let reference = SharedEngine::new(EngineConfig::default().with_threads(2));
    check_reports(&reports, &sp, &config, &reference);

    router.shutdown_all().unwrap();
    server_a.join().unwrap();
    server_b.join().unwrap();
}

fn check_reports(
    reports: &[CohortReport],
    sp: &[Specimen],
    config: &ServiceConfig,
    engine: &SharedEngine,
) {
    for (i, (report, chunk)) in reports.iter().zip(sp.chunks(12)).enumerate() {
        let spec = CohortSpec::from_specimens(i as u64, config.base_seed, chunk);
        let serial =
            run_cohort_serial(engine, &spec, config.model, config.session, config.policy());
        assert_eq!(report.cohort, i as u64);
        assert_eq!(report.outcome, serial, "cohort {i} diverged under tracing");
        for (a, b) in report.outcome.marginals.iter().zip(&serial.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
