//! # sbgt — Scaling Bayesian-based Group Testing
//!
//! Rust reproduction of **SBGT** (Chen, Qi, Lu, Tatsuoka — IPDPS 2023): a
//! framework that scales Bayesian lattice group testing to cohort sizes
//! where the `2^N` state space makes naive implementations unusable.
//!
//! The paper's three accelerated operation classes map to this crate as:
//!
//! | Operation class | Here |
//! |---|---|
//! | lattice-model manipulation | [`SbgtSession::observe`] (fused parallel posterior update) |
//! | test selection | [`SbgtSession::select_next`] / [`SbgtSession::select_stage`] (one-pass prefix halving, branch-fused look-ahead) |
//! | statistical analysis | [`SbgtSession::report`] (fused parallel marginals/entropy/top-k) |
//!
//! Two execution backends implement the same math:
//!
//! * [`session::SbgtSession`] — the SBGT framework: likelihood-table
//!   broadcast, fused multiply+reduce passes, one-pass all-prefix halving
//!   search, rayon chunk kernels, and an engine-sharded dataflow variant
//!   ([`parallel::ShardedPosterior`]) that mirrors the paper's Spark
//!   mapping (partitioned lattice shards, broadcast tables, stage metrics).
//! * [`baseline::BaselineSession`] — the pre-SBGT "state-of-the-art
//!   framework" comparator: same Bayesian semantics, implemented the
//!   straightforward way (per-state response-model calls, separate
//!   multiply/sum/scale passes, one full lattice scan per candidate pool,
//!   one pass per marginal). The speedup experiments (E2–E4) measure the
//!   gap between the two.
//!
//! ## Quickstart
//!
//! ```
//! use sbgt::prelude::*;
//!
//! // 12 subjects at 2% prevalence, PCR-like assay with dilution.
//! let prior = Prior::flat(12, 0.02);
//! let model = BinaryDilutionModel::pcr_like();
//! let mut session = SbgtSession::new(prior, model, SbgtConfig::default());
//!
//! // Ask SBGT which pool to test first.
//! let selection = session.select_next().expect("cohort is unclassified");
//! assert!(selection.pool.rank() >= 1);
//!
//! // Feed the lab outcome back in; the posterior updates in parallel.
//! session.observe(selection.pool, false).unwrap();
//! let report = session.report(4);
//! assert!(report.marginals.iter().all(|&m| m < 0.02 + 1e-9));
//! ```

pub mod baseline;
pub mod config;
pub mod parallel;
pub mod report;
pub mod session;
pub mod sharded_session;
pub mod snapshot;
pub mod sparse_session;
pub mod surveillance;

pub use baseline::BaselineSession;
pub use config::{ConfigError, ExecMode, SbgtConfig};
pub use parallel::{FusedRound, ShardedPosterior};
pub use report::SessionOutcome;
pub use session::{RoundStep, SbgtSession};
pub use sharded_session::ShardedSession;
pub use snapshot::{
    ApproxKind, ApproxSnapshot, ParticleBlock, SessionSnapshot, SnapshotError, SparseSnapshot,
};
pub use sparse_session::SparseSession;
pub use surveillance::SurveillanceSession;

// The adaptive-switch types are lattice-level but configured through
// [`SbgtConfig::sparse_switch`], so re-export them at the session surface.
pub use sbgt_lattice::{HybridPosterior, SparsePosterior, SparseSwitch};

// The plan cache is select-level but attached through the sessions
// (`attach_plan`), so re-export the service-facing types here too.
pub use sbgt_select::{
    PlanCache, PlanCacheStats, PlanCodecError, PlanHandle, PlanKey, PlanLineage, RiskQuantizer,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::{
        ApproxKind, ApproxSnapshot, BaselineSession, ConfigError, ExecMode, ParticleBlock,
        RoundStep, SbgtConfig, SbgtSession, SessionOutcome, SessionSnapshot, ShardedSession,
        SnapshotError, SparseSession, SparseSwitch, SurveillanceSession,
    };
    pub use sbgt_bayes::{ClassificationRule, CohortClassification, Prior, SubjectStatus};
    pub use sbgt_lattice::State;
    pub use sbgt_response::{BinaryDilutionModel, Dilution, GaussianResponse};
    pub use sbgt_select::{LookaheadConfig, SelectError, Selection};
}
