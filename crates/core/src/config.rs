//! Framework configuration.

use sbgt_bayes::ClassificationRule;
use sbgt_lattice::kernels::ParConfig;

/// How the `Θ(2^N)` kernels execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Serial reference kernels (used by tests and tiny cohorts).
    Serial,
    /// Rayon chunk kernels with the given tuning.
    Parallel(ParConfig),
}

impl ExecMode {
    /// The `ParConfig` to pass to kernels: serial mode maps to an
    /// infinite threshold so every kernel takes its serial path.
    pub fn par_config(&self) -> ParConfig {
        match *self {
            ExecMode::Serial => ParConfig {
                chunk_len: usize::MAX,
                threshold: usize::MAX,
            },
            ExecMode::Parallel(cfg) => cfg,
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbgtConfig {
    /// Kernel execution mode.
    pub exec: ExecMode,
    /// Classification thresholds (stopping rule).
    pub rule: ClassificationRule,
    /// Largest pool the assay supports.
    pub max_pool_size: usize,
    /// Stage cap for [`crate::SbgtSession::run_to_classification`].
    pub max_stages: usize,
    /// Pools selected per stage (`L ≥ 1`). `1` is the classic one-test-
    /// per-round BHA loop; larger widths run the look-ahead rules — fewer
    /// serial stages for more total tests (experiment E8) — on the
    /// branch-fused fast path.
    pub stage_width: usize,
}

impl Default for SbgtConfig {
    fn default() -> Self {
        SbgtConfig {
            exec: ExecMode::Parallel(ParConfig::default()),
            rule: ClassificationRule::symmetric(0.99),
            max_pool_size: 16,
            max_stages: 200,
            stage_width: 1,
        }
    }
}

impl SbgtConfig {
    /// Force serial kernels.
    pub fn serial(mut self) -> Self {
        self.exec = ExecMode::Serial;
        self
    }

    /// Set the assay's pool-size cap.
    pub fn with_max_pool_size(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "pool size cap must be at least 1");
        self.max_pool_size = cap;
        self
    }

    /// Set the classification rule.
    pub fn with_rule(mut self, rule: ClassificationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Set the number of pools selected per stage.
    pub fn with_stage_width(mut self, width: usize) -> Self {
        assert!(width >= 1, "stage width must be at least 1");
        self.stage_width = width;
        self
    }

    /// The [`LookaheadConfig`](sbgt_select::LookaheadConfig) equivalent of
    /// this session config.
    pub fn lookahead(&self) -> sbgt_select::LookaheadConfig {
        sbgt_select::LookaheadConfig {
            width: self.stage_width,
            max_pool_size: self.max_pool_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_mode_disables_parallel_paths() {
        let cfg = SbgtConfig::default().serial();
        let pc = cfg.exec.par_config();
        assert_eq!(pc.threshold, usize::MAX);
    }

    #[test]
    fn builders() {
        let cfg = SbgtConfig::default()
            .with_max_pool_size(8)
            .with_rule(ClassificationRule::symmetric(0.95));
        assert_eq!(cfg.max_pool_size, 8);
        assert!((cfg.rule.pos_threshold - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pool size cap")]
    fn zero_pool_cap_rejected() {
        let _ = SbgtConfig::default().with_max_pool_size(0);
    }

    #[test]
    fn stage_width_maps_to_lookahead_config() {
        let cfg = SbgtConfig::default()
            .with_stage_width(3)
            .with_max_pool_size(8);
        assert_eq!(cfg.stage_width, 3);
        let la = cfg.lookahead();
        assert_eq!(la.width, 3);
        assert_eq!(la.max_pool_size, 8);
        assert!(la.validate().is_ok());
        assert_eq!(SbgtConfig::default().stage_width, 1);
    }

    #[test]
    #[should_panic(expected = "stage width")]
    fn zero_stage_width_rejected() {
        let _ = SbgtConfig::default().with_stage_width(0);
    }
}
