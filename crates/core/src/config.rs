//! Framework configuration.

use sbgt_bayes::ClassificationRule;
use sbgt_lattice::kernels::ParConfig;
use sbgt_lattice::SparseSwitch;

/// Typed configuration error — the validated-construction convention shared
/// with `RetryPolicy::new(0)` and `LookaheadConfig::validate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter is outside its valid range; the message names it.
    InvalidArgument(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidArgument(msg) => write!(f, "invalid SBGT configuration: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How the `Θ(2^N)` kernels execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Serial reference kernels (used by tests and tiny cohorts).
    Serial,
    /// Rayon chunk kernels with the given tuning.
    Parallel(ParConfig),
}

impl ExecMode {
    /// The `ParConfig` to pass to kernels: serial mode maps to an
    /// infinite threshold so every kernel takes its serial path.
    pub fn par_config(&self) -> ParConfig {
        match *self {
            ExecMode::Serial => ParConfig {
                chunk_len: usize::MAX,
                threshold: usize::MAX,
            },
            ExecMode::Parallel(cfg) => cfg,
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbgtConfig {
    /// Kernel execution mode.
    pub exec: ExecMode,
    /// Classification thresholds (stopping rule).
    pub rule: ClassificationRule,
    /// Largest pool the assay supports.
    pub max_pool_size: usize,
    /// Stage cap for [`crate::SbgtSession::run_to_classification`].
    pub max_stages: usize,
    /// Pools selected per stage (`L ≥ 1`). `1` is the classic one-test-
    /// per-round BHA loop; larger widths run the look-ahead rules — fewer
    /// serial stages for more total tests (experiment E8) — on the
    /// branch-fused fast path.
    pub stage_width: usize,
    /// Adaptive dense→sparse switching policy. `None` (the default) keeps
    /// the posterior dense for the whole session; `Some` switches to the
    /// pruned sparse representation once the retained support falls below
    /// the configured fraction of `2^N` (one-way, per session).
    pub sparse_switch: Option<SparseSwitch>,
}

impl Default for SbgtConfig {
    fn default() -> Self {
        SbgtConfig {
            exec: ExecMode::Parallel(ParConfig::default()),
            rule: ClassificationRule::symmetric(0.99),
            max_pool_size: 16,
            max_stages: 200,
            stage_width: 1,
            sparse_switch: None,
        }
    }
}

impl SbgtConfig {
    /// Check every parameter; [`ConfigError::InvalidArgument`] names the
    /// first violation. Callers that assemble a config from untrusted input
    /// (e.g. a service configuration) get a typed error instead of the
    /// builder panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.stage_width == 0 {
            return Err(ConfigError::InvalidArgument(
                "stage width must be at least 1".into(),
            ));
        }
        if self.max_pool_size == 0 {
            return Err(ConfigError::InvalidArgument(
                "pool size cap must be at least 1".into(),
            ));
        }
        if self.max_stages == 0 {
            return Err(ConfigError::InvalidArgument(
                "stage cap must be at least 1".into(),
            ));
        }
        if let Some(switch) = &self.sparse_switch {
            switch.validate().map_err(ConfigError::InvalidArgument)?;
        }
        Ok(())
    }

    /// Builder terminal: panic (with the [`Self::validate`] message) on an
    /// invalid combination, keeping the fluent builders infallible.
    fn validated(self) -> Self {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        self
    }

    /// Force serial kernels.
    pub fn serial(mut self) -> Self {
        self.exec = ExecMode::Serial;
        self
    }

    /// Set the assay's pool-size cap.
    pub fn with_max_pool_size(mut self, cap: usize) -> Self {
        self.max_pool_size = cap;
        self.validated()
    }

    /// Set the classification rule.
    pub fn with_rule(mut self, rule: ClassificationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Set the number of pools selected per stage.
    pub fn with_stage_width(mut self, width: usize) -> Self {
        self.stage_width = width;
        self.validated()
    }

    /// Enable adaptive dense→sparse switching with the given policy.
    pub fn with_sparse_switch(mut self, switch: SparseSwitch) -> Self {
        self.sparse_switch = Some(switch);
        self.validated()
    }

    /// The [`LookaheadConfig`](sbgt_select::LookaheadConfig) equivalent of
    /// this session config.
    pub fn lookahead(&self) -> sbgt_select::LookaheadConfig {
        sbgt_select::LookaheadConfig {
            width: self.stage_width,
            max_pool_size: self.max_pool_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_mode_disables_parallel_paths() {
        let cfg = SbgtConfig::default().serial();
        let pc = cfg.exec.par_config();
        assert_eq!(pc.threshold, usize::MAX);
    }

    #[test]
    fn builders() {
        let cfg = SbgtConfig::default()
            .with_max_pool_size(8)
            .with_rule(ClassificationRule::symmetric(0.95));
        assert_eq!(cfg.max_pool_size, 8);
        assert!((cfg.rule.pos_threshold - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pool size cap")]
    fn zero_pool_cap_rejected() {
        let _ = SbgtConfig::default().with_max_pool_size(0);
    }

    #[test]
    fn stage_width_maps_to_lookahead_config() {
        let cfg = SbgtConfig::default()
            .with_stage_width(3)
            .with_max_pool_size(8);
        assert_eq!(cfg.stage_width, 3);
        let la = cfg.lookahead();
        assert_eq!(la.width, 3);
        assert_eq!(la.max_pool_size, 8);
        assert!(la.validate().is_ok());
        assert_eq!(SbgtConfig::default().stage_width, 1);
    }

    #[test]
    #[should_panic(expected = "stage width")]
    fn zero_stage_width_rejected() {
        let _ = SbgtConfig::default().with_stage_width(0);
    }

    #[test]
    fn validate_returns_typed_errors() {
        assert!(SbgtConfig::default().validate().is_ok());
        let zero_width = SbgtConfig {
            stage_width: 0,
            ..SbgtConfig::default()
        };
        match zero_width.validate() {
            Err(ConfigError::InvalidArgument(msg)) => assert!(msg.contains("stage width")),
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        let zero_pool = SbgtConfig {
            max_pool_size: 0,
            ..SbgtConfig::default()
        };
        match zero_pool.validate() {
            Err(ConfigError::InvalidArgument(msg)) => assert!(msg.contains("pool size cap")),
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        let zero_stages = SbgtConfig {
            max_stages: 0,
            ..SbgtConfig::default()
        };
        match zero_stages.validate() {
            Err(ConfigError::InvalidArgument(msg)) => assert!(msg.contains("stage cap")),
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        // The error renders its message (service logs shed typed reasons).
        let rendered = zero_width.validate().unwrap_err().to_string();
        assert!(rendered.contains("invalid SBGT configuration"));
    }

    #[test]
    fn sparse_switch_builder_and_validation() {
        assert_eq!(SbgtConfig::default().sparse_switch, None);
        let cfg = SbgtConfig::default().with_sparse_switch(SparseSwitch::default());
        assert!(cfg.sparse_switch.is_some());
        assert!(cfg.validate().is_ok());
        let bad = SbgtConfig {
            sparse_switch: Some(SparseSwitch {
                max_support_fraction: 0.0,
                prune_epsilon: 1e-12,
            }),
            ..SbgtConfig::default()
        };
        match bad.validate() {
            Err(ConfigError::InvalidArgument(msg)) => {
                assert!(msg.contains("max_support_fraction"), "message: {msg}")
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "prune_epsilon")]
    fn bad_sparse_switch_rejected_by_builder() {
        let _ = SbgtConfig::default().with_sparse_switch(SparseSwitch {
            max_support_fraction: 0.5,
            prune_epsilon: 1.0,
        });
    }
}
