//! Framework configuration.

use sbgt_bayes::ClassificationRule;
use sbgt_lattice::kernels::ParConfig;

/// How the `Θ(2^N)` kernels execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Serial reference kernels (used by tests and tiny cohorts).
    Serial,
    /// Rayon chunk kernels with the given tuning.
    Parallel(ParConfig),
}

impl ExecMode {
    /// The `ParConfig` to pass to kernels: serial mode maps to an
    /// infinite threshold so every kernel takes its serial path.
    pub fn par_config(&self) -> ParConfig {
        match *self {
            ExecMode::Serial => ParConfig {
                chunk_len: usize::MAX,
                threshold: usize::MAX,
            },
            ExecMode::Parallel(cfg) => cfg,
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbgtConfig {
    /// Kernel execution mode.
    pub exec: ExecMode,
    /// Classification thresholds (stopping rule).
    pub rule: ClassificationRule,
    /// Largest pool the assay supports.
    pub max_pool_size: usize,
    /// Stage cap for [`crate::SbgtSession::run_to_classification`].
    pub max_stages: usize,
}

impl Default for SbgtConfig {
    fn default() -> Self {
        SbgtConfig {
            exec: ExecMode::Parallel(ParConfig::default()),
            rule: ClassificationRule::symmetric(0.99),
            max_pool_size: 16,
            max_stages: 200,
        }
    }
}

impl SbgtConfig {
    /// Force serial kernels.
    pub fn serial(mut self) -> Self {
        self.exec = ExecMode::Serial;
        self
    }

    /// Set the assay's pool-size cap.
    pub fn with_max_pool_size(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "pool size cap must be at least 1");
        self.max_pool_size = cap;
        self
    }

    /// Set the classification rule.
    pub fn with_rule(mut self, rule: ClassificationRule) -> Self {
        self.rule = rule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_mode_disables_parallel_paths() {
        let cfg = SbgtConfig::default().serial();
        let pc = cfg.exec.par_config();
        assert_eq!(pc.threshold, usize::MAX);
    }

    #[test]
    fn builders() {
        let cfg = SbgtConfig::default()
            .with_max_pool_size(8)
            .with_rule(ClassificationRule::symmetric(0.95));
        assert_eq!(cfg.max_pool_size, 8);
        assert!((cfg.rule.pos_threshold - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pool size cap")]
    fn zero_pool_cap_rejected() {
        let _ = SbgtConfig::default().with_max_pool_size(0);
    }
}
