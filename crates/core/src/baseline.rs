//! The baseline framework — the "state of the art" SBGT is measured
//! against.
//!
//! This module implements *exactly the same Bayesian semantics* as
//! [`crate::SbgtSession`], the way a straightforward single-threaded
//! framework (the pre-SBGT generation of lattice group-testing code) does
//! it:
//!
//! * **Update**: calls the response model once *per lattice state*
//!   (`2^N` likelihood evaluations instead of a `|A|+1`-entry table), then
//!   makes *separate* passes to sum and rescale — three traversals and
//!   `2^N` model calls versus SBGT's one fused traversal and `|A|+1` calls.
//! * **Selection**: scores each candidate pool with its own full-lattice
//!   down-set-mass scan — `Θ(N · 2^N)` for the prefix family versus SBGT's
//!   single `Θ(2^N)` all-prefix pass.
//! * **Analysis**: one full pass per subject marginal, another for the
//!   entropy, another for the rank distribution, and a full
//!   materialize-and-sort for the top-k — `Θ(N · 2^N)` plus an
//!   `Θ(2^N log 2^N)` sort versus SBGT's fused passes and bounded heap.
//!
//! Results agree with the SBGT session to floating-point reordering
//! (asserted by tests); only the cost model differs. The E2–E4 experiments
//! measure that gap.

use sbgt_bayes::{classify_marginals, BayesError, CohortClassification, PosteriorReport, Prior};
use sbgt_lattice::{iter::all_states, DensePosterior, State};
use sbgt_response::BinaryOutcomeModel;
use sbgt_select::Selection;

use crate::config::SbgtConfig;
use crate::report::SessionOutcome;

/// A session driven by the baseline framework. Mirrors the
/// [`crate::SbgtSession`] surface so the two are interchangeable in
/// benchmarks and tests.
pub struct BaselineSession<M> {
    posterior: DensePosterior,
    model: M,
    config: SbgtConfig,
    history: Vec<(State, bool)>,
    stages: usize,
}

impl<M: BinaryOutcomeModel> BaselineSession<M> {
    /// Open a baseline session.
    pub fn new(prior: Prior, model: M, config: SbgtConfig) -> Self {
        BaselineSession {
            posterior: prior.to_dense(),
            model,
            config,
            history: Vec::new(),
            stages: 0,
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.posterior.n_subjects()
    }

    /// Borrow the posterior.
    pub fn posterior(&self) -> &DensePosterior {
        &self.posterior
    }

    /// Observed history.
    pub fn history(&self) -> &[(State, bool)] {
        &self.history
    }

    /// Stage count.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Naive Bayesian update: per-state model calls, then separate
    /// sum and scale passes.
    pub fn observe(&mut self, pool: State, outcome: bool) -> Result<f64, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        let n = pool.rank();
        // Pass 1: multiply, calling the model for every state.
        for s in all_states(self.posterior.n_subjects()) {
            let k = s.positives_in(pool);
            let lik = self.model.likelihood(outcome, k, n);
            let idx = s.index();
            self.posterior.probs_mut()[idx] *= lik;
        }
        // Pass 2: sum.
        let z = self.posterior.total();
        if !(z.is_finite() && z > 0.0) {
            return Err(BayesError::ImpossibleObservation);
        }
        // Pass 3: scale.
        let inv = 1.0 / z;
        for p in self.posterior.probs_mut() {
            *p *= inv;
        }
        self.history.push((pool, outcome));
        self.stages += 1;
        Ok(z)
    }

    /// Naive marginals: one full lattice pass per subject.
    pub fn marginals(&self) -> Vec<f64> {
        let n = self.posterior.n_subjects();
        let total = self.posterior.total();
        let mut out = Vec::with_capacity(n);
        for subject in 0..n {
            let mut mass = 0.0;
            for s in all_states(n) {
                if s.contains(subject) {
                    mass += self.posterior.get(s);
                }
            }
            out.push(if total > 0.0 { mass / total } else { 0.0 });
        }
        out
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals(), self.config.rule)
    }

    /// Naive halving selection: one full down-set mass scan per candidate
    /// prefix pool.
    pub fn select_next(&self) -> Option<Selection> {
        let marginals = self.marginals();
        let mut eligible = classify_marginals(&marginals, self.config.rule).undetermined();
        eligible.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        if eligible.is_empty() {
            return None;
        }
        let total = self.posterior.total();
        if !(total.is_finite() && total > 0.0) {
            return None;
        }
        let cap = self.config.max_pool_size.min(eligible.len());
        let mut best: Option<Selection> = None;
        for k in 1..=cap {
            let pool = State::from_subjects(eligible[..k].iter().copied());
            // Full 2^N scan per candidate — the baseline cost model.
            let mass = self.posterior.pool_negative_mass(pool) / total;
            let cand = Selection {
                pool,
                negative_mass: mass,
                distance: (mass - 0.5).abs(),
            };
            let better = match &best {
                None => true,
                Some(b) => cand.distance + 1e-12 < b.distance,
            };
            if better {
                best = Some(cand);
            }
        }
        best
    }

    /// Naive statistical analysis: a pass per statistic and a full
    /// materialize-and-sort for the top-k.
    pub fn report(&self, top_k: usize) -> PosteriorReport {
        let n = self.posterior.n_subjects();
        let marginals = self.marginals();
        let expected_positives = marginals.iter().sum();
        // Entropy: its own pass.
        let entropy = self.posterior.entropy();
        // Rank distribution: its own pass.
        let mut rank_distribution = vec![0.0; n + 1];
        let total = self.posterior.total();
        for s in all_states(n) {
            rank_distribution[s.rank() as usize] += self.posterior.get(s);
        }
        if total > 0.0 {
            for r in &mut rank_distribution {
                *r /= total;
            }
        }
        // Top-k: materialize all 2^N states and sort.
        let mut everything: Vec<(State, f64)> =
            all_states(n).map(|s| (s, self.posterior.get(s))).collect();
        everything.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.bits().cmp(&b.0.bits())));
        let top_states: Vec<(State, f64)> = everything
            .into_iter()
            .take(top_k)
            .map(|(s, p)| (s, if total > 0.0 { p / total } else { 0.0 }))
            .collect();
        let map_state = top_states.first().copied().unwrap_or((State::EMPTY, 0.0));
        PosteriorReport {
            marginals,
            entropy,
            map_state,
            top_states,
            rank_distribution,
            expected_positives,
        }
    }

    /// Drive to classification against a lab oracle (single pool per
    /// stage — the baseline framework has no look-ahead).
    pub fn run_to_classification(&mut self, mut lab: impl FnMut(State) -> bool) -> SessionOutcome {
        loop {
            let classification = self.classify();
            if classification.is_terminal() || self.stages >= self.config.max_stages {
                return self.outcome(classification);
            }
            let Some(selection) = self.select_next() else {
                return self.outcome(classification);
            };
            let outcome = lab(selection.pool);
            if self.observe(selection.pool, outcome).is_err() {
                return self.outcome(self.classify());
            }
        }
    }

    fn outcome(&self, classification: CohortClassification) -> SessionOutcome {
        SessionOutcome {
            tests: self.history.len(),
            stages: self.stages,
            subjects: self.n_subjects(),
            classification,
            marginals: self.marginals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SbgtSession;
    use sbgt_response::BinaryDilutionModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn risks() -> Vec<f64> {
        vec![0.02, 0.07, 0.01, 0.12, 0.05, 0.03, 0.09]
    }

    #[test]
    fn baseline_matches_sbgt_update_and_analysis() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut base = BaselineSession::new(Prior::from_risks(&risks()), model, cfg);
        let mut fast = SbgtSession::new(Prior::from_risks(&risks()), model, cfg);

        let tests = [
            (State::from_subjects([0, 1, 2]), false),
            (State::from_subjects([3, 4]), true),
            (State::from_subjects([3]), true),
        ];
        for (pool, outcome) in tests {
            let zb = base.observe(pool, outcome).unwrap();
            let zf = fast.observe(pool, outcome).unwrap();
            assert!(close(zb, zf), "evidence {zb} vs {zf}");
        }
        for (a, b) in base.marginals().iter().zip(fast.marginals()) {
            assert!(close(*a, b));
        }
        let rb = base.report(5);
        let rf = fast.report(5);
        assert!(close(rb.entropy, rf.entropy));
        assert_eq!(rb.map_state.0, rf.map_state.0);
        for ((s1, p1), (s2, p2)) in rb.top_states.iter().zip(&rf.top_states) {
            assert_eq!(s1, s2);
            assert!(close(*p1, *p2));
        }
        for (a, b) in rb.rank_distribution.iter().zip(&rf.rank_distribution) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn baseline_matches_sbgt_selection() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut base = BaselineSession::new(Prior::from_risks(&risks()), model, cfg);
        let mut fast = SbgtSession::new(Prior::from_risks(&risks()), model, cfg);
        base.observe(State::from_subjects([0, 1]), false).unwrap();
        fast.observe(State::from_subjects([0, 1]), false).unwrap();
        let sb = base.select_next().unwrap();
        let sf = fast.select_next().unwrap();
        assert_eq!(sb.pool, sf.pool);
        assert!(close(sb.negative_mass, sf.negative_mass));
    }

    #[test]
    fn baseline_runs_to_classification() {
        let truth = State::from_subjects([2]);
        let mut base = BaselineSession::new(
            Prior::flat(7, 0.05),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default().serial(),
        );
        let outcome = base.run_to_classification(|pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert_eq!(outcome.classification.positives(), 1);
        assert!(outcome.tests < 7);
    }

    #[test]
    fn baseline_error_paths() {
        let model = BinaryDilutionModel::perfect();
        let mut base =
            BaselineSession::new(Prior::flat(3, 0.1), model, SbgtConfig::default().serial());
        assert_eq!(
            base.observe(State::EMPTY, true).unwrap_err(),
            BayesError::EmptyPool
        );
        let pool = State::from_subjects([0, 1, 2]);
        base.observe(pool, false).unwrap();
        assert_eq!(
            base.observe(pool, true).unwrap_err(),
            BayesError::ImpossibleObservation
        );
    }
}
