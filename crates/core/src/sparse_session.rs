//! Sparse (pruned-lattice) session — the HiBGT execution mode.
//!
//! After a few informative tests the posterior's effective support
//! collapses (experiment E10); the sparse session exploits that by running
//! the whole select → observe → classify loop on a pruned
//! [`SparsePosterior`], re-pruning after every update. For cohorts past
//! the dense memory wall this is the only way to run; for smaller cohorts
//! it trades a bounded marginal error (`≲ ε · support` per step) for
//! order-of-magnitude cheaper updates.
//!
//! The surface mirrors [`crate::SbgtSession`] — including the
//! [`RoundStep`] stepping API a multi-cohort service schedules, telemetry
//! attachment, and bit-exact snapshot/restore — plus
//! [`SparseSession::run_round_on`], which runs each round's update as a
//! fault-injectable engine stage so chaos campaigns cover sparse cohorts
//! exactly like sharded ones. Tests pin the `ε = 0` case to the dense
//! session bit-for-bit (modulo float reduction order).

use std::sync::Arc;

use sbgt_bayes::{
    classify_marginals, update_sparse, update_sparse_with_table, BayesError, CohortClassification,
    Observation, Prior,
};
use sbgt_engine::obs::{SpanKind, SpanMeta, SpanRecorder, TraceLevel};
use sbgt_engine::{Engine, StageVariant};
use sbgt_lattice::{SparsePosterior, State};
use sbgt_response::BinaryOutcomeModel;
use sbgt_select::{
    select_halving_prefix_sparse, select_stage_lookahead_sparse, PlanHandle, SelectError, Selection,
};

use crate::config::{ConfigError, SbgtConfig};
use crate::report::SessionOutcome;
use crate::session::RoundStep;
use crate::snapshot::{SessionSnapshot, SnapshotError, SparseSnapshot};

/// A session whose posterior lives in the pruned sparse representation.
pub struct SparseSession<M> {
    posterior: SparsePosterior,
    model: M,
    config: SbgtConfig,
    /// Pruning threshold applied after every observation (`0.0` disables).
    prune_epsilon: f64,
    history: Vec<(State, bool)>,
    stages: usize,
    /// Telemetry sink and the cohort id stamped on every span. `None`
    /// (the default) records nothing; [`Self::attach_obs`] opts in.
    obs: Option<(Arc<SpanRecorder>, u64)>,
    /// Memoized selection plan. `None` (the default) selects live every
    /// round; [`Self::attach_plan`] opts in.
    plan: Option<PlanHandle>,
}

impl<M: BinaryOutcomeModel> SparseSession<M> {
    /// Open a sparse session. `prune_epsilon` is the per-update relative
    /// mass threshold below which states are dropped (`1e-9` is a good
    /// default per E10; `0.0` keeps everything). An out-of-range epsilon is
    /// a typed [`ConfigError::InvalidArgument`] — the validated-construction
    /// convention the rest of the workspace follows — so a service
    /// assembling sessions from untrusted configuration can shed the cohort
    /// instead of crashing.
    pub fn new(
        prior: Prior,
        model: M,
        config: SbgtConfig,
        prune_epsilon: f64,
    ) -> Result<Self, ConfigError> {
        if !(0.0..1.0).contains(&prune_epsilon) {
            return Err(ConfigError::InvalidArgument(format!(
                "prune epsilon {prune_epsilon} outside [0, 1)"
            )));
        }
        Ok(SparseSession {
            posterior: prior.to_sparse(prune_epsilon),
            model,
            config,
            prune_epsilon,
            history: Vec::new(),
            stages: 0,
            obs: None,
            plan: None,
        })
    }

    /// Attach a telemetry recorder; every subsequent round emits a
    /// `session:round` span tagged with `cohort`. Sessions driven by an
    /// engine-backed service share the engine's recorder so all lanes land
    /// in one trace.
    pub fn attach_obs(&mut self, recorder: Arc<SpanRecorder>, cohort: u64) {
        self.obs = Some((recorder, cohort));
    }

    /// Whether a telemetry recorder is attached (used for lazy attach).
    pub fn has_obs(&self) -> bool {
        self.obs.is_some()
    }

    /// Attach a memoized selection plan (see `sbgt_select::plancache`).
    /// Rounds covered by the plan replay cached pool selections; rounds
    /// that fall off the tree select live and extend it. The handle's
    /// [`sbgt_select::PlanKey`] must carry this session's exact risks,
    /// model, rule, widths, and the `Sparse { epsilon }` lineage — pruning
    /// perturbs marginals, so sparse trajectories must not share a tree
    /// with dense ones.
    pub fn attach_plan(&mut self, plan: PlanHandle) {
        self.plan = Some(plan);
    }

    /// Whether a selection plan is attached.
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.posterior.n_subjects()
    }

    /// The session configuration.
    pub fn config(&self) -> &SbgtConfig {
        &self.config
    }

    /// The per-update prune threshold this session was opened with.
    pub fn prune_epsilon(&self) -> f64 {
        self.prune_epsilon
    }

    /// Current working-set size (retained states).
    pub fn support(&self) -> usize {
        self.posterior.support()
    }

    /// Total mass discarded by pruning so far.
    pub fn pruned_mass(&self) -> f64 {
        self.posterior.pruned_mass()
    }

    /// Borrow the sparse posterior.
    pub fn posterior(&self) -> &SparsePosterior {
        &self.posterior
    }

    /// Observed history.
    pub fn history(&self) -> &[(State, bool)] {
        &self.history
    }

    /// Stage count.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Posterior marginals over the retained mass.
    pub fn marginals(&self) -> Vec<f64> {
        self.posterior.marginals()
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals(), self.config.rule)
    }

    /// Ingest one observation: sparse fused update + re-prune.
    pub fn observe(&mut self, pool: State, outcome: bool) -> Result<f64, BayesError> {
        let z = update_sparse(
            &mut self.posterior,
            &self.model,
            &Observation::new(pool, outcome),
            self.prune_epsilon,
        )?;
        self.history.push((pool, outcome));
        self.stages += 1;
        Ok(z)
    }

    /// [`Self::observe`] as a single-task engine stage named
    /// `fused-round:sparse`: the update runs against a clone of the
    /// posterior inside the stage, so the engine's installed fault plan can
    /// kill or retry it (the closure is pure — a retry re-clones pristine
    /// input) and the posterior commits only on stage success. The job is
    /// annotated [`StageVariant::Sparse`] with the post-update support.
    ///
    /// # Panics
    /// Panics when the stage fails permanently (retry budget exhausted) —
    /// the same contract as the sharded session's fused rounds, which a
    /// supervising service converts into a snapshot rollback.
    pub fn observe_on(
        &mut self,
        engine: &Engine,
        pool: State,
        outcome: bool,
    ) -> Result<f64, BayesError> {
        if pool.rank() == 0 {
            return Err(BayesError::EmptyPool);
        }
        let table = self.model.likelihood_table(outcome, pool.rank());
        let eps = self.prune_epsilon;
        let base = Arc::new(self.posterior.clone());
        let task = {
            let base = Arc::clone(&base);
            move || {
                let mut p = (*base).clone();
                update_sparse_with_table(&mut p, pool, &table, eps).map(|z| (p, z))
            }
        };
        let results = engine
            .run_stage("fused-round:sparse", vec![task])
            .unwrap_or_else(|e| panic!("sparse round stage failed: {e}"));
        let (p, z) = results.into_iter().next().expect("one sparse task")?;
        engine.metrics().annotate_last_job(StageVariant::Sparse {
            support: p.support(),
        });
        self.posterior = p;
        self.history.push((pool, outcome));
        self.stages += 1;
        Ok(z)
    }

    /// Unclassified subjects by ascending marginal (ties by index) — the
    /// candidate ordering for the halving search.
    pub fn eligible_order(&self) -> Vec<usize> {
        let marginals = self.marginals();
        let mut eligible = classify_marginals(&marginals, self.config.rule).undetermined();
        eligible.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        eligible
    }

    /// Halving selection over the retained states (sparse prefix masses).
    pub fn select_next(&self) -> Option<Selection> {
        select_halving_prefix_sparse(
            &self.posterior,
            &self.eligible_order(),
            self.config.max_pool_size,
        )
    }

    /// Look-ahead stage selection over the retained states: up to `width`
    /// pools for one lab round on the sparse branch-fused path.
    pub fn select_stage(&self, width: usize) -> Result<Vec<Selection>, SelectError> {
        let cfg = sbgt_select::LookaheadConfig {
            width,
            max_pool_size: self.config.max_pool_size,
        };
        select_stage_lookahead_sparse(&self.posterior, &self.model, &self.eligible_order(), &cfg)
    }

    /// Drive to classification against a lab oracle — a loop over
    /// [`Self::run_round`], so round-stepped and batch trajectories are
    /// identical by construction.
    pub fn run_to_classification(&mut self, mut lab: impl FnMut(State) -> bool) -> SessionOutcome {
        loop {
            if let RoundStep::Finished(outcome) = self.run_round(&mut lab) {
                return outcome;
            }
        }
    }

    /// Drive exactly one round (classify → select → lab → observe) with the
    /// update applied on the driver — the unit a multi-cohort service
    /// schedules.
    pub fn run_round(&mut self, mut lab: impl FnMut(State) -> bool) -> RoundStep {
        self.run_round_impl(None, &mut lab)
    }

    /// [`Self::run_round`] with the posterior update running as a
    /// fault-injectable engine stage ([`Self::observe_on`]) — how an
    /// engine-backed service steps sparse cohorts so chaos campaigns reach
    /// them. Selection stays on the driver: post-prune the support is tiny,
    /// so only the update is worth a stage.
    pub fn run_round_on(
        &mut self,
        engine: &Engine,
        mut lab: impl FnMut(State) -> bool,
    ) -> RoundStep {
        self.run_round_impl(Some(engine), &mut lab)
    }

    fn run_round_impl(
        &mut self,
        engine: Option<&Engine>,
        lab: &mut impl FnMut(State) -> bool,
    ) -> RoundStep {
        let obs = match &self.obs {
            Some((rec, cohort)) if rec.enabled_at(TraceLevel::Spans) => {
                Some((Arc::clone(rec), *cohort, rec.now_ns()))
            }
            _ => None,
        };
        let step = self.round_inner(engine, lab);
        if let Some((rec, cohort, start)) = obs {
            let name = rec.intern("session:round");
            let mut meta = SpanMeta::for_cohort(cohort);
            meta.failed =
                matches!(&step, RoundStep::Finished(o) if !o.classification.is_terminal());
            rec.record_span_ending_now(SpanKind::Round, name, start, meta);
        }
        step
    }

    fn round_inner(
        &mut self,
        engine: Option<&Engine>,
        lab: &mut impl FnMut(State) -> bool,
    ) -> RoundStep {
        let classification = self.classify();
        if classification.is_terminal() || self.stages >= self.config.max_stages {
            return RoundStep::Finished(self.outcome(classification));
        }
        // A plan hit replays the memoized selections for this exact
        // observation history; a miss selects live and extends the tree.
        let selections = match self.plan.as_ref().and_then(|p| p.lookup(&self.history)) {
            Some(cached) => cached,
            None => {
                let live = if self.config.stage_width <= 1 {
                    self.select_next().map(|s| vec![s]).unwrap_or_default()
                } else {
                    self.select_stage(self.config.stage_width)
                        .expect("stage width validated by SbgtConfig")
                };
                if let Some(plan) = &self.plan {
                    plan.extend(&self.history, &live);
                }
                live
            }
        };
        if selections.is_empty() {
            return RoundStep::Finished(self.outcome(classification));
        }
        // A multi-pool stage counts once, like the dense sessions: observe
        // each pool, then fold the extra per-observation stage increments
        // back into a single count.
        let before = self.stages;
        for sel in &selections {
            let outcome = lab(sel.pool);
            let observed = match engine {
                Some(engine) => self.observe_on(engine, sel.pool, outcome),
                None => self.observe(sel.pool, outcome),
            };
            if observed.is_err() {
                self.stages = before + 1;
                return RoundStep::Finished(self.outcome(self.classify()));
            }
        }
        self.stages = before + 1;
        RoundStep::Progressed
    }

    /// Capture the full session state — retained entries (exact bits),
    /// pruned-mass record, committed pools, and round counter — for
    /// checkpoint/restore. [`Self::restore`] reproduces the session
    /// bit-for-bit.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: self.n_subjects(),
            shards: Vec::new(),
            total: self.posterior.total(),
            history: self.history.clone(),
            stages: self.stages,
            marginals: Vec::new(),
            pending_selection: None,
            sparse: Some(SparseSnapshot {
                entries: self.posterior.entries().to_vec(),
                pruned_mass: self.posterior.pruned_mass(),
            }),
            approx: None,
        }
    }

    /// Rehydrate a session from a snapshot. The model, config, and prune
    /// epsilon are the cohort's static spec, supplied by the caller;
    /// posterior entries and the pruned-mass record are restored exactly,
    /// so selections and classifications continue bit-for-bit.
    pub fn restore(
        snapshot: &SessionSnapshot,
        model: M,
        config: SbgtConfig,
        prune_epsilon: f64,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate()?;
        if snapshot.approx.is_some() {
            return Err(SnapshotError::Corrupt(
                "approx snapshot cannot restore an exact session".into(),
            ));
        }
        let Some(sp) = &snapshot.sparse else {
            return Err(SnapshotError::Corrupt(
                "sparse restore needs a sparse section".into(),
            ));
        };
        if !(0.0..1.0).contains(&prune_epsilon) {
            return Err(SnapshotError::Corrupt(format!(
                "prune epsilon {prune_epsilon} outside [0, 1)"
            )));
        }
        Ok(SparseSession {
            posterior: SparsePosterior::from_parts(
                snapshot.n_subjects,
                sp.entries.clone(),
                sp.pruned_mass,
            ),
            model,
            config,
            prune_epsilon,
            history: snapshot.history.clone(),
            stages: snapshot.stages,
            obs: None,
            plan: None,
        })
    }

    fn outcome(&self, classification: CohortClassification) -> SessionOutcome {
        SessionOutcome {
            tests: self.history.len(),
            stages: self.stages,
            subjects: self.n_subjects(),
            classification,
            marginals: self.marginals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigError;
    use crate::session::SbgtSession;
    use sbgt_engine::EngineConfig;
    use sbgt_response::BinaryDilutionModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn risks() -> Vec<f64> {
        vec![0.02, 0.08, 0.03, 0.15, 0.05, 0.1, 0.04]
    }

    #[test]
    fn unpruned_sparse_matches_dense_session() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut dense = SbgtSession::new(Prior::from_risks(&risks()), model, cfg);
        let mut sparse = SparseSession::new(Prior::from_risks(&risks()), model, cfg, 0.0).unwrap();
        for (pool, outcome) in [
            (State::from_subjects([0, 1, 2]), false),
            (State::from_subjects([3, 4]), true),
            (State::from_subjects([3]), true),
        ] {
            let zd = dense.observe(pool, outcome).unwrap();
            let zs = sparse.observe(pool, outcome).unwrap();
            assert!(close(zd, zs));
        }
        for (a, b) in dense.marginals().iter().zip(sparse.marginals()) {
            assert!(close(*a, b));
        }
        let sd = dense.select_next().unwrap();
        let ss = sparse.select_next().unwrap();
        assert_eq!(sd.pool, ss.pool);
    }

    #[test]
    fn pruning_shrinks_support_during_episode() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut s = SparseSession::new(Prior::from_risks(&risks()), model, cfg, 1e-9).unwrap();
        let initial = s.support();
        s.observe(State::from_subjects([0, 1, 2, 3]), false)
            .unwrap();
        s.observe(State::from_subjects([4, 5, 6]), false).unwrap();
        assert!(s.support() < initial, "{} !< {initial}", s.support());
        assert!(s.pruned_mass() > 0.0);
    }

    #[test]
    fn sparse_episode_classifies_correctly() {
        let truth = State::from_subjects([2, 5]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial();
        let mut s = SparseSession::new(Prior::flat(8, 0.1), model, cfg, 1e-9).unwrap();
        let out = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(out.classification.is_terminal());
        assert_eq!(out.classification.positives(), 2);
        assert!(out.classification.statuses[2] == sbgt_bayes::SubjectStatus::Positive);
        assert!(out.classification.statuses[5] == sbgt_bayes::SubjectStatus::Positive);
        assert!(out.tests < 8 * 2, "tests {}", out.tests);
    }

    #[test]
    fn aggressive_pruning_still_tracks_truth_with_perfect_assay() {
        // With a perfect assay, the true state's mass only ever grows
        // relatively, so even harsh pruning keeps it.
        let truth = State::from_subjects([1]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial();
        let mut s = SparseSession::new(Prior::flat(8, 0.05), model, cfg, 1e-3).unwrap();
        let out = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(out.classification.is_terminal());
        assert_eq!(out.classification.positives(), 1);
    }

    /// Regression: an out-of-range epsilon used to `assert!`-panic inside
    /// the constructor, taking down the whole process when a service opened
    /// a cohort from bad configuration. It is now the workspace-standard
    /// typed error.
    #[test]
    fn epsilon_out_of_range_is_typed_error_not_panic() {
        let model = BinaryDilutionModel::pcr_like();
        for bad in [1.0, 1.5, -0.1, f64::NAN] {
            let result = SparseSession::new(Prior::flat(3, 0.1), model, SbgtConfig::default(), bad);
            match result {
                Err(ConfigError::InvalidArgument(msg)) => {
                    assert!(msg.contains("prune epsilon"), "message: {msg}")
                }
                Ok(_) => panic!("epsilon {bad} must be rejected"),
            }
        }
        // And the boundary values are accepted.
        assert!(SparseSession::new(Prior::flat(3, 0.1), model, SbgtConfig::default(), 0.0).is_ok());
    }

    #[test]
    fn round_stepping_matches_batch_run() {
        let truth = State::from_subjects([2, 5]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial();
        let mk = || SparseSession::new(Prior::flat(8, 0.1), model, cfg, 1e-9).unwrap();
        let mut batch = mk();
        let expected = batch.run_to_classification(|pool| truth.intersects(pool));
        let mut stepped = mk();
        let outcome = loop {
            if let Some(o) = stepped.run_round(|pool| truth.intersects(pool)).finished() {
                break o;
            }
        };
        assert_eq!(outcome.tests, expected.tests);
        assert_eq!(stepped.history(), batch.history());
        assert_eq!(
            outcome.classification.statuses,
            expected.classification.statuses
        );
        for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn engine_backed_rounds_match_driver_rounds_bit_for_bit() {
        let e = Engine::new(EngineConfig::default().with_threads(2));
        let truth = State::from_subjects([1, 6]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial();
        let mk = || SparseSession::new(Prior::flat(8, 0.07), model, cfg, 1e-9).unwrap();
        let mut driver = mk();
        let expected = driver.run_to_classification(|pool| truth.intersects(pool));
        let mut staged = mk();
        e.metrics().clear();
        let outcome = loop {
            if let Some(o) = staged
                .run_round_on(&e, |pool| truth.intersects(pool))
                .finished()
            {
                break o;
            }
        };
        assert_eq!(outcome, expected);
        assert_eq!(staged.history(), driver.history());
        for (a, b) in staged
            .posterior()
            .entries()
            .iter()
            .zip(driver.posterior().entries())
        {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Every observation ran as a sparse-tagged engine stage.
        let jobs = e.metrics().jobs();
        let sparse_jobs: Vec<_> = jobs
            .iter()
            .filter(|j| j.name == "fused-round:sparse")
            .collect();
        assert_eq!(sparse_jobs.len(), outcome.tests);
        assert!(sparse_jobs
            .iter()
            .all(|j| matches!(j.variant, StageVariant::Sparse { .. })));
    }

    #[test]
    fn wide_stages_bank_several_tests_per_stage() {
        let truth = State::from_subjects([1, 6]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial().with_stage_width(3);
        let mut s = SparseSession::new(Prior::flat(8, 0.08), model, cfg, 1e-9).unwrap();
        let out = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(out.classification.is_terminal());
        assert!(
            out.stages < out.tests,
            "width-3 stages must bank several tests per stage ({} stages, {} tests)",
            out.stages,
            out.tests
        );
    }

    #[test]
    fn snapshot_restore_is_bit_exact_mid_run() {
        let truth = State::from_subjects([2, 5]);
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut live = SparseSession::new(Prior::flat(8, 0.1), model, cfg, 1e-9).unwrap();
        for _ in 0..3 {
            assert!(live
                .run_round(|pool| truth.intersects(pool))
                .finished()
                .is_none());
        }
        let snap = live.snapshot();
        assert!(snap.sparse.is_some());
        // Byte codec round-trips the session bit-for-bit.
        let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        let mut restored = SparseSession::restore(&decoded, model, cfg, 1e-9).unwrap();
        assert_eq!(restored.history(), live.history());
        assert_eq!(restored.stages(), live.stages());
        assert_eq!(
            restored.pruned_mass().to_bits(),
            live.pruned_mass().to_bits()
        );
        let expected = live.run_to_classification(|pool| truth.intersects(pool));
        let outcome = restored.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(outcome.tests, expected.tests);
        assert_eq!(
            outcome.classification.statuses,
            expected.classification.statuses
        );
        for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A dense snapshot is rejected by the sparse restore, typed.
        let dense_snap = SbgtSession::new(Prior::flat(4, 0.1), model, cfg).snapshot();
        assert!(matches!(
            SparseSession::restore(&dense_snap, model, cfg, 1e-9),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn attached_recorder_captures_round_spans() {
        use sbgt_engine::obs::ObsConfig;
        let truth = State::from_subjects([1, 3]);
        let model = BinaryDilutionModel::perfect();
        let mut s = SparseSession::new(
            Prior::flat(6, 0.1),
            model,
            SbgtConfig::default().serial(),
            1e-9,
        )
        .unwrap();
        assert!(!s.has_obs());
        let rec = Arc::new(SpanRecorder::new(ObsConfig::spans()));
        s.attach_obs(Arc::clone(&rec), 11);
        assert!(s.has_obs());
        let out = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(out.classification.is_terminal());
        let snap = rec.snapshot();
        let rounds = snap
            .all_events()
            .filter(|e| e.kind == SpanKind::Round && e.meta.cohort == 11)
            .count();
        assert!(rounds >= 1, "each round must emit a cohort-tagged span");
    }
}
