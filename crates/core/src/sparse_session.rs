//! Sparse (pruned-lattice) session — the HiBGT execution mode.
//!
//! After a few informative tests the posterior's effective support
//! collapses (experiment E10); the sparse session exploits that by running
//! the whole select → observe → classify loop on a pruned
//! [`SparsePosterior`], re-pruning after every update. For cohorts past
//! the dense memory wall this is the only way to run; for smaller cohorts
//! it trades a bounded marginal error (`≲ ε · support` per step) for
//! order-of-magnitude cheaper updates.
//!
//! The surface mirrors [`crate::SbgtSession`]; tests pin the `ε = 0` case
//! to the dense session bit-for-bit (modulo float reduction order).

use sbgt_bayes::{
    classify_marginals, update_sparse, BayesError, CohortClassification, Observation, Prior,
};
use sbgt_lattice::{SparsePosterior, State};
use sbgt_response::BinaryOutcomeModel;
use sbgt_select::{select_halving_prefix_sparse, Selection};

use crate::config::SbgtConfig;
use crate::report::SessionOutcome;

/// A session whose posterior lives in the pruned sparse representation.
pub struct SparseSession<M> {
    posterior: SparsePosterior,
    model: M,
    config: SbgtConfig,
    /// Pruning threshold applied after every observation (`0.0` disables).
    prune_epsilon: f64,
    history: Vec<(State, bool)>,
    stages: usize,
}

impl<M: BinaryOutcomeModel> SparseSession<M> {
    /// Open a sparse session. `prune_epsilon` is the per-update relative
    /// mass threshold below which states are dropped (`1e-9` is a good
    /// default per E10; `0.0` keeps everything).
    pub fn new(prior: Prior, model: M, config: SbgtConfig, prune_epsilon: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&prune_epsilon),
            "prune epsilon {prune_epsilon} outside [0, 1)"
        );
        SparseSession {
            posterior: prior.to_sparse(prune_epsilon),
            model,
            config,
            prune_epsilon,
            history: Vec::new(),
            stages: 0,
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.posterior.n_subjects()
    }

    /// Current working-set size (retained states).
    pub fn support(&self) -> usize {
        self.posterior.support()
    }

    /// Total mass discarded by pruning so far.
    pub fn pruned_mass(&self) -> f64 {
        self.posterior.pruned_mass()
    }

    /// Borrow the sparse posterior.
    pub fn posterior(&self) -> &SparsePosterior {
        &self.posterior
    }

    /// Observed history.
    pub fn history(&self) -> &[(State, bool)] {
        &self.history
    }

    /// Stage count.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Posterior marginals over the retained mass.
    pub fn marginals(&self) -> Vec<f64> {
        self.posterior.marginals()
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals(), self.config.rule)
    }

    /// Ingest one observation: sparse fused update + re-prune.
    pub fn observe(&mut self, pool: State, outcome: bool) -> Result<f64, BayesError> {
        let z = update_sparse(
            &mut self.posterior,
            &self.model,
            &Observation::new(pool, outcome),
            self.prune_epsilon,
        )?;
        self.history.push((pool, outcome));
        self.stages += 1;
        Ok(z)
    }

    /// Halving selection over the retained states (sparse prefix masses).
    pub fn select_next(&self) -> Option<Selection> {
        let marginals = self.marginals();
        let mut eligible = classify_marginals(&marginals, self.config.rule).undetermined();
        eligible.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        select_halving_prefix_sparse(&self.posterior, &eligible, self.config.max_pool_size)
    }

    /// Drive to classification against a lab oracle (single pool per
    /// stage).
    pub fn run_to_classification(&mut self, mut lab: impl FnMut(State) -> bool) -> SessionOutcome {
        loop {
            let classification = self.classify();
            if classification.is_terminal() || self.stages >= self.config.max_stages {
                return self.outcome(classification);
            }
            let Some(selection) = self.select_next() else {
                return self.outcome(classification);
            };
            let outcome = lab(selection.pool);
            if self.observe(selection.pool, outcome).is_err() {
                return self.outcome(self.classify());
            }
        }
    }

    fn outcome(&self, classification: CohortClassification) -> SessionOutcome {
        SessionOutcome {
            tests: self.history.len(),
            stages: self.stages,
            subjects: self.n_subjects(),
            classification,
            marginals: self.marginals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SbgtSession;
    use sbgt_response::BinaryDilutionModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn risks() -> Vec<f64> {
        vec![0.02, 0.08, 0.03, 0.15, 0.05, 0.1, 0.04]
    }

    #[test]
    fn unpruned_sparse_matches_dense_session() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut dense = SbgtSession::new(Prior::from_risks(&risks()), model, cfg);
        let mut sparse = SparseSession::new(Prior::from_risks(&risks()), model, cfg, 0.0);
        for (pool, outcome) in [
            (State::from_subjects([0, 1, 2]), false),
            (State::from_subjects([3, 4]), true),
            (State::from_subjects([3]), true),
        ] {
            let zd = dense.observe(pool, outcome).unwrap();
            let zs = sparse.observe(pool, outcome).unwrap();
            assert!(close(zd, zs));
        }
        for (a, b) in dense.marginals().iter().zip(sparse.marginals()) {
            assert!(close(*a, b));
        }
        let sd = dense.select_next().unwrap();
        let ss = sparse.select_next().unwrap();
        assert_eq!(sd.pool, ss.pool);
    }

    #[test]
    fn pruning_shrinks_support_during_episode() {
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut s = SparseSession::new(Prior::from_risks(&risks()), model, cfg, 1e-9);
        let initial = s.support();
        s.observe(State::from_subjects([0, 1, 2, 3]), false)
            .unwrap();
        s.observe(State::from_subjects([4, 5, 6]), false).unwrap();
        assert!(s.support() < initial, "{} !< {initial}", s.support());
        assert!(s.pruned_mass() > 0.0);
    }

    #[test]
    fn sparse_episode_classifies_correctly() {
        let truth = State::from_subjects([2, 5]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial();
        let mut s = SparseSession::new(Prior::flat(8, 0.1), model, cfg, 1e-9);
        let out = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(out.classification.is_terminal());
        assert_eq!(out.classification.positives(), 2);
        assert!(out.classification.statuses[2] == sbgt_bayes::SubjectStatus::Positive);
        assert!(out.classification.statuses[5] == sbgt_bayes::SubjectStatus::Positive);
        assert!(out.tests < 8 * 2, "tests {}", out.tests);
    }

    #[test]
    fn aggressive_pruning_still_tracks_truth_with_perfect_assay() {
        // With a perfect assay, the true state's mass only ever grows
        // relatively, so even harsh pruning keeps it.
        let truth = State::from_subjects([1]);
        let model = BinaryDilutionModel::perfect();
        let cfg = SbgtConfig::default().serial();
        let mut s = SparseSession::new(Prior::flat(8, 0.05), model, cfg, 1e-3);
        let out = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(out.classification.is_terminal());
        assert_eq!(out.classification.positives(), 1);
    }

    #[test]
    #[should_panic(expected = "prune epsilon")]
    fn epsilon_validated() {
        let model = BinaryDilutionModel::pcr_like();
        let _ = SparseSession::new(Prior::flat(3, 0.1), model, SbgtConfig::default(), 1.0);
    }
}
