//! The engine-sharded posterior — SBGT's Spark mapping.
//!
//! The paper distributes the `2^N` lattice as an RDD of contiguous index
//! shards; every operator is a stage of per-partition tasks with the
//! likelihood table shipped as a broadcast variable and scalar results
//! tree-reduced to the driver. [`ShardedPosterior`] reproduces that
//! architecture on [`sbgt_engine`]:
//!
//! * the posterior lives as a [`Dataset<f64>`] whose partition `p` covers
//!   states `offsets[p] .. offsets[p] + len(p)` (state id = global index,
//!   so tasks recover each state's bitmask from its position — no keys, no
//!   gathers, no shuffle);
//! * updates are `map_partitions` stages that also emit their partial sum,
//!   so normalization needs no second traversal (the posterior tracks its
//!   running total instead of rescaling shards — Spark SBGT's trick of
//!   folding the normalizing constant into the driver state);
//! * marginals / down-set masses / prefix masses are aggregate stages.
//!
//! The rayon kernels in `sbgt-lattice` remain the fastest in-process path
//! (no per-stage allocation); this module exists to exercise and measure
//! the dataflow form of the algorithms — per-stage timings land in the
//! engine's metrics registry, giving the E9 breakdown.

use std::sync::Arc;

use sbgt_bayes::BayesError;
use sbgt_engine::{Dataset, Engine};
use sbgt_lattice::{DensePosterior, State};
use sbgt_response::ResponseModel;

/// A posterior sharded across engine partitions.
///
/// The shard values are **unnormalized**; `total` carries the current
/// normalization constant. All probability-returning methods divide by it.
pub struct ShardedPosterior {
    n_subjects: usize,
    shards: Dataset<f64>,
    /// Global state index where each partition begins.
    offsets: Arc<Vec<u64>>,
    total: f64,
}

impl ShardedPosterior {
    /// Shard a dense posterior into `parts` contiguous partitions.
    pub fn from_dense(dense: &DensePosterior, parts: usize) -> Self {
        let shards = Dataset::from_vec(dense.probs().to_vec(), parts);
        let offsets = Self::offsets_of(&shards);
        let total = dense.total();
        ShardedPosterior {
            n_subjects: dense.n_subjects(),
            shards,
            offsets: Arc::new(offsets),
            total,
        }
    }

    fn offsets_of(shards: &Dataset<f64>) -> Vec<u64> {
        let mut offsets = Vec::with_capacity(shards.num_partitions());
        let mut acc = 0u64;
        for p in 0..shards.num_partitions() {
            offsets.push(acc);
            acc += shards.partition(p).len() as u64;
        }
        offsets
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Number of shards.
    pub fn num_partitions(&self) -> usize {
        self.shards.num_partitions()
    }

    /// Current normalization constant (unnormalized total mass).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Collect back into a dense, **normalized** posterior.
    pub fn to_dense(&self, _engine: &Engine) -> DensePosterior {
        let mut probs = self.shards.collect();
        if self.total > 0.0 {
            let inv = 1.0 / self.total;
            for p in &mut probs {
                *p *= inv;
            }
        }
        DensePosterior::from_probs(self.n_subjects, probs)
    }

    /// Bayesian update as a dataflow stage: broadcast the likelihood table,
    /// map every shard, emit partial sums. Returns the model evidence.
    pub fn update<M: ResponseModel>(
        &mut self,
        engine: &Engine,
        model: &M,
        pool: State,
        outcome: M::Outcome,
    ) -> Result<f64, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        let table = engine.broadcast(model.likelihood_table(outcome, pool.rank()));
        let mask = pool.bits();
        let offsets = Arc::clone(&self.offsets);

        // One stage: multiply + partial sum per partition. The new shard
        // values and the partial sum travel together so no second pass is
        // needed.
        let fused: Dataset<(Vec<f64>, f64)> =
            self.shards.map_partitions(engine, move |pidx, probs| {
                let base = offsets[pidx];
                let table = table.value();
                let mut out = Vec::with_capacity(probs.len());
                let mut sum = 0.0;
                for (off, &p) in probs.iter().enumerate() {
                    let k = ((base + off as u64) & mask).count_ones() as usize;
                    let v = p * table[k];
                    sum += v;
                    out.push(v);
                }
                vec![(out, sum)]
            });

        let mut new_parts: Vec<Vec<f64>> = Vec::with_capacity(fused.num_partitions());
        let mut new_total = 0.0;
        for p in 0..fused.num_partitions() {
            let (values, sum) = &fused.partition(p)[0];
            new_total += sum;
            new_parts.push(values.clone());
        }
        if !(new_total.is_finite() && new_total > 0.0) {
            return Err(BayesError::ImpossibleObservation);
        }
        let evidence = new_total / self.total;
        self.shards = Dataset::from_partitions(new_parts);
        self.total = new_total;
        Ok(evidence)
    }

    /// Marginals as an aggregate stage (per-partition local accumulators,
    /// tree-reduced on the driver).
    pub fn marginals(&self, engine: &Engine) -> Vec<f64> {
        let n = self.n_subjects;
        let offsets = Arc::clone(&self.offsets);
        let partials: Dataset<(Vec<f64>, f64)> =
            self.shards.map_partitions(engine, move |pidx, probs| {
                let base = offsets[pidx];
                let mut acc = vec![0.0f64; n];
                let mut total = 0.0;
                for (off, &p) in probs.iter().enumerate() {
                    total += p;
                    let mut bits = base + off as u64;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        acc[b] += p;
                        bits &= bits - 1;
                    }
                }
                vec![(acc, total)]
            });
        let mut acc = vec![0.0f64; n];
        let mut total = 0.0;
        for p in 0..partials.num_partitions() {
            let (local, t) = &partials.partition(p)[0];
            total += t;
            for (a, l) in acc.iter_mut().zip(local) {
                *a += l;
            }
        }
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Pool-negative probability as an aggregate stage.
    pub fn pool_negative_mass(&self, engine: &Engine, pool: State) -> f64 {
        let mask = pool.bits();
        let offsets = Arc::clone(&self.offsets);
        let partials: Dataset<f64> = self.shards.map_partitions(engine, move |pidx, probs| {
            let base = offsets[pidx];
            let mut local = 0.0;
            for (off, &p) in probs.iter().enumerate() {
                if (base + off as u64) & mask == 0 {
                    local += p;
                }
            }
            vec![local]
        });
        let mass: f64 = partials.collect().iter().sum();
        if self.total > 0.0 {
            mass / self.total
        } else {
            0.0
        }
    }

    /// All-prefix pool-negative probabilities (the selection kernel) as an
    /// aggregate stage: per-partition first-positive histograms, reduced
    /// and suffix-summed on the driver.
    pub fn prefix_negative_masses(&self, engine: &Engine, order: &[usize]) -> Vec<f64> {
        let n = self.n_subjects;
        let m = order.len();
        let mut pos_of = vec![u32::MAX; n];
        for (k, &subj) in order.iter().enumerate() {
            assert!(subj < n, "subject {subj} out of range");
            assert!(pos_of[subj] == u32::MAX, "duplicate subject in order");
            pos_of[subj] = k as u32;
        }
        let pos_of = Arc::new(pos_of);
        let offsets = Arc::clone(&self.offsets);
        let partials: Dataset<Vec<f64>> =
            self.shards.map_partitions(engine, move |pidx, probs| {
                let base = offsets[pidx];
                let mut hist = vec![0.0f64; m + 1];
                for (off, &p) in probs.iter().enumerate() {
                    let mut first = m as u32;
                    let mut bits = base + off as u64;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        let pos = pos_of[b];
                        if pos < first {
                            first = pos;
                            if first == 0 {
                                break;
                            }
                        }
                        bits &= bits - 1;
                    }
                    hist[first as usize] += p;
                }
                vec![hist]
            });
        let mut hist = vec![0.0f64; m + 1];
        for p in 0..partials.num_partitions() {
            for (h, l) in hist.iter_mut().zip(&partials.partition(p)[0]) {
                *h += l;
            }
        }
        let mut masses = vec![0.0f64; m + 1];
        let mut running = 0.0;
        for k in (0..=m).rev() {
            running += hist[k];
            masses[k] = running;
        }
        masses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_bayes::{update_dense, Observation, Prior};
    use sbgt_engine::EngineConfig;
    use sbgt_response::BinaryDilutionModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    fn risks() -> Vec<f64> {
        vec![0.02, 0.07, 0.01, 0.12, 0.05, 0.03, 0.09, 0.2]
    }

    #[test]
    fn sharded_update_matches_dense() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let mut dense = Prior::from_risks(&risks()).to_dense();
        let mut sharded = ShardedPosterior::from_dense(&dense, 5);
        assert_eq!(sharded.num_partitions(), 5);

        let tests = [
            (State::from_subjects([0, 1, 2, 3]), true),
            (State::from_subjects([4, 5]), false),
            (State::from_subjects([0]), true),
        ];
        for (pool, outcome) in tests {
            let zd = update_dense(&mut dense, &model, &Observation::new(pool, outcome)).unwrap();
            let zs = sharded.update(&e, &model, pool, outcome).unwrap();
            assert!(close(zd, zs), "evidence {zd} vs {zs}");
        }
        let back = sharded.to_dense(&e);
        for (a, b) in dense.probs().iter().zip(back.probs()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn sharded_aggregates_match_dense() {
        let e = engine();
        let dense = Prior::from_risks(&risks()).to_dense();
        let sharded = ShardedPosterior::from_dense(&dense, 7);
        for (a, b) in dense.marginals().iter().zip(sharded.marginals(&e)) {
            assert!(close(*a, b));
        }
        let pool = State::from_subjects([1, 4, 6]);
        assert!(close(
            dense.pool_negative_mass(pool),
            sharded.pool_negative_mass(&e, pool)
        ));
        let order = [3usize, 0, 7, 2, 5];
        let dm = dense.prefix_negative_masses(&order);
        let sm = sharded.prefix_negative_masses(&e, &order);
        for (a, b) in dm.iter().zip(&sm) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn evidence_is_relative_to_running_total() {
        // Two consecutive updates: each reported evidence must match the
        // dense (renormalizing) implementation even though shards never
        // rescale.
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(6, 0.1).to_dense(), 3);
        let z1 = sharded
            .update(&e, &model, State::from_subjects([0, 1, 2]), false)
            .unwrap();
        let z2 = sharded
            .update(&e, &model, State::from_subjects([3, 4]), true)
            .unwrap();
        assert!(z1 > z2, "negative pool at 10% prevalence is likelier");
        assert!(z1 < 1.0 && z2 < 1.0);
    }

    #[test]
    fn error_paths() {
        let e = engine();
        let model = BinaryDilutionModel::perfect();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(4, 0.1).to_dense(), 2);
        assert_eq!(
            sharded.update(&e, &model, State::EMPTY, true).unwrap_err(),
            BayesError::EmptyPool
        );
        let pool = State::from_subjects([0, 1, 2, 3]);
        sharded.update(&e, &model, pool, false).unwrap();
        assert_eq!(
            sharded.update(&e, &model, pool, true).unwrap_err(),
            BayesError::ImpossibleObservation
        );
    }

    #[test]
    fn stage_metrics_are_recorded() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(6, 0.1).to_dense(), 4);
        e.metrics().clear();
        sharded
            .update(&e, &model, State::from_subjects([0, 1]), false)
            .unwrap();
        sharded.marginals(&e);
        assert!(e.metrics().job_count() >= 2, "expected dataflow stages");
        assert_eq!(e.metrics().broadcast_count(), 1);
    }
}
