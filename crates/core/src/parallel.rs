//! The engine-sharded posterior — SBGT's Spark mapping.
//!
//! The paper distributes the `2^N` lattice as an RDD of contiguous index
//! shards; every operator is a stage of per-partition tasks with the
//! likelihood table shipped as a broadcast variable and scalar results
//! tree-reduced to the driver. [`ShardedPosterior`] reproduces that
//! architecture on [`sbgt_engine`]:
//!
//! * the posterior lives as a [`Dataset<f64>`] whose partition `p` covers
//!   states `offsets[p] .. offsets[p] + len(p)` (state id = global index,
//!   so tasks recover each state's bitmask from its position — no keys, no
//!   gathers, no shuffle);
//! * updates are `map_partitions` stages that also emit their partial sum,
//!   so normalization needs no second traversal (the posterior tracks its
//!   running total instead of rescaling shards — Spark SBGT's trick of
//!   folding the normalizing constant into the driver state);
//! * marginals / down-set masses / prefix masses are aggregate stages.
//!
//! The hot loop runs through the engine's **in-place stage layer**
//! ([`Dataset::map_partitions_in_place`]): updates multiply shard values
//! through uniquely-owned `Arc` handles and return only per-partition
//! partial sums, so an observation allocates nothing posterior-sized — no
//! output dataset, no driver-side clones. Read-only aggregations
//! (marginals, masses) run as `aggregate_partitions` stages that ship one
//! small record per partition to the driver. [`ShardedPosterior::fused_round`]
//! goes further and computes update + marginals + prefix-negative-mass
//! histogram in a single traversal, making a full BHA round one stage
//! instead of three. The legacy materializing update is kept as
//! [`ShardedPosterior::update_immutable`] for A/B benchmarking; per-stage
//! variants land in the engine's metrics registry, giving the E9 breakdown.

use std::sync::Arc;

use sbgt_bayes::BayesError;
use sbgt_engine::{Dataset, Engine, StageVariant};
use sbgt_lattice::{simd, BranchPool, DensePosterior, LookaheadKernel, SparsePosterior, State};
use sbgt_response::ResponseModel;

/// Everything one fused BHA round produces: the Bayesian update applied
/// in place, plus the post-update statistics the next round needs,
/// computed in the same traversal.
#[derive(Debug, Clone)]
pub struct FusedRound {
    /// Model evidence of the observation (relative to the pre-round total).
    pub evidence: f64,
    /// Post-update normalized marginals.
    pub marginals: Vec<f64>,
    /// Post-update unnormalized all-prefix pool-negative masses for the
    /// `order` passed to [`ShardedPosterior::fused_round`]
    /// (`masses[k]` = mass with the first `k` subjects of `order` all
    /// negative; `masses[0]` = new total).
    pub prefix_negative_masses: Vec<f64>,
}

/// A posterior sharded across engine partitions.
///
/// The shard values are **unnormalized**; `total` carries the current
/// normalization constant. All probability-returning methods divide by it.
///
/// Cloning is cheap: clones share the shard storage (`Arc` handles), so
/// the next in-place update on either copy takes the copy-on-write path
/// and leaves the other copy untouched.
#[derive(Clone)]
pub struct ShardedPosterior {
    n_subjects: usize,
    shards: Dataset<f64>,
    /// Global state index where each partition begins.
    offsets: Arc<Vec<u64>>,
    total: f64,
}

impl ShardedPosterior {
    /// Shard a dense posterior into `parts` contiguous partitions.
    pub fn from_dense(dense: &DensePosterior, parts: usize) -> Self {
        let shards = Dataset::from_vec(dense.probs().to_vec(), parts);
        let offsets = Self::offsets_of(&shards);
        let total = dense.total();
        ShardedPosterior {
            n_subjects: dense.n_subjects(),
            shards,
            offsets: Arc::new(offsets),
            total,
        }
    }

    fn offsets_of(shards: &Dataset<f64>) -> Vec<u64> {
        let mut offsets = Vec::with_capacity(shards.num_partitions());
        let mut acc = 0u64;
        for p in 0..shards.num_partitions() {
            offsets.push(acc);
            acc += shards.partition(p).len() as u64;
        }
        offsets
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Number of shards.
    pub fn num_partitions(&self) -> usize {
        self.shards.num_partitions()
    }

    /// Current normalization constant (unnormalized total mass).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Exact unnormalized shard values, one vector per partition — the
    /// checkpoint payload. Together with [`Self::total`] this is the full
    /// posterior state; [`Self::from_shards`] rebuilds it bit-for-bit.
    pub fn shard_values(&self) -> Vec<Vec<f64>> {
        self.shards
            .partition_handles()
            .iter()
            .map(|h| h.as_ref().clone())
            .collect()
    }

    /// Rebuild a posterior from checkpointed shards. Partition boundaries
    /// are preserved exactly as captured, so every subsequent per-partition
    /// reduction — and therefore every downstream float — matches the
    /// pre-checkpoint posterior bit-for-bit.
    pub fn from_shards(
        n_subjects: usize,
        shards: Vec<Vec<f64>>,
        total: f64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let want = 1usize
            .checked_shl(n_subjects as u32)
            .filter(|_| n_subjects <= 63)
            .ok_or_else(|| {
                SnapshotError::Corrupt(format!("cohort size {n_subjects} overflows u64"))
            })?;
        let got: usize = shards.iter().map(|s| s.len()).sum();
        if got != want {
            return Err(SnapshotError::Corrupt(format!(
                "shards hold {got} values, lattice needs {want}"
            )));
        }
        if shards.iter().any(|s| s.is_empty()) {
            return Err(SnapshotError::Corrupt("empty shard".into()));
        }
        if !(total.is_finite() && total > 0.0) {
            return Err(SnapshotError::Corrupt(format!(
                "non-positive total {total}"
            )));
        }
        let shards = Dataset::from_partitions(shards);
        let offsets = Self::offsets_of(&shards);
        Ok(ShardedPosterior {
            n_subjects,
            shards,
            offsets: Arc::new(offsets),
            total,
        })
    }

    /// Count states above the relative prune cut (`p > ε · total`, `p > 0`)
    /// as one read-only aggregate stage — the sharded equivalent of
    /// [`sbgt_lattice::hybrid::retained_support`] on the collected dense
    /// posterior, at shard-traversal cost instead of a materialization.
    pub fn retained_support(&self, engine: &Engine, epsilon: f64) -> usize {
        let cut = if self.total > 0.0 {
            epsilon * self.total
        } else {
            0.0
        };
        let partials: Vec<usize> = self
            .shards
            .try_aggregate_partitions(engine, "sparse:support", move |_pidx, probs| {
                probs.iter().filter(|&&p| p > cut && p > 0.0).count()
            })
            .unwrap_or_else(|e| panic!("dataset job failed: {e}"));
        partials.iter().sum()
    }

    /// Materialize the pruned, **normalized** sparse equivalent as one
    /// read-only aggregate stage: each partition ships its retained
    /// `(state, mass)` entries, the driver concatenates (partitions are
    /// contiguous state ranges, so the result is sorted), scales by
    /// `1/total`, and books the dropped share as pruned mass — exactly
    /// what [`SparsePosterior::from_dense`] produces on
    /// [`Self::to_dense`]'s output, modulo the normalization that
    /// `to_dense` applies up front.
    pub fn to_sparse(&self, engine: &Engine, epsilon: f64) -> SparsePosterior {
        let total = self.total;
        let cut = if total > 0.0 { epsilon * total } else { 0.0 };
        let offsets = Arc::clone(&self.offsets);
        let partials: Vec<Vec<(State, f64)>> = self
            .shards
            .try_aggregate_partitions(engine, "sparse:collect", move |pidx, probs| {
                let base = offsets[pidx];
                probs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p > cut && p > 0.0)
                    .map(|(off, &p)| (State(base + off as u64), p))
                    .collect()
            })
            .unwrap_or_else(|e| panic!("dataset job failed: {e}"));
        let mut entries: Vec<(State, f64)> = partials.into_iter().flatten().collect();
        let mut retained = 0.0;
        if total > 0.0 {
            let inv = 1.0 / total;
            for (_, p) in &mut entries {
                retained += *p;
                *p *= inv;
            }
        }
        let pruned = if total > 0.0 {
            ((total - retained) / total).max(0.0)
        } else {
            0.0
        };
        SparsePosterior::from_parts(self.n_subjects, entries, pruned)
    }

    /// Collect back into a dense, **normalized** posterior.
    pub fn to_dense(&self, _engine: &Engine) -> DensePosterior {
        let mut probs = self.shards.collect();
        if self.total > 0.0 {
            let inv = 1.0 / self.total;
            for p in &mut probs {
                *p *= inv;
            }
        }
        DensePosterior::from_probs(self.n_subjects, probs)
    }

    /// Bayesian update as a **zero-copy in-place stage**: broadcast the
    /// likelihood table, multiply every shard through its uniquely-owned
    /// handle, return only per-partition partial sums. No posterior-sized
    /// buffer is allocated. Returns the model evidence.
    ///
    /// If the observation is impossible (`new_total` not finite-positive)
    /// the shard values have already been multiplied by the zero table and
    /// the posterior is degenerate; like the dense fused update, callers
    /// must treat the posterior as unusable after this error.
    ///
    /// When the engine's fault tolerance is active (retries, speculation,
    /// or an installed fault plan) the stage instead runs copy-on-write
    /// from pristine driver-held handles: task failures retry against
    /// unmutated input and recover **bit-for-bit** — the closure is pure
    /// and partials are reduced in task order — while a permanently failed
    /// stage leaves the shards untouched.
    pub fn update<M: ResponseModel>(
        &mut self,
        engine: &Engine,
        model: &M,
        pool: State,
        outcome: M::Outcome,
    ) -> Result<f64, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        let table = engine.broadcast(model.likelihood_table(outcome, pool.rank()));
        let mask = pool.bits();
        let offsets = Arc::clone(&self.offsets);

        let partial_sums = self
            .shards
            .try_map_partitions_in_place(engine, "update:in-place", move |pidx, probs| {
                mul_table_in_place(probs, offsets[pidx], mask, table.value())
            })
            .unwrap_or_else(|e| panic!("dataset job failed: {e}"));

        let new_total: f64 = partial_sums.iter().sum();
        if !(new_total.is_finite() && new_total > 0.0) {
            return Err(BayesError::ImpossibleObservation);
        }
        let evidence = new_total / self.total;
        self.total = new_total;
        Ok(evidence)
    }

    /// The pre-in-place update: a materializing `map_partitions` stage
    /// whose outputs are moved (not cloned) into the new shard dataset.
    /// Kept as the immutable baseline the in-place path is benchmarked
    /// against; semantically identical to [`Self::update`].
    pub fn update_immutable<M: ResponseModel>(
        &mut self,
        engine: &Engine,
        model: &M,
        pool: State,
        outcome: M::Outcome,
    ) -> Result<f64, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        let table = engine.broadcast(model.likelihood_table(outcome, pool.rank()));
        let mask = pool.bits();
        let offsets = Arc::clone(&self.offsets);

        // One stage: multiply + partial sum per partition. The new shard
        // values and the partial sum travel together so no second pass is
        // needed.
        let fused: Dataset<(Vec<f64>, f64)> =
            self.shards.map_partitions(engine, move |pidx, probs| {
                vec![mul_table_collect(probs, offsets[pidx], mask, table.value())]
            });

        // The stage output handles are uniquely owned, so each partition's
        // values vector is moved out — not cloned — on the driver.
        let mut new_parts: Vec<Vec<f64>> = Vec::with_capacity(fused.num_partitions());
        let mut new_total = 0.0;
        for handle in fused.into_partitions() {
            let mut records =
                Arc::try_unwrap(handle).expect("stage output handles are uniquely owned");
            let (values, sum) = records.pop().expect("one record per partition");
            new_total += sum;
            new_parts.push(values);
        }
        if !(new_total.is_finite() && new_total > 0.0) {
            return Err(BayesError::ImpossibleObservation);
        }
        let evidence = new_total / self.total;
        self.shards = Dataset::from_partitions(new_parts);
        self.total = new_total;
        Ok(evidence)
    }

    /// Fused BHA superstage: apply the Bayesian update **and** compute the
    /// post-update marginals and all-prefix pool-negative masses in one
    /// in-place traversal per partition — a full round in one stage
    /// instead of three.
    ///
    /// `order` is the candidate subject ordering for the prefix masses.
    /// Since the masses are computed in the same traversal that updates
    /// the posterior, callers necessarily supply an ordering derived from
    /// the *previous* round's marginals (the returned masses themselves
    /// are exact for the updated posterior). Running marginals and
    /// [`Self::prefix_negative_masses`] as separate stages removes that
    /// one-round staleness at the cost of an extra traversal.
    pub fn fused_round<M: ResponseModel>(
        &mut self,
        engine: &Engine,
        model: &M,
        pool: State,
        outcome: M::Outcome,
        order: &[usize],
    ) -> Result<FusedRound, BayesError> {
        if pool.is_empty() {
            return Err(BayesError::EmptyPool);
        }
        let n = self.n_subjects;
        let m = order.len();
        let table = engine.broadcast(model.likelihood_table(outcome, pool.rank()));
        let mask = pool.bits();
        let offsets = Arc::clone(&self.offsets);
        let kernel = Arc::new(LookaheadKernel::new(n, order));

        let partials = self
            .shards
            .try_map_partitions_in_place(engine, "fused-round:in-place", move |pidx, probs| {
                // Update + marginal accumulation + first-positive histogram
                // on the post-update values, one SIMD-dispatched
                // cache-resident pass per partition.
                let mut acc = vec![0.0f64; n];
                let mut hist = vec![0.0f64; m + 1];
                let sum = simd::fused_update_block(
                    probs,
                    offsets[pidx],
                    mask,
                    table.value(),
                    &kernel,
                    &mut acc,
                    &mut hist,
                );
                (sum, acc, hist)
            })
            .unwrap_or_else(|e| panic!("dataset job failed: {e}"));

        let mut new_total = 0.0;
        let mut marginals = vec![0.0f64; n];
        let mut hist = vec![0.0f64; m + 1];
        for (sum, acc, local_hist) in partials {
            new_total += sum;
            for (a, l) in marginals.iter_mut().zip(&acc) {
                *a += l;
            }
            for (h, l) in hist.iter_mut().zip(&local_hist) {
                *h += l;
            }
        }
        if !(new_total.is_finite() && new_total > 0.0) {
            return Err(BayesError::ImpossibleObservation);
        }
        let evidence = new_total / self.total;
        self.total = new_total;
        for a in &mut marginals {
            *a /= new_total;
        }
        Ok(FusedRound {
            evidence,
            marginals,
            prefix_negative_masses: Self::suffix_sum(hist),
        })
    }

    /// Marginals as a read-only aggregate stage (per-partition local
    /// accumulators shipped to the driver — no dataset materialized).
    pub fn marginals(&self, engine: &Engine) -> Vec<f64> {
        let n = self.n_subjects;
        let offsets = Arc::clone(&self.offsets);
        let partials: Vec<(Vec<f64>, f64)> =
            self.shards
                .aggregate_partitions(engine, move |pidx, probs| {
                    let base = offsets[pidx];
                    let mut acc = vec![0.0f64; n];
                    let mut total = 0.0;
                    for (off, &p) in probs.iter().enumerate() {
                        total += p;
                        let mut bits = base + off as u64;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            acc[b] += p;
                            bits &= bits - 1;
                        }
                    }
                    (acc, total)
                });
        let mut acc = vec![0.0f64; n];
        let mut total = 0.0;
        for (local, t) in partials {
            total += t;
            for (a, l) in acc.iter_mut().zip(&local) {
                *a += l;
            }
        }
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Pool-negative probability as a read-only aggregate stage.
    pub fn pool_negative_mass(&self, engine: &Engine, pool: State) -> f64 {
        let mask = pool.bits();
        let offsets = Arc::clone(&self.offsets);
        let partials: Vec<f64> = self
            .shards
            .aggregate_partitions(engine, move |pidx, probs| {
                let base = offsets[pidx];
                let mut local = 0.0;
                for (off, &p) in probs.iter().enumerate() {
                    if (base + off as u64) & mask == 0 {
                        local += p;
                    }
                }
                local
            });
        let mass: f64 = partials.iter().sum();
        if self.total > 0.0 {
            mass / self.total
        } else {
            0.0
        }
    }

    /// All-prefix pool-negative probabilities (the selection kernel) as a
    /// read-only aggregate stage: per-partition first-positive histograms,
    /// reduced and suffix-summed on the driver.
    pub fn prefix_negative_masses(&self, engine: &Engine, order: &[usize]) -> Vec<f64> {
        let n = self.n_subjects;
        let m = order.len();
        let pos_of = Arc::new(Self::positions_of(n, order));
        let offsets = Arc::clone(&self.offsets);
        let partials: Vec<Vec<f64>> =
            self.shards
                .aggregate_partitions(engine, move |pidx, probs| {
                    let base = offsets[pidx];
                    let mut hist = vec![0.0f64; m + 1];
                    for (off, &p) in probs.iter().enumerate() {
                        let mut first = m as u32;
                        let mut bits = base + off as u64;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            let pos = pos_of[b];
                            if pos < first {
                                first = pos;
                                if first == 0 {
                                    break;
                                }
                            }
                            bits &= bits - 1;
                        }
                        hist[first as usize] += p;
                    }
                    hist
                });
        let mut hist = vec![0.0f64; m + 1];
        for local in partials {
            for (h, l) in hist.iter_mut().zip(&local) {
                *h += l;
            }
        }
        Self::suffix_sum(hist)
    }

    /// Branch-fused look-ahead histograms as a read-only aggregate stage —
    /// the engine-sharded half of the look-ahead selection fast path.
    ///
    /// Each task runs [`LookaheadKernel::histograms`] over its partition's
    /// contiguous state range (committed pools shipped as a broadcast
    /// variable, exactly like update likelihood tables) and sends one
    /// `(m + 1) × 2^j` histogram to the driver, where the partials are
    /// reduced elementwise in partition order. **Nothing posterior-sized is
    /// allocated and no shard is written** — the stage reads the same
    /// shared handles the updates mutate in place between stages. The job
    /// is tagged [`StageVariant::Lookahead`] with its branch count so the
    /// timeline distinguishes selection stages from update stages.
    pub fn lookahead_histograms(
        &self,
        engine: &Engine,
        kernel: &Arc<LookaheadKernel>,
        pools: Vec<BranchPool>,
    ) -> Vec<f64> {
        let nb = 1usize << pools.len();
        let rows = kernel.num_prefixes();
        let kernel = Arc::clone(kernel);
        let pools = engine.broadcast(pools);
        let offsets = Arc::clone(&self.offsets);
        let partials: Vec<Vec<f64>> = self
            .shards
            .try_aggregate_partitions(engine, "lookahead:select", move |pidx, probs| {
                kernel.histograms(probs, offsets[pidx], pools.value())
            })
            .unwrap_or_else(|e| panic!("dataset job failed: {e}"));
        engine
            .metrics()
            .annotate_last_job(StageVariant::Lookahead { branches: nb });
        let mut hist = vec![0.0f64; rows * nb];
        for local in partials {
            for (h, l) in hist.iter_mut().zip(&local) {
                *h += l;
            }
        }
        hist
    }

    /// Position of each subject within `order` (`u32::MAX` = not in order).
    fn positions_of(n: usize, order: &[usize]) -> Vec<u32> {
        let mut pos_of = vec![u32::MAX; n];
        for (k, &subj) in order.iter().enumerate() {
            assert!(subj < n, "subject {subj} out of range");
            assert!(pos_of[subj] == u32::MAX, "duplicate subject in order");
            pos_of[subj] = k as u32;
        }
        pos_of
    }

    /// Turn a first-positive histogram into all-prefix negative masses.
    fn suffix_sum(hist: Vec<f64>) -> Vec<f64> {
        let mut masses = vec![0.0f64; hist.len()];
        let mut running = 0.0;
        for k in (0..hist.len()).rev() {
            running += hist[k];
            masses[k] = running;
        }
        masses
    }
}

/// `probs[off] *= table[popcount((base + off) & mask)]` for every element,
/// returning the partial sum — the update's per-partition kernel, now
/// delegated to the runtime-dispatched SIMD block kernel
/// ([`sbgt_lattice::simd::mul_table_block`]). The blocked popcount and the
/// four accumulator lanes (lane of element `off` = `off % 4`) live there;
/// the reduction order is a pure function of the partition layout, so this
/// kernel and [`mul_table_collect`] stay bit-for-bit identical across
/// dispatch levels.
fn mul_table_in_place(probs: &mut [f64], base: u64, mask: u64, table: &[f64]) -> f64 {
    simd::mul_table_block(probs, base, mask, table)
}

/// The materializing twin of [`mul_table_in_place`]: identical arithmetic
/// in identical order, but writing into a freshly allocated vector.
fn mul_table_collect(src: &[f64], base: u64, mask: u64, table: &[f64]) -> (Vec<f64>, f64) {
    simd::mul_table_collect_block(src, base, mask, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_bayes::{update_dense, Observation, Prior};
    use sbgt_engine::EngineConfig;
    use sbgt_response::BinaryDilutionModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    fn risks() -> Vec<f64> {
        vec![0.02, 0.07, 0.01, 0.12, 0.05, 0.03, 0.09, 0.2]
    }

    #[test]
    fn sharded_update_matches_dense() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let mut dense = Prior::from_risks(&risks()).to_dense();
        let mut sharded = ShardedPosterior::from_dense(&dense, 5);
        assert_eq!(sharded.num_partitions(), 5);

        let tests = [
            (State::from_subjects([0, 1, 2, 3]), true),
            (State::from_subjects([4, 5]), false),
            (State::from_subjects([0]), true),
        ];
        for (pool, outcome) in tests {
            let zd = update_dense(&mut dense, &model, &Observation::new(pool, outcome)).unwrap();
            let zs = sharded.update(&e, &model, pool, outcome).unwrap();
            assert!(close(zd, zs), "evidence {zd} vs {zs}");
        }
        let back = sharded.to_dense(&e);
        for (a, b) in dense.probs().iter().zip(back.probs()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn sharded_aggregates_match_dense() {
        let e = engine();
        let dense = Prior::from_risks(&risks()).to_dense();
        let sharded = ShardedPosterior::from_dense(&dense, 7);
        for (a, b) in dense.marginals().iter().zip(sharded.marginals(&e)) {
            assert!(close(*a, b));
        }
        let pool = State::from_subjects([1, 4, 6]);
        assert!(close(
            dense.pool_negative_mass(pool),
            sharded.pool_negative_mass(&e, pool)
        ));
        let order = [3usize, 0, 7, 2, 5];
        let dm = dense.prefix_negative_masses(&order);
        let sm = sharded.prefix_negative_masses(&e, &order);
        for (a, b) in dm.iter().zip(&sm) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn evidence_is_relative_to_running_total() {
        // Two consecutive updates: each reported evidence must match the
        // dense (renormalizing) implementation even though shards never
        // rescale.
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(6, 0.1).to_dense(), 3);
        let z1 = sharded
            .update(&e, &model, State::from_subjects([0, 1, 2]), false)
            .unwrap();
        let z2 = sharded
            .update(&e, &model, State::from_subjects([3, 4]), true)
            .unwrap();
        assert!(z1 > z2, "negative pool at 10% prevalence is likelier");
        assert!(z1 < 1.0 && z2 < 1.0);
    }

    #[test]
    fn error_paths() {
        let e = engine();
        let model = BinaryDilutionModel::perfect();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(4, 0.1).to_dense(), 2);
        assert_eq!(
            sharded.update(&e, &model, State::EMPTY, true).unwrap_err(),
            BayesError::EmptyPool
        );
        let pool = State::from_subjects([0, 1, 2, 3]);
        sharded.update(&e, &model, pool, false).unwrap();
        assert_eq!(
            sharded.update(&e, &model, pool, true).unwrap_err(),
            BayesError::ImpossibleObservation
        );
    }

    #[test]
    fn stage_metrics_are_recorded() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(6, 0.1).to_dense(), 4);
        e.metrics().clear();
        sharded
            .update(&e, &model, State::from_subjects([0, 1]), false)
            .unwrap();
        sharded.marginals(&e);
        assert!(e.metrics().job_count() >= 2, "expected dataflow stages");
        assert_eq!(e.metrics().broadcast_count(), 1);
        // The update ran as an in-place stage over uniquely-owned shards;
        // the marginals stage is a read-only (immutable) aggregation.
        let jobs = e.metrics().jobs();
        assert_eq!(
            jobs[0].variant,
            sbgt_engine::StageVariant::InPlace { unique: 4, cow: 0 }
        );
        assert_eq!(jobs[1].variant, sbgt_engine::StageVariant::Immutable);
        assert_eq!(e.metrics().in_place_job_count(), 1);
    }

    #[test]
    fn in_place_and_immutable_updates_are_bit_identical() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let dense = Prior::from_risks(&risks()).to_dense();
        let mut in_place = ShardedPosterior::from_dense(&dense, 5);
        let mut immutable = ShardedPosterior::from_dense(&dense, 5);
        let tests = [
            (State::from_subjects([0, 1, 2, 3]), true),
            (State::from_subjects([4, 5]), false),
            (State::from_subjects([0]), true),
        ];
        for (pool, outcome) in tests {
            let za = in_place.update(&e, &model, pool, outcome).unwrap();
            let zb = immutable
                .update_immutable(&e, &model, pool, outcome)
                .unwrap();
            assert_eq!(za.to_bits(), zb.to_bits(), "evidence must be identical");
        }
        assert_eq!(in_place.total().to_bits(), immutable.total().to_bits());
        let a = in_place.to_dense(&e);
        let b = immutable.to_dense(&e);
        for (x, y) in a.probs().iter().zip(b.probs()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_round_matches_separate_stages() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let dense = Prior::from_risks(&risks()).to_dense();
        let mut fused = ShardedPosterior::from_dense(&dense, 5);
        let mut staged = ShardedPosterior::from_dense(&dense, 5);
        let pool = State::from_subjects([1, 3, 6]);
        let order = [3usize, 0, 7, 2, 5];

        let round = fused.fused_round(&e, &model, pool, true, &order).unwrap();
        let z = staged.update(&e, &model, pool, true).unwrap();
        assert!(close(round.evidence, z));
        for (a, b) in round.marginals.iter().zip(staged.marginals(&e)) {
            assert!(close(*a, b));
        }
        let masses = staged.prefix_negative_masses(&e, &order);
        assert_eq!(round.prefix_negative_masses.len(), masses.len());
        for (a, b) in round.prefix_negative_masses.iter().zip(&masses) {
            assert!(close(*a, *b));
        }
        // And the posteriors themselves agree.
        let a = fused.to_dense(&e);
        let b = staged.to_dense(&e);
        for (x, y) in a.probs().iter().zip(b.probs()) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn fused_round_error_paths() {
        let e = engine();
        let model = BinaryDilutionModel::perfect();
        let mut sharded = ShardedPosterior::from_dense(&Prior::flat(4, 0.1).to_dense(), 2);
        assert_eq!(
            sharded
                .fused_round(&e, &model, State::EMPTY, true, &[0, 1])
                .unwrap_err(),
            BayesError::EmptyPool
        );
        let pool = State::from_subjects([0, 1, 2, 3]);
        sharded
            .fused_round(&e, &model, pool, false, &[0, 1])
            .unwrap();
        assert_eq!(
            sharded
                .fused_round(&e, &model, pool, true, &[0, 1])
                .unwrap_err(),
            BayesError::ImpossibleObservation
        );
    }

    #[test]
    fn lookahead_histograms_match_dense_kernel() {
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let dense = Prior::from_risks(&risks()).to_dense();
        let sharded = ShardedPosterior::from_dense(&dense, 5);
        let order = [3usize, 0, 7, 2, 5];
        let kernel = Arc::new(LookaheadKernel::new(dense.n_subjects(), &order));
        let make_pool = |subjects: &[usize]| {
            let pool = State::from_subjects(subjects.iter().copied());
            BranchPool {
                mask: pool.bits(),
                tables: [
                    model.likelihood_table(false, pool.rank()),
                    model.likelihood_table(true, pool.rank()),
                ],
            }
        };
        for pools in [
            vec![],
            vec![make_pool(&[3, 0])],
            vec![make_pool(&[3, 0]), make_pool(&[7, 2, 5])],
        ] {
            let nb = 1usize << pools.len();
            e.metrics().clear();
            let sharded_hist = sharded.lookahead_histograms(&e, &kernel, pools.clone());
            let dense_hist = kernel.histograms(dense.probs(), 0, &pools);
            assert_eq!(sharded_hist.len(), dense_hist.len());
            for (a, b) in sharded_hist.iter().zip(&dense_hist) {
                assert!(close(*a, *b));
            }
            // The stage is tagged with its branch count and is read-only.
            let jobs = e.metrics().jobs();
            let job = jobs.last().unwrap();
            assert_eq!(job.name, "lookahead:select");
            assert_eq!(
                job.variant,
                sbgt_engine::StageVariant::Lookahead { branches: nb }
            );
            assert!(!job.variant.is_in_place());
        }
    }

    #[test]
    fn update_copies_on_write_when_shards_are_shared() {
        // A dataflow consumer holding the shard dataset must not observe
        // the in-place update (Spark datasets are immutable to observers).
        let e = engine();
        let model = BinaryDilutionModel::pcr_like();
        let dense = Prior::from_risks(&risks()).to_dense();
        let mut sharded = ShardedPosterior::from_dense(&dense, 3);
        let snapshot = sharded.shards.clone();
        sharded
            .update(&e, &model, State::from_subjects([0, 1]), false)
            .unwrap();
        // Snapshot still holds the prior values.
        for (a, b) in snapshot.collect().iter().zip(dense.probs()) {
            assert!(close(*a, *b));
        }
        let jobs = e.metrics().jobs();
        assert_eq!(
            jobs.last().unwrap().variant,
            sbgt_engine::StageVariant::InPlace { unique: 0, cow: 3 }
        );
        // The next update is unique again: the COW pass re-established
        // sole ownership of every shard handle.
        sharded
            .update(&e, &model, State::from_subjects([2]), false)
            .unwrap();
        let jobs = e.metrics().jobs();
        assert_eq!(
            jobs.last().unwrap().variant,
            sbgt_engine::StageVariant::InPlace { unique: 3, cow: 0 }
        );
    }
}
