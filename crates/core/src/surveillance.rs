//! The shared session surface.
//!
//! Four session families drive the same surveillance loop — exact dense
//! ([`SbgtSession`]), engine-sharded ([`ShardedSession`]), pruned-sparse
//! ([`SparseSession`]), and the approximate backends in `sbgt-approx` — and
//! before this trait each re-implemented the `run_round`/`observe`/
//! `snapshot` surface ad hoc. [`SurveillanceSession`] names that surface
//! once, so harnesses (accuracy comparisons, generic drivers, soak rigs)
//! can be written against *a* session instead of one concrete family.
//!
//! Two associated types absorb the real differences between families:
//!
//! * [`Pool`](SurveillanceSession::Pool) — what a lab is handed. Exact
//!   sessions pool with one-word [`State`] masks; the approximate backends
//!   test cohorts beyond 48 subjects and pool with
//!   [`sbgt_lattice::BigState`].
//! * [`Ctx`](SurveillanceSession::Ctx) — what a round needs threaded
//!   through it. Self-contained sessions take `()`; [`ShardedSession`]
//!   runs its stages on a caller-supplied [`Engine`].
//!
//! The per-family inherent methods remain the primary API (they keep their
//! richer signatures — `impl FnMut` labs, engine-specific entry points);
//! the trait impls forward to them, so behavior is identical either way.

use sbgt_bayes::{BayesError, CohortClassification};
use sbgt_engine::Engine;
use sbgt_lattice::State;
use sbgt_response::BinaryOutcomeModel;

use crate::session::{RoundStep, SbgtSession};
use crate::sharded_session::ShardedSession;
use crate::snapshot::SessionSnapshot;
use crate::sparse_session::SparseSession;
use crate::SessionOutcome;

/// One Bayesian group-testing session, abstracted over posterior
/// representation: the select → observe → classify round loop plus the
/// snapshot boundary every supervisor (service, checkpointing, harnesses)
/// drives.
pub trait SurveillanceSession {
    /// The pool representation a lab closure receives.
    type Pool;
    /// Execution context a round borrows: `()` for self-contained sessions,
    /// [`Engine`] for engine-sharded ones.
    type Ctx: ?Sized;

    /// Cohort size.
    fn n_subjects(&self) -> usize;

    /// Completed stages (lab rounds).
    fn stages(&self) -> usize;

    /// Total pooled tests performed so far.
    fn tests_performed(&self) -> usize;

    /// Current per-subject posterior marginals.
    fn marginals(&self) -> Vec<f64>;

    /// Classify every subject under the session's rule at the current
    /// marginals.
    fn classify(&self) -> CohortClassification;

    /// Ingest one observed pooled test (counted as one stage). Returns the
    /// model evidence of the observation — approximate backends report the
    /// per-observation likelihood normalizer under their posterior
    /// representation.
    fn observe_in(
        &mut self,
        ctx: &Self::Ctx,
        pool: Self::Pool,
        outcome: bool,
    ) -> Result<f64, BayesError>;

    /// Run one full round: classify, select the next stage, run the lab on
    /// each selected pool, ingest the outcomes.
    fn run_round_in(
        &mut self,
        ctx: &Self::Ctx,
        lab: &mut dyn FnMut(&Self::Pool) -> bool,
    ) -> RoundStep;

    /// Capture full session state at a round boundary, bit-for-bit
    /// restorable via the family's `restore`.
    fn snapshot(&self) -> SessionSnapshot;

    /// Drive rounds to a terminal classification.
    fn run_to_classification_in(
        &mut self,
        ctx: &Self::Ctx,
        lab: &mut dyn FnMut(&Self::Pool) -> bool,
    ) -> SessionOutcome {
        loop {
            if let RoundStep::Finished(outcome) = self.run_round_in(ctx, lab) {
                return outcome;
            }
        }
    }
}

impl<M: BinaryOutcomeModel> SurveillanceSession for SbgtSession<M> {
    type Pool = State;
    type Ctx = ();

    fn n_subjects(&self) -> usize {
        SbgtSession::n_subjects(self)
    }

    fn stages(&self) -> usize {
        SbgtSession::stages(self)
    }

    fn tests_performed(&self) -> usize {
        self.history().len()
    }

    fn marginals(&self) -> Vec<f64> {
        SbgtSession::marginals(self)
    }

    fn classify(&self) -> CohortClassification {
        SbgtSession::classify(self)
    }

    fn observe_in(&mut self, _ctx: &(), pool: State, outcome: bool) -> Result<f64, BayesError> {
        self.observe(pool, outcome)
    }

    fn run_round_in(&mut self, _ctx: &(), lab: &mut dyn FnMut(&State) -> bool) -> RoundStep {
        self.run_round(|pool| lab(&pool))
    }

    fn snapshot(&self) -> SessionSnapshot {
        SbgtSession::snapshot(self)
    }
}

impl<M: BinaryOutcomeModel> SurveillanceSession for SparseSession<M> {
    type Pool = State;
    type Ctx = ();

    fn n_subjects(&self) -> usize {
        SparseSession::n_subjects(self)
    }

    fn stages(&self) -> usize {
        SparseSession::stages(self)
    }

    fn tests_performed(&self) -> usize {
        self.history().len()
    }

    fn marginals(&self) -> Vec<f64> {
        SparseSession::marginals(self)
    }

    fn classify(&self) -> CohortClassification {
        SparseSession::classify(self)
    }

    fn observe_in(&mut self, _ctx: &(), pool: State, outcome: bool) -> Result<f64, BayesError> {
        self.observe(pool, outcome)
    }

    fn run_round_in(&mut self, _ctx: &(), lab: &mut dyn FnMut(&State) -> bool) -> RoundStep {
        self.run_round(|pool| lab(&pool))
    }

    fn snapshot(&self) -> SessionSnapshot {
        SparseSession::snapshot(self)
    }
}

impl<M: BinaryOutcomeModel> SurveillanceSession for ShardedSession<M> {
    type Pool = State;
    type Ctx = Engine;

    fn n_subjects(&self) -> usize {
        ShardedSession::n_subjects(self)
    }

    fn stages(&self) -> usize {
        ShardedSession::stages(self)
    }

    fn tests_performed(&self) -> usize {
        self.history().len()
    }

    fn marginals(&self) -> Vec<f64> {
        ShardedSession::marginals(self).to_vec()
    }

    fn classify(&self) -> CohortClassification {
        ShardedSession::classify(self)
    }

    fn observe_in(
        &mut self,
        engine: &Engine,
        pool: State,
        outcome: bool,
    ) -> Result<f64, BayesError> {
        self.observe(engine, pool, outcome)
    }

    fn run_round_in(&mut self, engine: &Engine, lab: &mut dyn FnMut(&State) -> bool) -> RoundStep {
        self.run_round(engine, |pool| lab(&pool))
    }

    fn snapshot(&self) -> SessionSnapshot {
        ShardedSession::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_bayes::Prior;
    use sbgt_engine::EngineConfig;
    use sbgt_response::BinaryDilutionModel;

    use crate::SbgtConfig;

    fn risks(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.02 + 0.015 * i as f64).collect()
    }

    /// A driver written once against the trait, handed each family.
    fn drive<S: SurveillanceSession>(
        session: &mut S,
        ctx: &S::Ctx,
        truth: impl Fn(&S::Pool) -> bool,
    ) -> SessionOutcome {
        session.run_to_classification_in(ctx, &mut |pool| truth(pool))
    }

    #[test]
    fn one_generic_driver_runs_all_exact_families() {
        let n = 6;
        let truth = State::from_subjects([1, 4]);
        let model = BinaryDilutionModel::pcr_like();
        let config = SbgtConfig::default().serial();

        let mut dense = SbgtSession::new(Prior::from_risks(&risks(n)), model, config);
        let dense_out = drive(&mut dense, &(), |p| truth.intersects(*p));

        let mut sparse =
            SparseSession::new(Prior::from_risks(&risks(n)), model, config, 0.0).unwrap();
        let sparse_out = drive(&mut sparse, &(), |p| truth.intersects(*p));

        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let mut sharded =
            ShardedSession::new(&engine, Prior::from_risks(&risks(n)), model, config, 2);
        let sharded_out = drive(&mut sharded, &engine, |p| truth.intersects(*p));

        // ε = 0 sparse and the sharded reduction agree with dense on the
        // classification (bit-level posterior agreement for sparse is pinned
        // elsewhere; here we pin that the *trait* surface reaches the same
        // decisions).
        assert_eq!(dense_out.classification, sparse_out.classification);
        assert_eq!(dense_out.classification, sharded_out.classification);
        assert!(SurveillanceSession::tests_performed(&dense) > 0);
        assert_eq!(SurveillanceSession::n_subjects(&dense), n);
        assert!(SurveillanceSession::classify(&dense).is_terminal());
        assert_eq!(SurveillanceSession::marginals(&dense).len(), n);
        let snap = SurveillanceSession::snapshot(&dense);
        assert_eq!(snap.n_subjects, n);
    }
}
