//! Session outcome reporting.

use sbgt_bayes::{CohortClassification, SubjectStatus};

/// Final result of driving a session to classification.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Total assays consumed.
    pub tests: usize,
    /// Sequential stages used.
    pub stages: usize,
    /// Cohort size.
    pub subjects: usize,
    /// Terminal (or truncated) classification.
    pub classification: CohortClassification,
    /// Final posterior marginals.
    pub marginals: Vec<f64>,
}

impl SessionOutcome {
    /// Tests per subject (individual testing = 1.0).
    pub fn tests_per_subject(&self) -> f64 {
        if self.subjects == 0 {
            0.0
        } else {
            self.tests as f64 / self.subjects as f64
        }
    }

    /// Render a compact human-readable table of the outcome.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "subjects: {}  tests: {}  stages: {}  tests/subject: {:.3}",
            self.subjects,
            self.tests,
            self.stages,
            self.tests_per_subject()
        );
        let _ = writeln!(out, "subject  marginal  status");
        for (i, (m, s)) in self
            .marginals
            .iter()
            .zip(&self.classification.statuses)
            .enumerate()
        {
            let label = match s {
                SubjectStatus::Positive => "POSITIVE",
                SubjectStatus::Negative => "negative",
                SubjectStatus::Undetermined => "???",
            };
            let _ = writeln!(out, "{i:>7}  {m:>8.4}  {label}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_every_subject() {
        let outcome = SessionOutcome {
            tests: 5,
            stages: 3,
            subjects: 3,
            classification: CohortClassification {
                statuses: vec![
                    SubjectStatus::Positive,
                    SubjectStatus::Negative,
                    SubjectStatus::Undetermined,
                ],
            },
            marginals: vec![0.999, 0.001, 0.4],
        };
        let table = outcome.to_table();
        assert!(table.contains("POSITIVE"));
        assert!(table.contains("negative"));
        assert!(table.contains("???"));
        assert!(table.contains("tests/subject: 1.667"));
        assert!((outcome.tests_per_subject() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cohort_ratio_is_zero() {
        let outcome = SessionOutcome {
            tests: 0,
            stages: 0,
            subjects: 0,
            classification: CohortClassification { statuses: vec![] },
            marginals: vec![],
        };
        assert_eq!(outcome.tests_per_subject(), 0.0);
    }
}
