//! Session outcome reporting.

use serde::{Deserialize, Serialize};

use sbgt_bayes::{CohortClassification, SubjectStatus};

/// Final result of driving a session to classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Total assays consumed.
    pub tests: usize,
    /// Sequential stages used.
    pub stages: usize,
    /// Cohort size.
    pub subjects: usize,
    /// Terminal (or truncated) classification.
    pub classification: CohortClassification,
    /// Final posterior marginals.
    pub marginals: Vec<f64>,
}

impl SessionOutcome {
    /// Tests per subject (individual testing = 1.0).
    pub fn tests_per_subject(&self) -> f64 {
        if self.subjects == 0 {
            0.0
        } else {
            self.tests as f64 / self.subjects as f64
        }
    }

    /// Render a compact human-readable table of the outcome.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "subjects: {}  tests: {}  stages: {}  tests/subject: {:.3}",
            self.subjects,
            self.tests,
            self.stages,
            self.tests_per_subject()
        );
        let _ = writeln!(out, "subject  marginal  status");
        for (i, (m, s)) in self
            .marginals
            .iter()
            .zip(&self.classification.statuses)
            .enumerate()
        {
            let label = match s {
                SubjectStatus::Positive => "POSITIVE",
                SubjectStatus::Negative => "negative",
                SubjectStatus::Undetermined => "???",
            };
            let _ = writeln!(out, "{i:>7}  {m:>8.4}  {label}");
        }
        out
    }

    /// Render the outcome as a single JSON object — the machine-readable
    /// counterpart of [`Self::to_table`], used by the service egress and the
    /// `experiments` binary. Hand-emitted (the vendored `serde` is marker
    /// traits only); floats use Rust's shortest round-trip formatting, and
    /// non-finite values become `null`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"subjects\":{},\"tests\":{},\"stages\":{},\"tests_per_subject\":{},\"terminal\":{},\"positives\":{},\"negatives\":{},\"statuses\":[",
            self.subjects,
            self.tests,
            self.stages,
            json_f64(self.tests_per_subject()),
            self.classification.is_terminal(),
            self.classification.positives(),
            self.classification.negatives(),
        );
        for (i, s) in self.classification.statuses.iter().enumerate() {
            let label = match s {
                SubjectStatus::Positive => "positive",
                SubjectStatus::Negative => "negative",
                SubjectStatus::Undetermined => "undetermined",
            };
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{label}\"");
        }
        out.push_str("],\"marginals\":[");
        for (i, m) in self.marginals.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}{}", json_f64(*m));
        }
        out.push_str("]}");
        out
    }
}

/// JSON-safe float rendering: shortest round-trip decimal, `null` for
/// non-finite values (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_every_subject() {
        let outcome = SessionOutcome {
            tests: 5,
            stages: 3,
            subjects: 3,
            classification: CohortClassification {
                statuses: vec![
                    SubjectStatus::Positive,
                    SubjectStatus::Negative,
                    SubjectStatus::Undetermined,
                ],
            },
            marginals: vec![0.999, 0.001, 0.4],
        };
        let table = outcome.to_table();
        assert!(table.contains("POSITIVE"));
        assert!(table.contains("negative"));
        assert!(table.contains("???"));
        assert!(table.contains("tests/subject: 1.667"));
        assert!((outcome.tests_per_subject() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_emits_every_field() {
        let outcome = SessionOutcome {
            tests: 5,
            stages: 3,
            subjects: 3,
            classification: CohortClassification {
                statuses: vec![
                    SubjectStatus::Positive,
                    SubjectStatus::Negative,
                    SubjectStatus::Undetermined,
                ],
            },
            marginals: vec![0.999, 0.001, 0.4],
        };
        let json = outcome.to_json();
        assert_eq!(
            json,
            "{\"subjects\":3,\"tests\":5,\"stages\":3,\
             \"tests_per_subject\":1.6666666666666667,\"terminal\":false,\
             \"positives\":1,\"negatives\":1,\
             \"statuses\":[\"positive\",\"negative\",\"undetermined\"],\
             \"marginals\":[0.999,0.001,0.4]}"
        );
        // Shortest round-trip formatting: parsing the marginal back yields
        // the exact bits.
        assert_eq!("1.6666666666666667".parse::<f64>().unwrap(), 5.0 / 3.0);
    }

    #[test]
    fn json_maps_non_finite_to_null() {
        let outcome = SessionOutcome {
            tests: 0,
            stages: 0,
            subjects: 1,
            classification: CohortClassification {
                statuses: vec![SubjectStatus::Undetermined],
            },
            marginals: vec![f64::NAN],
        };
        let json = outcome.to_json();
        assert!(json.contains("\"marginals\":[null]"));
    }

    #[test]
    fn empty_cohort_ratio_is_zero() {
        let outcome = SessionOutcome {
            tests: 0,
            stages: 0,
            subjects: 0,
            classification: CohortClassification { statuses: vec![] },
            marginals: vec![],
        };
        assert_eq!(outcome.tests_per_subject(), 0.0);
    }
}
