//! The engine-backed session: the BHA stage loop on the dataflow path.
//!
//! [`ShardedSession`] drives a [`ShardedPosterior`] the way [`crate::SbgtSession`]
//! drives the dense rayon kernels, but every posterior traversal is an
//! engine stage — and the hot loop runs through the **fused in-place
//! superstage** ([`ShardedPosterior::fused_round`]): one traversal per
//! observation applies the Bayesian update and computes the post-update
//! marginals and all-prefix negative masses, so a full BHA round costs one
//! stage instead of three, with zero posterior-sized allocations.
//!
//! ## Selection pipelining
//!
//! The fused round computes prefix masses under a candidate ordering that
//! must be supplied *before* the update runs, so the loop pipelines: the
//! ordering passed into round `t` is derived from round `t-1`'s (fresh)
//! marginals, and the masses that round returns drive round `t+1`'s pool
//! selection. Classification always uses the current marginals — only the
//! candidate *ordering* for selection is one round stale, which perturbs
//! near-tied pool choices but never the posterior math (every returned
//! mass is exact for the updated posterior). [`ShardedSession::select_next`]
//! remains the exact, non-pipelined path (fresh ordering, one extra
//! read-only stage).

use std::sync::Arc;

use sbgt_bayes::{
    classify_marginals, update_sparse_with_table, BayesError, CohortClassification, Prior,
};
use sbgt_engine::obs::{SpanKind, SpanMeta, SpanRecorder, TraceLevel, NO_COHORT};
use sbgt_engine::{Engine, StageVariant};
use sbgt_lattice::{num_states, LookaheadKernel, SparsePosterior, State};
use sbgt_response::BinaryOutcomeModel;
use sbgt_select::{
    drive_lookahead, select_halving_from_masses, select_halving_prefix_sparse,
    select_stage_lookahead_sparse, LookaheadConfig, PlanHandle, SelectError, Selection,
};

use crate::config::SbgtConfig;
use crate::parallel::ShardedPosterior;
use crate::report::SessionOutcome;
use crate::session::RoundStep;
use crate::snapshot::{SessionSnapshot, SnapshotError, SparseSnapshot};

/// The session's posterior in whichever representation is currently live:
/// engine shards before the adaptive switch, a driver-held pruned sparse
/// posterior after. Sparse rounds still run as engine stages (cloned,
/// updated, committed on success) so fault injection and retry cover them.
enum ShardedState {
    Dense(ShardedPosterior),
    Sparse(SparsePosterior),
}

/// A live group-testing session whose posterior lives as engine shards.
pub struct ShardedSession<M> {
    state: ShardedState,
    model: M,
    config: SbgtConfig,
    history: Vec<(State, bool)>,
    /// Completed stages. One observation per stage on the width-1 loop;
    /// a look-ahead stage banks several observations under one count.
    stages: usize,
    /// Marginals of the current posterior (kept fresh by every round).
    marginals: Vec<f64>,
    /// `(order, masses)` carried over from the last fused round: all-prefix
    /// negative masses of the *current* posterior under `order`.
    pending_selection: Option<(Vec<usize>, Vec<f64>)>,
    /// Cohort id stamped on the session's telemetry spans (the engine's
    /// recorder is the sink, so no recorder handle is stored here).
    /// `None` leaves spans tagged [`NO_COHORT`].
    cohort: Option<u64>,
    /// Memoized selection plan. `None` (the default) selects live every
    /// round; [`Self::attach_plan`] opts in.
    plan: Option<PlanHandle>,
}

impl<M: BinaryOutcomeModel> ShardedSession<M> {
    /// Open a session: shard the prior posterior into `parts` partitions
    /// and run one marginals stage to seed the classification state.
    pub fn new(engine: &Engine, prior: Prior, model: M, config: SbgtConfig, parts: usize) -> Self {
        let posterior = ShardedPosterior::from_dense(&prior.to_dense(), parts);
        let marginals = posterior.marginals(engine);
        ShardedSession {
            state: ShardedState::Dense(posterior),
            model,
            config,
            history: Vec::new(),
            stages: 0,
            marginals,
            pending_selection: None,
            cohort: None,
            plan: None,
        }
    }

    /// Attach a memoized selection plan (see `sbgt_select::plancache`).
    /// Rounds covered by the plan replay cached pool selections; rounds
    /// that fall off the tree select live and extend it. The handle's
    /// [`sbgt_select::PlanKey`] must carry this session's exact risks,
    /// model, rule, widths, and the `Sharded { parts }` lineage — the
    /// sharded summation order differs from the dense one in the last ulp,
    /// which a shared key would surface as a near-tie selection flip.
    pub fn attach_plan(&mut self, plan: PlanHandle) {
        self.plan = Some(plan);
    }

    /// Whether a selection plan is attached.
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Tag this session's telemetry spans with a cohort id (the sink is
    /// the engine's own [`SpanRecorder`], shared with stage/task spans).
    pub fn set_cohort(&mut self, cohort: u64) {
        self.cohort = Some(cohort);
    }

    /// The cohort id stamped on telemetry spans, if one was set.
    pub fn cohort(&self) -> Option<u64> {
        self.cohort
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        match &self.state {
            ShardedState::Dense(p) => p.n_subjects(),
            ShardedState::Sparse(s) => s.n_subjects(),
        }
    }

    /// The sharded posterior.
    ///
    /// # Panics
    /// Panics once the session has taken the adaptive dense→sparse switch
    /// (only possible when [`SbgtConfig::sparse_switch`] is configured);
    /// check [`Self::is_sparse`] or use [`Self::sparse_posterior`] then.
    pub fn posterior(&self) -> &ShardedPosterior {
        match &self.state {
            ShardedState::Dense(p) => p,
            ShardedState::Sparse(_) => {
                panic!("posterior has switched to sparse; use sparse_posterior()")
            }
        }
    }

    /// Whether the adaptive dense→sparse switch has happened.
    pub fn is_sparse(&self) -> bool {
        matches!(self.state, ShardedState::Sparse(_))
    }

    /// The sparse posterior, once the session has switched.
    pub fn sparse_posterior(&self) -> Option<&SparsePosterior> {
        match &self.state {
            ShardedState::Sparse(s) => Some(s),
            ShardedState::Dense(_) => None,
        }
    }

    /// Every `(pool, outcome)` observed so far, in order.
    pub fn history(&self) -> &[(State, bool)] {
        &self.history
    }

    /// Completed stages. With `stage_width == 1` this equals the number of
    /// observations; a wider look-ahead stage counts once for all its
    /// pools (the bench-turnaround quantity of experiment E8).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Current posterior marginals (no stage: kept fresh by each round).
    pub fn marginals(&self) -> &[f64] {
        &self.marginals
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals, self.config.rule)
    }

    /// Unclassified subjects by ascending marginal (ties by index) — the
    /// candidate ordering for the halving search.
    pub fn eligible_order(&self) -> Vec<usize> {
        let mut eligible = self.classify().undetermined();
        eligible.sort_by(|&a, &b| {
            self.marginals[a]
                .total_cmp(&self.marginals[b])
                .then(a.cmp(&b))
        });
        eligible
    }

    /// Exact BHA selection: fresh eligible ordering, one read-only
    /// all-prefix mass stage. `None` when the cohort is classified.
    pub fn select_next(&self, engine: &Engine) -> Option<Selection> {
        let order = self.eligible_order();
        if order.is_empty() {
            return None;
        }
        match &self.state {
            ShardedState::Dense(p) => {
                let masses = p.prefix_negative_masses(engine, &order);
                select_halving_from_masses(&order, &masses, self.config.max_pool_size)
            }
            // Post-switch the support fits the driver: selection is a plain
            // O(support) scan, no stage.
            ShardedState::Sparse(s) => {
                select_halving_prefix_sparse(s, &order, self.config.max_pool_size)
            }
        }
    }

    /// Select all pools of one look-ahead stage on the **engine-sharded
    /// fused path**: each greedy step is one read-only
    /// `lookahead:select` aggregate stage accumulating every outcome
    /// branch's prefix-mass histogram in a single traversal of the shards
    /// — no branch posterior is ever materialized, on the driver or on any
    /// task. Selects bit-for-bit the same pools as the serial
    /// clone-per-branch rule (pinned by the chaos-equivalence suite, with
    /// and without injected faults).
    ///
    /// Returns an empty stage when the cohort is already classified.
    pub fn select_stage(
        &self,
        engine: &Engine,
        cfg: &LookaheadConfig,
    ) -> Result<Vec<Selection>, SelectError> {
        cfg.validate()?;
        let order = self.eligible_order();
        if order.is_empty() {
            return Ok(Vec::new());
        }
        match &self.state {
            ShardedState::Dense(p) => {
                let kernel = Arc::new(LookaheadKernel::new(self.n_subjects(), &order));
                drive_lookahead(&self.model, &order, cfg, |pools| {
                    p.lookahead_histograms(engine, &kernel, pools.to_vec())
                })
            }
            ShardedState::Sparse(s) => select_stage_lookahead_sparse(s, &self.model, &order, cfg),
        }
    }

    /// Ingest one observed pooled test as a single fused in-place stage;
    /// returns the model evidence. Refreshes the marginals and banks the
    /// prefix masses for the next round's pipelined selection.
    pub fn observe(
        &mut self,
        engine: &Engine,
        pool: State,
        outcome: bool,
    ) -> Result<f64, BayesError> {
        let z = self.observe_inner(engine, pool, outcome)?;
        self.stages += 1;
        self.maybe_switch(engine);
        Ok(z)
    }

    /// Ingest all observed outcomes of one look-ahead stage under a single
    /// stage count (the pools ran concurrently on the bench; posterior
    /// updates are sequential multiplies, so order does not matter).
    /// Returns the joint model evidence. On an impossible observation the
    /// error is returned after the preceding observations of the stage
    /// have been applied — matching a wet lab that cannot un-run tests.
    pub fn observe_stage(
        &mut self,
        engine: &Engine,
        observations: &[(State, bool)],
    ) -> Result<f64, BayesError> {
        let mut joint = 1.0f64;
        let mut any = false;
        for &(pool, outcome) in observations {
            let z = self.observe_inner(engine, pool, outcome);
            match z {
                Ok(z) => joint *= z,
                Err(e) => {
                    if any {
                        self.stages += 1;
                    }
                    return Err(e);
                }
            }
            any = true;
        }
        if any {
            self.stages += 1;
            self.maybe_switch(engine);
        }
        Ok(joint)
    }

    fn observe_inner(
        &mut self,
        engine: &Engine,
        pool: State,
        outcome: bool,
    ) -> Result<f64, BayesError> {
        let order = self.eligible_order();
        let eps = self
            .config
            .sparse_switch
            .map(|w| w.prune_epsilon)
            .unwrap_or(0.0);
        let ShardedSession {
            state,
            model,
            marginals,
            pending_selection,
            history,
            ..
        } = self;
        match state {
            ShardedState::Dense(p) => {
                let round = p.fused_round(engine, model, pool, outcome, &order)?;
                *marginals = round.marginals;
                *pending_selection = Some((order, round.prefix_negative_masses));
                history.push((pool, outcome));
                Ok(round.evidence)
            }
            // Sparse rounds stay on the engine: the update runs as a
            // single-task `fused-round:sparse` stage against a clone of the
            // posterior, so the installed fault plan can kill or retry it
            // (the closure is pure — a retry re-clones pristine input) and
            // the commit below happens only on stage success. A permanently
            // failed stage panics, which the service's catch_unwind recovery
            // converts into a snapshot rollback, exactly like dense stages.
            ShardedState::Sparse(sparse) => {
                if pool.rank() == 0 {
                    return Err(BayesError::EmptyPool);
                }
                let table = model.likelihood_table(outcome, pool.rank());
                let base = Arc::new(sparse.clone());
                let task = {
                    let base = Arc::clone(&base);
                    move || {
                        let mut p = (*base).clone();
                        update_sparse_with_table(&mut p, pool, &table, eps).map(|z| (p, z))
                    }
                };
                let results = engine
                    .run_stage("fused-round:sparse", vec![task])
                    .unwrap_or_else(|e| panic!("sparse round stage failed: {e}"));
                let (p, z) = results.into_iter().next().expect("one sparse task")?;
                engine.metrics().annotate_last_job(StageVariant::Sparse {
                    support: p.support(),
                });
                *marginals = p.marginals();
                *pending_selection = None;
                history.push((pool, outcome));
                *sparse = p;
                Ok(z)
            }
        }
    }

    /// After a dense stage, take the dense→sparse switch if configured and
    /// the retained support now qualifies: one read-only `sparse:support`
    /// counting stage per round while dense, plus a final `sparse:collect`
    /// stage that materializes the pruned posterior on the driver. Matches
    /// [`sbgt_lattice::HybridPosterior::maybe_switch`]'s predicate exactly.
    fn maybe_switch(&mut self, engine: &Engine) {
        let Some(switch) = self.config.sparse_switch else {
            return;
        };
        let ShardedState::Dense(p) = &self.state else {
            return;
        };
        let support = p.retained_support(engine, switch.prune_epsilon);
        let limit = switch.max_support_fraction * num_states(p.n_subjects()) as f64;
        if support as f64 > limit {
            return;
        }
        let sparse = p.to_sparse(engine, switch.prune_epsilon);
        engine.metrics().annotate_last_job(StageVariant::Sparse {
            support: sparse.support(),
        });
        // The banked selection masses are unnormalized dense-total units;
        // drop them so the next round selects from the sparse posterior.
        self.pending_selection = None;
        self.state = ShardedState::Sparse(sparse);
    }

    /// Drive the session to classification against a lab oracle, one fused
    /// stage per round. Stops when the cohort is classified, the stage cap
    /// is reached, or an observation is impossible under the model.
    ///
    /// Under a fault-tolerant engine the whole run survives injected or
    /// real task failures with an identical outcome: every stage recovers
    /// bit-for-bit, so pool selection — which feeds on posterior bits —
    /// never diverges from a fault-free run.
    /// With `config.stage_width > 1` each round is a look-ahead stage on
    /// the sharded fused path: [`Self::select_stage`] picks all the
    /// stage's pools up front, the lab runs them together, and
    /// [`Self::observe_stage`] ingests every outcome under one stage
    /// count.
    pub fn run_to_classification(
        &mut self,
        engine: &Engine,
        mut lab: impl FnMut(State) -> bool,
    ) -> SessionOutcome {
        loop {
            if let RoundStep::Finished(outcome) = self.run_round(engine, &mut lab) {
                return outcome;
            }
        }
    }

    /// Drive exactly one round (classify → select → lab → observe) — the
    /// unit a multi-cohort service schedules onto a shared engine.
    /// [`Self::run_to_classification`] is a loop over this, so round-stepped
    /// and batch trajectories are identical by construction.
    pub fn run_round(&mut self, engine: &Engine, mut lab: impl FnMut(State) -> bool) -> RoundStep {
        let rec = engine.obs();
        if !rec.enabled_at(TraceLevel::Spans) {
            return self.run_round_inner(engine, &mut lab, None);
        }
        let rec = Arc::clone(rec);
        let start = rec.now_ns();
        let step = self.run_round_inner(engine, &mut lab, Some(&rec));
        let name = rec.intern("session:round");
        rec.record_span_ending_now(
            SpanKind::Round,
            name,
            start,
            SpanMeta::for_cohort(self.cohort.unwrap_or(NO_COHORT)),
        );
        step
    }

    /// Record `name` as a `Phase` span covering `start..now` on `rec`,
    /// tagged with this session's cohort. Phase detail is
    /// [`TraceLevel::Full`] only; the caller passes `start: None` below
    /// that level so untraced rounds never read the clock.
    fn obs_phase(&self, rec: Option<&SpanRecorder>, name: &str, start: Option<u64>) {
        if let (Some(rec), Some(start)) = (rec, start) {
            let name = rec.intern(name);
            rec.record_span_ending_now(
                SpanKind::Phase,
                name,
                start,
                SpanMeta::for_cohort(self.cohort.unwrap_or(NO_COHORT)),
            );
        }
    }

    fn obs_phase_start(rec: Option<&SpanRecorder>) -> Option<u64> {
        rec.filter(|r| r.enabled_at(TraceLevel::Full))
            .map(|r| r.now_ns())
    }

    fn run_round_inner(
        &mut self,
        engine: &Engine,
        lab: &mut impl FnMut(State) -> bool,
        rec: Option<&SpanRecorder>,
    ) -> RoundStep {
        let classification = self.classify();
        if classification.is_terminal() || self.stages() >= self.config.max_stages {
            return RoundStep::Finished(self.outcome(classification));
        }
        if self.config.stage_width > 1 {
            let cfg = self.config.lookahead();
            let t = Self::obs_phase_start(rec);
            // A plan hit replays the memoized stage for this exact
            // observation history; a miss selects live and extends the tree.
            let stage = match self.plan.as_ref().and_then(|p| p.lookup(&self.history)) {
                Some(cached) => cached,
                None => {
                    let live = self
                        .select_stage(engine, &cfg)
                        .expect("stage width validated by SbgtConfig");
                    if let Some(plan) = &self.plan {
                        plan.extend(&self.history, &live);
                    }
                    live
                }
            };
            self.obs_phase(rec, "session:select", t);
            if stage.is_empty() {
                return RoundStep::Finished(self.outcome(classification));
            }
            let t = Self::obs_phase_start(rec);
            let observations: Vec<(State, bool)> =
                stage.iter().map(|s| (s.pool, lab(s.pool))).collect();
            let observed = self.observe_stage(engine, &observations);
            self.obs_phase(rec, "session:observe", t);
            if observed.is_err() {
                return RoundStep::Finished(self.outcome(self.classify()));
            }
            return RoundStep::Progressed;
        }
        // Pipelined fast path: masses banked by the previous fused
        // round. First round (or after a miss) pays one extra stage.
        // Plan hits leave the bank alone — observe re-banks it every
        // round, so a later live miss sees the same masses either way.
        let t = Self::obs_phase_start(rec);
        let selection = match self.plan.as_ref().and_then(|p| p.lookup(&self.history)) {
            Some(cached) => cached.into_iter().next(),
            None => {
                let live = self
                    .pending_selection
                    .take()
                    .and_then(|(order, masses)| {
                        select_halving_from_masses(&order, &masses, self.config.max_pool_size)
                    })
                    .or_else(|| self.select_next(engine));
                if let (Some(plan), Some(sel)) = (&self.plan, &live) {
                    plan.extend(&self.history, std::slice::from_ref(sel));
                }
                live
            }
        };
        self.obs_phase(rec, "session:select", t);
        let Some(selection) = selection else {
            return RoundStep::Finished(self.outcome(classification));
        };
        let t = Self::obs_phase_start(rec);
        let outcome = lab(selection.pool);
        let observed = self.observe(engine, selection.pool, outcome);
        self.obs_phase(rec, "session:observe", t);
        if observed.is_err() {
            return RoundStep::Finished(self.outcome(self.classify()));
        }
        RoundStep::Progressed
    }

    /// Capture the full session state — posterior shards (exact bits,
    /// partition boundaries preserved), normalization constant, committed
    /// pools, round counter, fresh marginals, and the pipelined selection
    /// bank. Cheap relative to a running session: shard storage is captured
    /// by value so the snapshot stays valid across later in-place rounds.
    pub fn snapshot(&self) -> SessionSnapshot {
        let (shards, total, sparse) = match &self.state {
            ShardedState::Dense(p) => (p.shard_values(), p.total(), None),
            ShardedState::Sparse(s) => (
                Vec::new(),
                s.total(),
                Some(SparseSnapshot {
                    entries: s.entries().to_vec(),
                    pruned_mass: s.pruned_mass(),
                }),
            ),
        };
        SessionSnapshot {
            n_subjects: self.n_subjects(),
            shards,
            total,
            history: self.history.clone(),
            stages: self.stages,
            marginals: self.marginals.clone(),
            pending_selection: self.pending_selection.clone(),
            sparse,
            approx: None,
        }
    }

    /// Rehydrate a session from a snapshot, without touching the engine
    /// (the marginals were snapshotted fresh, so no bootstrap stage runs).
    /// The model and config are the cohort's static spec, supplied by the
    /// caller. Posterior values, marginals, and the selection bank are
    /// restored exactly, so the session continues bit-for-bit.
    pub fn restore(
        snapshot: &SessionSnapshot,
        model: M,
        config: SbgtConfig,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate()?;
        if snapshot.approx.is_some() {
            return Err(SnapshotError::Corrupt(
                "approx snapshot cannot restore an exact session".into(),
            ));
        }
        if snapshot.marginals.len() != snapshot.n_subjects {
            return Err(SnapshotError::Corrupt(format!(
                "sharded restore needs {} marginals, snapshot holds {}",
                snapshot.n_subjects,
                snapshot.marginals.len()
            )));
        }
        let state = match &snapshot.sparse {
            Some(sp) => ShardedState::Sparse(SparsePosterior::from_parts(
                snapshot.n_subjects,
                sp.entries.clone(),
                sp.pruned_mass,
            )),
            None => ShardedState::Dense(ShardedPosterior::from_shards(
                snapshot.n_subjects,
                snapshot.shards.clone(),
                snapshot.total,
            )?),
        };
        Ok(ShardedSession {
            state,
            model,
            config,
            history: snapshot.history.clone(),
            stages: snapshot.stages,
            marginals: snapshot.marginals.clone(),
            pending_selection: snapshot.pending_selection.clone(),
            cohort: None,
            plan: None,
        })
    }

    fn outcome(&self, classification: CohortClassification) -> SessionOutcome {
        SessionOutcome {
            tests: self.history.len(),
            stages: self.stages(),
            subjects: self.n_subjects(),
            classification,
            marginals: self.marginals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_engine::EngineConfig;
    use sbgt_response::BinaryDilutionModel;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    /// Ten subjects with distinct risks: a flat prior would leave the
    /// ascending-marginal ordering to last-ulp noise (dense and sharded
    /// summation orders differ), sending the two implementations down
    /// different — equally valid — BHA trajectories.
    fn distinct_risks() -> Prior {
        Prior::from_risks(&[0.03, 0.07, 0.02, 0.09, 0.05, 0.04, 0.08, 0.06, 0.025, 0.045])
    }

    #[test]
    fn fused_loop_classifies_with_perfect_oracle() {
        let e = engine();
        let truth = State::from_subjects([4, 9]);
        let mut s = ShardedSession::new(
            &e,
            distinct_risks(),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default(),
            4,
        );
        let outcome = s.run_to_classification(&e, |pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert_eq!(outcome.classification.positives(), 2);
        assert_eq!(
            outcome.classification.statuses[4],
            sbgt_bayes::SubjectStatus::Positive
        );
        assert_eq!(
            outcome.classification.statuses[9],
            sbgt_bayes::SubjectStatus::Positive
        );
        assert!(outcome.tests < 10, "group testing must beat individual");
    }

    #[test]
    fn rounds_run_as_single_in_place_stages() {
        let e = engine();
        let truth = State::from_subjects([2]);
        let mut s = ShardedSession::new(
            &e,
            Prior::flat(8, 0.06),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default(),
            4,
        );
        e.metrics().clear();
        let outcome = s.run_to_classification(&e, |pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        // Steady-state rounds are one fused in-place stage each; only the
        // bootstrap selection may add one read-only stage.
        let jobs = e.metrics().jobs();
        let fused = jobs
            .iter()
            .filter(|j| j.name.contains("fused-round"))
            .count();
        assert_eq!(fused, outcome.tests, "one fused stage per observation");
        assert!(
            jobs.len() <= outcome.tests + 1,
            "at most one bootstrap stage beyond the fused rounds ({} jobs, {} tests)",
            jobs.len(),
            outcome.tests
        );
        assert_eq!(e.metrics().in_place_job_count(), fused);
    }

    #[test]
    fn observe_matches_dense_session_evidence() {
        let e = engine();
        let prior = Prior::from_risks(&[0.02, 0.05, 0.01, 0.1, 0.03, 0.08, 0.02, 0.04]);
        let model = BinaryDilutionModel::pcr_like();
        let mut sharded = ShardedSession::new(&e, prior.clone(), model, SbgtConfig::default(), 3);
        let mut dense = crate::SbgtSession::new(prior, model, SbgtConfig::default().serial());
        let pool = State::from_subjects([0, 1, 2, 3]);
        let zs = sharded.observe(&e, pool, true).unwrap();
        let zd = dense.observe(pool, true).unwrap();
        assert!(close(zs, zd), "evidence {zs} vs {zd}");
        for (a, b) in sharded.marginals().iter().zip(dense.marginals()) {
            assert!(close(*a, b));
        }
        assert_eq!(sharded.history(), dense.history());
    }

    #[test]
    fn exact_select_agrees_with_dense_prefix_rule() {
        let e = engine();
        // Distinct risks, none on the symmetric(0.99) boundary: a subject
        // at exactly 0.01 flips classification on ulp-level summation
        // differences between the dense and sharded paths.
        let prior = Prior::from_risks(&[0.02, 0.05, 0.03, 0.1, 0.035, 0.08, 0.025, 0.04]);
        let model = BinaryDilutionModel::pcr_like();
        let mut sharded = ShardedSession::new(&e, prior.clone(), model, SbgtConfig::default(), 3);
        let mut dense = crate::SbgtSession::new(prior, model, SbgtConfig::default().serial());
        let pool = State::from_subjects([1, 5]);
        sharded.observe(&e, pool, false).unwrap();
        dense.observe(pool, false).unwrap();
        let a = sharded.select_next(&e).unwrap();
        let b = dense.select_next().unwrap();
        assert_eq!(a.pool, b.pool);
        assert!(close(a.negative_mass, b.negative_mass));
    }

    #[test]
    fn select_stage_matches_dense_fused_selection() {
        let e = engine();
        let prior = distinct_risks();
        let model = BinaryDilutionModel::pcr_like();
        let mut s = ShardedSession::new(&e, prior.clone(), model, SbgtConfig::default(), 4);
        s.observe(&e, State::from_subjects([0, 3, 5]), false)
            .unwrap();
        let cfg = LookaheadConfig {
            width: 3,
            max_pool_size: 8,
        };
        let sharded_stage = s.select_stage(&e, &cfg).unwrap();
        // Dense ground truth from the same posterior and ordering.
        let dense = s.posterior().to_dense(&e);
        let order = s.eligible_order();
        let dense_stage =
            sbgt_select::select_stage_lookahead_fused(&dense, &model, &order, &cfg).unwrap();
        assert_eq!(sharded_stage.len(), dense_stage.len());
        for (a, b) in sharded_stage.iter().zip(&dense_stage) {
            assert_eq!(a.pool, b.pool);
            assert!(close(a.negative_mass, b.negative_mass));
            assert!(close(a.distance, b.distance));
        }
    }

    #[test]
    fn wide_stage_loop_counts_stages_not_tests() {
        let e = engine();
        let truth = State::from_subjects([1, 6]);
        let mut s = ShardedSession::new(
            &e,
            distinct_risks(),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default().with_stage_width(3),
            4,
        );
        let outcome = s.run_to_classification(&e, |pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert!(
            outcome.stages < outcome.tests,
            "width-3 stages must bank several tests per stage ({} stages, {} tests)",
            outcome.stages,
            outcome.tests
        );
        // The selection stages ran on the sharded fused path.
        let jobs = e.metrics().jobs();
        assert!(jobs.iter().any(|j| j.name == "lookahead:select"));
    }

    #[test]
    fn impossible_observation_ends_run() {
        let e = engine();
        let mut s = ShardedSession::new(
            &e,
            Prior::flat(4, 0.1),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default(),
            2,
        );
        let pool = State::from_subjects([0, 1, 2, 3]);
        s.observe(&e, pool, false).unwrap();
        assert_eq!(
            s.observe(&e, pool, true).unwrap_err(),
            BayesError::ImpossibleObservation
        );
    }

    #[test]
    fn round_stepping_matches_batch_run() {
        let e = engine();
        let truth = State::from_subjects([3, 7]);
        let model = BinaryDilutionModel::perfect();
        for width in [1usize, 3] {
            let config = SbgtConfig::default().with_stage_width(width);
            let mut batch = ShardedSession::new(&e, distinct_risks(), model, config, 4);
            let expected = batch.run_to_classification(&e, |pool| truth.intersects(pool));
            let mut stepped = ShardedSession::new(&e, distinct_risks(), model, config, 4);
            let outcome = loop {
                if let RoundStep::Finished(o) = stepped.run_round(&e, |pool| truth.intersects(pool))
                {
                    break o;
                }
            };
            assert_eq!(outcome, expected, "width {width}");
        }
    }

    #[test]
    fn engine_recorder_captures_cohort_tagged_round_spans() {
        use sbgt_engine::obs::ObsConfig;
        let e = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_obs(ObsConfig::full()),
        );
        let truth = State::from_subjects([3, 7]);
        let mut s = ShardedSession::new(
            &e,
            distinct_risks(),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default(),
            4,
        );
        assert_eq!(s.cohort(), None);
        s.set_cohort(42);
        assert_eq!(s.cohort(), Some(42));
        let outcome = s.run_to_classification(&e, |pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        let snap = e.obs().snapshot();
        let events: Vec<_> = snap.all_events().collect();
        let rec = e.obs();
        // Round and phase spans carry the cohort tag; the engine's own
        // stage spans (the fused rounds) share the same recorder.
        assert!(events
            .iter()
            .any(|ev| ev.kind == SpanKind::Round && ev.meta.cohort == 42));
        assert!(events.iter().any(|ev| ev.kind == SpanKind::Phase
            && ev.meta.cohort == 42
            && rec.name_of(ev.name) == "session:observe"));
        assert!(events
            .iter()
            .any(|ev| ev.kind == SpanKind::Stage && rec.name_of(ev.name).contains("fused-round")));
    }

    #[test]
    fn adaptive_switch_runs_sparse_rounds_on_the_engine() {
        use sbgt_lattice::SparseSwitch;
        let e = engine();
        let truth = State::from_subjects([3, 7]);
        let config = SbgtConfig::default().with_sparse_switch(SparseSwitch {
            max_support_fraction: 0.5,
            prune_epsilon: 1e-9,
        });
        let mut s = ShardedSession::new(
            &e,
            distinct_risks(),
            BinaryDilutionModel::perfect(),
            config,
            4,
        );
        e.metrics().clear();
        let outcome = s.run_to_classification(&e, |pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert_eq!(outcome.classification.positives(), 2);
        assert!(s.is_sparse(), "session never switched to sparse");
        assert!(s.sparse_posterior().unwrap().support() < 1 << 10);
        // Post-switch rounds ran as engine stages, tagged with the sparse
        // variant so the timeline shows the representation change.
        let jobs = e.metrics().jobs();
        let sparse_rounds = jobs
            .iter()
            .filter(|j| j.name == "fused-round:sparse")
            .count();
        assert!(sparse_rounds >= 1, "no sparse round ran on the engine");
        assert!(jobs
            .iter()
            .any(|j| matches!(j.variant, StageVariant::Sparse { .. })));
        // The switch itself ran the support-count and collect stages.
        assert!(jobs.iter().any(|j| j.name == "sparse:support"));
        assert!(jobs.iter().any(|j| j.name == "sparse:collect"));
    }

    #[test]
    fn hybrid_sharded_matches_hybrid_dense_session() {
        use sbgt_lattice::SparseSwitch;
        let e = engine();
        let truth = State::from_subjects([1, 8]);
        let switch = SparseSwitch {
            max_support_fraction: 0.5,
            prune_epsilon: 1e-9,
        };
        let model = BinaryDilutionModel::perfect();
        let mut sharded = ShardedSession::new(
            &e,
            distinct_risks(),
            model,
            SbgtConfig::default().with_sparse_switch(switch),
            4,
        );
        let so = sharded.run_to_classification(&e, |pool| truth.intersects(pool));
        let mut dense = crate::SbgtSession::new(
            distinct_risks(),
            model,
            SbgtConfig::default().serial().with_sparse_switch(switch),
        );
        let do_ = dense.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(
            so.classification.statuses, do_.classification.statuses,
            "hybrid sharded and hybrid dense must classify identically"
        );
        assert!(sharded.is_sparse() && dense.is_sparse());
        for (a, b) in so.marginals.iter().zip(&do_.marginals) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_snapshot_restore_is_bit_exact() {
        use sbgt_lattice::SparseSwitch;
        let e = engine();
        let truth = State::from_subjects([2, 6]);
        let config = SbgtConfig::default().with_sparse_switch(SparseSwitch {
            max_support_fraction: 0.5,
            prune_epsilon: 1e-9,
        });
        let model = BinaryDilutionModel::pcr_like();
        let mut live = ShardedSession::new(&e, distinct_risks(), model, config, 4);
        while !live.is_sparse() {
            assert!(
                matches!(
                    live.run_round(&e, |pool| truth.intersects(pool)),
                    RoundStep::Progressed
                ),
                "classified before switching"
            );
        }
        let snap = live.snapshot();
        assert!(snap.sparse.is_some());
        assert!(snap.shards.is_empty());
        let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        let mut restored = ShardedSession::restore(&decoded, model, config).unwrap();
        assert!(restored.is_sparse());
        {
            let (a, b) = (
                live.sparse_posterior().unwrap(),
                restored.sparse_posterior().unwrap(),
            );
            assert_eq!(a.pruned_mass().to_bits(), b.pruned_mass().to_bits());
            for ((sa, pa), (sb, pb)) in a.entries().iter().zip(b.entries()) {
                assert_eq!(sa, sb);
                assert_eq!(pa.to_bits(), pb.to_bits());
            }
        }
        let expected = live.run_to_classification(&e, |pool| truth.intersects(pool));
        let outcome = restored.run_to_classification(&e, |pool| truth.intersects(pool));
        assert_eq!(outcome, expected);
        for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_restore_is_bit_exact_mid_run() {
        let e = engine();
        let truth = State::from_subjects([1, 8]);
        let model = BinaryDilutionModel::pcr_like();
        let config = SbgtConfig::default();
        // Reference: run uninterrupted, recording every selection.
        let mut reference = ShardedSession::new(&e, distinct_risks(), model, config, 4);
        let mut ref_pools = Vec::new();
        let expected = reference.run_to_classification(&e, |pool| {
            ref_pools.push(pool);
            truth.intersects(pool)
        });
        // Candidate: snapshot after three rounds (pending_selection banked),
        // round-trip the byte codec, restore, and finish.
        let mut live = ShardedSession::new(&e, distinct_risks(), model, config, 4);
        for _ in 0..3 {
            assert!(matches!(
                live.run_round(&e, |pool| truth.intersects(pool)),
                RoundStep::Progressed
            ));
        }
        let snap = live.snapshot();
        assert!(snap.pending_selection.is_some(), "fused rounds bank masses");
        let bytes = snap.to_bytes();
        let decoded = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap);
        drop(live);
        let mut restored = ShardedSession::restore(&decoded, model, config).unwrap();
        let mut pools = restored
            .history()
            .iter()
            .map(|(p, _)| *p)
            .collect::<Vec<_>>();
        let outcome = restored.run_to_classification(&e, |pool| {
            pools.push(pool);
            truth.intersects(pool)
        });
        assert_eq!(pools, ref_pools, "selection trajectory must be identical");
        assert_eq!(outcome, expected);
        for (a, b) in outcome.marginals.iter().zip(&expected.marginals) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact marginals");
        }
    }
}
