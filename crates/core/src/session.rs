//! The SBGT session: the framework's public driving surface.

use std::sync::Arc;

use sbgt_engine::obs::{SpanKind, SpanMeta, SpanRecorder, TraceLevel};

use sbgt_bayes::{
    analyze, analyze_par, classify_marginals, update_dense, update_dense_par, update_sparse,
    BayesError, CohortClassification, Observation, PosteriorReport, Prior,
};
use sbgt_lattice::kernels::par_marginals;
use sbgt_lattice::{DensePosterior, HybridPosterior, SparsePosterior, State};
use sbgt_response::BinaryOutcomeModel;
use sbgt_select::{
    select_halving_global, select_halving_global_par, select_halving_prefix,
    select_halving_prefix_par, select_halving_prefix_sparse, select_information_gain,
    select_stage_lookahead_fused, select_stage_lookahead_par, select_stage_lookahead_sparse,
    InfoSelection, LookaheadConfig, PlanHandle, SelectError, Selection,
};

use crate::config::{ExecMode, SbgtConfig};
use crate::report::SessionOutcome;
use crate::snapshot::{SessionSnapshot, SnapshotError, SparseSnapshot};

/// Result of driving one BHA round (select → lab → observe).
///
/// Both session types implement `run_to_classification` as a loop over
/// `run_round`, so a service that steps cohorts one round at a time — to
/// interleave many cohorts fairly on one engine — reproduces the batch
/// loop's trajectory **by construction**.
#[derive(Debug)]
pub enum RoundStep {
    /// The session advanced one stage and is still unclassified.
    Progressed,
    /// The run ended: classified, stage cap hit, no admissible pool, or an
    /// impossible observation.
    Finished(SessionOutcome),
}

impl RoundStep {
    /// The final outcome, if this step ended the run.
    pub fn finished(self) -> Option<SessionOutcome> {
        match self {
            RoundStep::Progressed => None,
            RoundStep::Finished(outcome) => Some(outcome),
        }
    }
}

/// A live Bayesian group-testing session over one cohort.
///
/// The session owns the lattice posterior and exposes the paper's
/// three operation classes (`observe` = lattice manipulation,
/// `select_next`/`select_stage` = test selection, `report` = statistical
/// analysis), each dispatching to serial or parallel kernels per the
/// configured [`ExecMode`].
///
/// The posterior starts dense; when [`SbgtConfig::sparse_switch`] is
/// configured, the session converts it to the pruned sparse representation
/// once evidence concentrates the retained support below the configured
/// fraction of `2^N`, and every subsequent round runs the `O(support)`
/// sparse kernels instead of the `Θ(2^N)` dense ones.
pub struct SbgtSession<M> {
    posterior: HybridPosterior,
    model: M,
    config: SbgtConfig,
    history: Vec<(State, bool)>,
    stages: usize,
    /// Telemetry sink and the cohort id stamped on every span. `None`
    /// (the default) records nothing; [`Self::attach_obs`] opts in.
    obs: Option<(Arc<SpanRecorder>, u64)>,
    /// Memoized selection plan. `None` (the default) selects live every
    /// round; [`Self::attach_plan`] opts in.
    plan: Option<PlanHandle>,
}

impl<M: BinaryOutcomeModel> SbgtSession<M> {
    /// Open a session from a prior and an assay model.
    pub fn new(prior: Prior, model: M, config: SbgtConfig) -> Self {
        SbgtSession {
            posterior: HybridPosterior::new_dense(prior.to_dense()),
            model,
            config,
            history: Vec::new(),
            stages: 0,
            obs: None,
            plan: None,
        }
    }

    /// Attach a telemetry recorder; every subsequent round emits
    /// `session:*` spans tagged with `cohort`. Sessions driven by an
    /// engine-backed service share the engine's recorder so all lanes
    /// land in one trace.
    pub fn attach_obs(&mut self, recorder: Arc<SpanRecorder>, cohort: u64) {
        self.obs = Some((recorder, cohort));
    }

    /// Whether a telemetry recorder is attached (used for lazy attach).
    pub fn has_obs(&self) -> bool {
        self.obs.is_some()
    }

    /// Attach a memoized selection plan (see `sbgt_select::plancache`).
    /// Rounds whose observation history the plan covers replay the cached
    /// pool selections with zero search work; rounds that fall off the
    /// tree select live and extend it in place. The caller is responsible
    /// for the key discipline: the handle's [`sbgt_select::PlanKey`] must
    /// have been built from this session's exact prior risks, model,
    /// classification rule, stage width, pool cap, and execution lineage —
    /// then cached and live selections are bit-for-bit identical.
    pub fn attach_plan(&mut self, plan: PlanHandle) {
        self.plan = Some(plan);
    }

    /// Whether a selection plan is attached.
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// The attached recorder and cohort id when recording is live at
    /// `min`, cloned so span guards never borrow `self`.
    fn obs_at(&self, min: TraceLevel) -> Option<(Arc<SpanRecorder>, u64)> {
        match &self.obs {
            Some((rec, cohort)) if rec.enabled_at(min) => Some((Arc::clone(rec), *cohort)),
            _ => None,
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.posterior.n_subjects()
    }

    /// The session configuration.
    pub fn config(&self) -> &SbgtConfig {
        &self.config
    }

    /// Borrow the current dense posterior (normalized after every
    /// observation).
    ///
    /// # Panics
    /// Panics once the session has taken the adaptive dense→sparse switch
    /// (only possible when [`SbgtConfig::sparse_switch`] is configured);
    /// check [`Self::is_sparse`] or use [`Self::sparse_posterior`] then.
    pub fn posterior(&self) -> &DensePosterior {
        self.posterior
            .as_dense()
            .expect("posterior has switched to sparse; use sparse_posterior()")
    }

    /// Whether the adaptive dense→sparse switch has happened.
    pub fn is_sparse(&self) -> bool {
        self.posterior.is_sparse()
    }

    /// The sparse posterior, once the session has switched.
    pub fn sparse_posterior(&self) -> Option<&SparsePosterior> {
        self.posterior.as_sparse()
    }

    /// Every `(pool, outcome)` observed so far, in order.
    pub fn history(&self) -> &[(State, bool)] {
        &self.history
    }

    /// Number of completed stages (calls to `observe_stage` /
    /// single-observation stages).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Current posterior marginals.
    pub fn marginals(&self) -> Vec<f64> {
        match &self.posterior {
            HybridPosterior::Dense(d) => match self.config.exec {
                ExecMode::Serial => d.marginals(),
                ExecMode::Parallel(cfg) => par_marginals(d, cfg),
            },
            HybridPosterior::Sparse(s) => s.marginals(),
        }
    }

    /// Classification under the configured rule.
    pub fn classify(&self) -> CohortClassification {
        classify_marginals(&self.marginals(), self.config.rule)
    }

    /// One posterior update through whichever representation is live, plus
    /// the history append. Shared by [`Self::observe`] and
    /// [`Self::observe_stage`].
    fn apply_observation(&mut self, pool: State, outcome: bool) -> Result<f64, BayesError> {
        let obs = Observation::new(pool, outcome);
        let SbgtSession {
            posterior,
            model,
            config,
            ..
        } = self;
        let z = match posterior {
            HybridPosterior::Dense(d) => match config.exec {
                ExecMode::Serial => update_dense(d, model, &obs)?,
                ExecMode::Parallel(cfg) => update_dense_par(d, model, &obs, cfg)?,
            },
            HybridPosterior::Sparse(s) => {
                let eps = config.sparse_switch.map(|w| w.prune_epsilon).unwrap_or(0.0);
                update_sparse(s, model, &obs, eps)?
            }
        };
        self.history.push((pool, outcome));
        Ok(z)
    }

    /// Take the dense→sparse switch if configured and the support now
    /// qualifies (checked once per stage, after its updates land).
    fn maybe_switch(&mut self) {
        if let Some(switch) = self.config.sparse_switch {
            self.posterior.maybe_switch(&switch);
        }
    }

    /// Ingest one observed pooled test (one stage).
    /// Returns the model evidence of the observation.
    pub fn observe(&mut self, pool: State, outcome: bool) -> Result<f64, BayesError> {
        let z = self.apply_observation(pool, outcome)?;
        self.stages += 1;
        self.maybe_switch();
        Ok(z)
    }

    /// Ingest a whole stage of observations (look-ahead workflows run
    /// several pools per lab round). Counts as one stage.
    pub fn observe_stage(&mut self, observations: &[(State, bool)]) -> Result<(), BayesError> {
        for &(pool, outcome) in observations {
            self.apply_observation(pool, outcome)?;
        }
        if !observations.is_empty() {
            self.stages += 1;
            self.maybe_switch();
        }
        Ok(())
    }

    /// Unclassified subjects ordered by ascending marginal — the candidate
    /// ordering for the halving search.
    pub fn eligible_order(&self) -> Vec<usize> {
        let marginals = self.marginals();
        let classification = classify_marginals(&marginals, self.config.rule);
        Self::order_from(&marginals, &classification)
    }

    /// `eligible_order` given already-computed marginals and their
    /// classification, so one marginals pass can feed classification,
    /// ordering, and selection in a single round.
    fn order_from(marginals: &[f64], classification: &CohortClassification) -> Vec<usize> {
        let mut eligible = classification.undetermined();
        eligible.sort_by(|&a, &b| marginals[a].total_cmp(&marginals[b]).then(a.cmp(&b)));
        eligible
    }

    /// Bayesian Halving Algorithm: the next pool to test, or `None` when
    /// every subject is already classified.
    pub fn select_next(&self) -> Option<Selection> {
        self.select_next_with_order(&self.eligible_order())
    }

    fn select_next_with_order(&self, order: &[usize]) -> Option<Selection> {
        match &self.posterior {
            HybridPosterior::Dense(d) => match self.config.exec {
                ExecMode::Serial => select_halving_prefix(d, order, self.config.max_pool_size),
                ExecMode::Parallel(cfg) => {
                    select_halving_prefix_par(d, order, self.config.max_pool_size, cfg)
                }
            },
            HybridPosterior::Sparse(s) => {
                select_halving_prefix_sparse(s, order, self.config.max_pool_size)
            }
        }
    }

    /// Globally optimal Bayesian halving over **all** admissible pools of
    /// the unclassified subjects, priced by one zeta transform
    /// (`O(N · 2^N)` instead of the prefix rule's `O(2^N)`, exact instead
    /// of near-optimal). `None` when every subject is classified.
    pub fn select_next_global(&self) -> Option<Selection> {
        let order = self.eligible_order();
        let dense = self.dense_view();
        match self.config.exec {
            ExecMode::Serial => select_halving_global(&dense, &order, self.config.max_pool_size),
            ExecMode::Parallel(_) => {
                select_halving_global_par(&dense, &order, self.config.max_pool_size)
            }
        }
    }

    /// The dense posterior, materialized from the sparse entries when the
    /// session has switched — for the zeta-transform and exact-information
    /// rules, which have no sparse counterpart.
    fn dense_view(&self) -> std::borrow::Cow<'_, DensePosterior> {
        match &self.posterior {
            HybridPosterior::Dense(d) => std::borrow::Cow::Borrowed(d),
            HybridPosterior::Sparse(s) => std::borrow::Cow::Owned(s.to_dense()),
        }
    }

    /// Information-gain refinement: score the `shortlist` best halving
    /// prefixes by exact expected entropy reduction and return the most
    /// informative (see `sbgt_select::information`). `None` when the
    /// cohort is classified.
    pub fn select_next_informative(&self, shortlist: usize) -> Option<InfoSelection> {
        let order = self.eligible_order();
        select_information_gain(
            &self.dense_view(),
            &self.model,
            &order,
            self.config.max_pool_size,
            shortlist,
        )
    }

    /// Look-ahead stage selection: up to `width` pools for one lab round,
    /// on the **branch-fused** fast path (serial or rayon per the
    /// configured [`ExecMode`]) — no branch posterior is materialized.
    /// Rejects a zero `width` with [`SelectError::InvalidArgument`].
    pub fn select_stage(&self, width: usize) -> Result<Vec<Selection>, SelectError> {
        self.select_stage_with_order(width, &self.eligible_order())
    }

    fn select_stage_with_order(
        &self,
        width: usize,
        order: &[usize],
    ) -> Result<Vec<Selection>, SelectError> {
        let cfg = LookaheadConfig {
            width,
            max_pool_size: self.config.max_pool_size,
        };
        match &self.posterior {
            HybridPosterior::Dense(d) => match self.config.exec {
                ExecMode::Serial => select_stage_lookahead_fused(d, &self.model, order, &cfg),
                ExecMode::Parallel(pc) => {
                    select_stage_lookahead_par(d, &self.model, order, &cfg, pc)
                }
            },
            HybridPosterior::Sparse(s) => {
                select_stage_lookahead_sparse(s, &self.model, order, &cfg)
            }
        }
    }

    /// Full statistical readout (marginals, entropy, MAP, top-k, rank
    /// distribution) using the configured kernels.
    pub fn report(&self, top_k: usize) -> PosteriorReport {
        let dense = self.dense_view();
        match self.config.exec {
            ExecMode::Serial => analyze(&dense, top_k),
            ExecMode::Parallel(cfg) => analyze_par(&dense, top_k, cfg),
        }
    }

    /// Drive the session to classification against a lab oracle: `lab` is
    /// called with each selected pool and must return the assay outcome.
    /// Stops when the cohort is classified, the stage cap is reached, or an
    /// observation is impossible under the model.
    ///
    /// The number of pools per stage comes from the
    /// [`SbgtConfig::stage_width`] knob: `1` runs the classic one-test
    /// BHA loop; wider stages run look-ahead selection on the branch-fused
    /// fast path.
    pub fn run_to_classification(&mut self, mut lab: impl FnMut(State) -> bool) -> SessionOutcome {
        loop {
            if let RoundStep::Finished(outcome) = self.run_round(&mut lab) {
                return outcome;
            }
        }
    }

    /// Drive exactly one round: classify, select the stage's pools, run
    /// them through `lab`, and ingest the outcomes. The unit a multi-cohort
    /// service schedules — [`Self::run_to_classification`] is a loop over
    /// this, so round-stepped and batch trajectories are identical.
    pub fn run_round(&mut self, mut lab: impl FnMut(State) -> bool) -> RoundStep {
        let Some((rec, cohort)) = self.obs_at(TraceLevel::Spans) else {
            return self.run_round_inner(&mut lab);
        };
        let start = rec.now_ns();
        let step = self.run_round_inner(&mut lab);
        let name = rec.intern("session:round");
        let mut meta = SpanMeta::for_cohort(cohort);
        meta.failed = matches!(&step, RoundStep::Finished(o) if !o.classification.is_terminal());
        rec.record_span_ending_now(SpanKind::Round, name, start, meta);
        step
    }

    /// Record `name` as a `Phase` span covering `start..now` when phase
    /// tracing ([`TraceLevel::Full`]) is live.
    fn obs_phase(&self, name: &str, start: Option<u64>) {
        if let (Some((rec, cohort)), Some(start)) = (self.obs_at(TraceLevel::Full), start) {
            let name = rec.intern(name);
            rec.record_span_ending_now(SpanKind::Phase, name, start, SpanMeta::for_cohort(cohort));
        }
    }

    /// Timestamp for the next [`Self::obs_phase`] call, `None` when phase
    /// tracing is off (so untraced rounds never read the clock).
    fn obs_phase_start(&self) -> Option<u64> {
        self.obs_at(TraceLevel::Full).map(|(rec, _)| rec.now_ns())
    }

    fn run_round_inner(&mut self, lab: &mut impl FnMut(State) -> bool) -> RoundStep {
        let stage_width = self.config.stage_width;
        // One marginals pass feeds classification, the candidate
        // ordering, and selection for the whole round.
        let t = self.obs_phase_start();
        let marginals = self.marginals();
        let classification = classify_marginals(&marginals, self.config.rule);
        self.obs_phase("session:marginals", t);
        if classification.is_terminal() || self.stages >= self.config.max_stages {
            return RoundStep::Finished(self.outcome(classification));
        }
        let t = self.obs_phase_start();
        // A plan hit replays the memoized selections for this exact
        // observation history; a miss selects live and extends the tree.
        let selections = match self.plan.as_ref().and_then(|p| p.lookup(&self.history)) {
            Some(cached) => cached,
            None => {
                let order = Self::order_from(&marginals, &classification);
                let live = if stage_width <= 1 {
                    self.select_next_with_order(&order)
                        .map(|s| vec![s])
                        .unwrap_or_default()
                } else {
                    self.select_stage_with_order(stage_width, &order)
                        .expect("stage width validated by SbgtConfig")
                };
                if let Some(plan) = &self.plan {
                    plan.extend(&self.history, &live);
                }
                live
            }
        };
        self.obs_phase("session:select", t);
        if selections.is_empty() {
            return RoundStep::Finished(self.outcome(classification));
        }
        let t = self.obs_phase_start();
        let observations: Vec<(State, bool)> =
            selections.iter().map(|s| (s.pool, lab(s.pool))).collect();
        if self.observe_stage(&observations).is_err() {
            self.obs_phase("session:observe", t);
            return RoundStep::Finished(self.outcome(self.classify()));
        }
        self.obs_phase("session:observe", t);
        RoundStep::Progressed
    }

    /// Capture the full session state for checkpoint/restore. A dense
    /// posterior is stored as one shard of exact (normalized) values; a
    /// post-switch sparse posterior stores its retained entries and pruned
    /// mass instead. [`Self::restore`] reproduces the session bit-for-bit
    /// either way.
    pub fn snapshot(&self) -> SessionSnapshot {
        let (shards, total, sparse) = match &self.posterior {
            HybridPosterior::Dense(d) => (vec![d.probs().to_vec()], 1.0, None),
            HybridPosterior::Sparse(s) => (
                Vec::new(),
                s.total(),
                Some(SparseSnapshot {
                    entries: s.entries().to_vec(),
                    pruned_mass: s.pruned_mass(),
                }),
            ),
        };
        SessionSnapshot {
            n_subjects: self.n_subjects(),
            shards,
            total,
            history: self.history.clone(),
            stages: self.stages,
            marginals: Vec::new(),
            pending_selection: None,
            sparse,
            approx: None,
        }
    }

    /// Rehydrate a session from a snapshot. The model and config are not
    /// part of the snapshot (they are the cohort's static spec) and are
    /// supplied by the caller; posterior values are restored exactly, so
    /// selections and classifications continue bit-for-bit.
    pub fn restore(
        snapshot: &SessionSnapshot,
        model: M,
        config: SbgtConfig,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate()?;
        if snapshot.approx.is_some() {
            return Err(SnapshotError::Corrupt(
                "approx snapshot cannot restore an exact session".into(),
            ));
        }
        let posterior = match &snapshot.sparse {
            Some(sp) => HybridPosterior::Sparse(SparsePosterior::from_parts(
                snapshot.n_subjects,
                sp.entries.clone(),
                sp.pruned_mass,
            )),
            None => {
                let probs: Vec<f64> = snapshot.shards.iter().flatten().copied().collect();
                HybridPosterior::Dense(DensePosterior::from_probs(snapshot.n_subjects, probs))
            }
        };
        Ok(SbgtSession {
            posterior,
            model,
            config,
            history: snapshot.history.clone(),
            stages: snapshot.stages,
            obs: None,
            plan: None,
        })
    }

    fn outcome(&self, classification: CohortClassification) -> SessionOutcome {
        SessionOutcome {
            tests: self.history.len(),
            stages: self.stages,
            subjects: self.n_subjects(),
            classification,
            marginals: self.marginals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgt_lattice::kernels::ParConfig;
    use sbgt_response::BinaryDilutionModel;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn session(exec: ExecMode) -> SbgtSession<BinaryDilutionModel> {
        let prior = Prior::from_risks(&[0.02, 0.05, 0.01, 0.1, 0.03, 0.08, 0.02, 0.04]);
        SbgtSession::new(
            prior,
            BinaryDilutionModel::pcr_like(),
            SbgtConfig {
                exec,
                ..SbgtConfig::default()
            },
        )
    }

    #[test]
    fn serial_and_parallel_sessions_agree() {
        let mut a = session(ExecMode::Serial);
        let mut b = session(ExecMode::Parallel(ParConfig {
            chunk_len: 17,
            threshold: 0,
        }));
        let pool = State::from_subjects([0, 1, 2, 3]);
        let za = a.observe(pool, true).unwrap();
        let zb = b.observe(pool, true).unwrap();
        assert!(close(za, zb));
        for (x, y) in a.marginals().iter().zip(b.marginals()) {
            assert!(close(*x, y));
        }
        let sa = a.select_next().unwrap();
        let sb = b.select_next().unwrap();
        assert_eq!(sa.pool, sb.pool);
        let ra = a.report(3);
        let rb = b.report(3);
        assert!(close(ra.entropy, rb.entropy));
        assert_eq!(ra.map_state.0, rb.map_state.0);
    }

    #[test]
    fn history_and_stage_counting() {
        let mut s = session(ExecMode::Serial);
        s.observe(State::from_subjects([0]), false).unwrap();
        s.observe_stage(&[
            (State::from_subjects([1]), false),
            (State::from_subjects([2]), false),
        ])
        .unwrap();
        s.observe_stage(&[]).unwrap(); // empty stage is a no-op
        assert_eq!(s.history().len(), 3);
        assert_eq!(s.stages(), 2);
    }

    #[test]
    fn run_to_classification_with_perfect_oracle() {
        let prior = Prior::flat(10, 0.05);
        let truth = State::from_subjects([4, 9]);
        let mut s = SbgtSession::new(
            prior,
            BinaryDilutionModel::perfect(),
            SbgtConfig::default().serial(),
        );
        let outcome = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert_eq!(outcome.classification.positives(), 2);
        assert!(outcome.classification.statuses[4] == sbgt_bayes::SubjectStatus::Positive);
        assert!(outcome.classification.statuses[9] == sbgt_bayes::SubjectStatus::Positive);
        assert_eq!(outcome.tests, s.history().len());
        assert!(outcome.tests < 10, "group testing must beat individual");
    }

    #[test]
    fn run_with_stage_width_uses_fewer_stages() {
        let truth = State::from_subjects([1, 6]);
        let mk = |width: usize| {
            SbgtSession::new(
                Prior::flat(10, 0.08),
                BinaryDilutionModel::pcr_like(),
                SbgtConfig::default().serial().with_stage_width(width),
            )
        };
        let mut narrow = mk(1);
        let o1 = narrow.run_to_classification(|pool| truth.intersects(pool));
        let mut wide = mk(3);
        let o2 = wide.run_to_classification(|pool| truth.intersects(pool));
        assert!(o1.classification.is_terminal());
        assert!(o2.classification.is_terminal());
        assert!(
            o2.stages <= o1.stages,
            "wide {} vs narrow {}",
            o2.stages,
            o1.stages
        );
    }

    #[test]
    fn round_stepping_matches_batch_run() {
        let truth = State::from_subjects([4, 9]);
        let mk = || {
            SbgtSession::new(
                Prior::from_risks(&[0.03, 0.07, 0.02, 0.09, 0.05, 0.04, 0.08, 0.06, 0.025, 0.045]),
                BinaryDilutionModel::perfect(),
                SbgtConfig::default().serial(),
            )
        };
        let mut batch = mk();
        let batch_outcome = batch.run_to_classification(|pool| truth.intersects(pool));
        let mut stepped = mk();
        let stepped_outcome = loop {
            if let Some(o) = stepped.run_round(|pool| truth.intersects(pool)).finished() {
                break o;
            }
        };
        assert_eq!(stepped_outcome.tests, batch_outcome.tests);
        assert_eq!(stepped.history(), batch.history());
        assert_eq!(
            stepped_outcome.classification.statuses,
            batch_outcome.classification.statuses
        );
        for (a, b) in stepped_outcome
            .marginals
            .iter()
            .zip(&batch_outcome.marginals)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_restore_is_bit_exact_mid_run() {
        let truth = State::from_subjects([1, 6]);
        let mut s = SbgtSession::new(
            Prior::from_risks(&[0.02, 0.05, 0.01, 0.1, 0.03, 0.08, 0.02, 0.04]),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default().serial(),
        );
        // Advance a few rounds, snapshot, then drive both copies to the end.
        for _ in 0..3 {
            if s.run_round(|pool| truth.intersects(pool))
                .finished()
                .is_some()
            {
                break;
            }
        }
        let snap = s.snapshot();
        let mut restored =
            SbgtSession::restore(&snap, BinaryDilutionModel::pcr_like(), *s.config()).unwrap();
        assert_eq!(restored.history(), s.history());
        assert_eq!(restored.stages(), s.stages());
        for (a, b) in restored
            .posterior()
            .probs()
            .iter()
            .zip(s.posterior().probs())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let original = s.run_to_classification(|pool| truth.intersects(pool));
        let resumed = restored.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(resumed.tests, original.tests);
        assert_eq!(
            resumed.classification.statuses,
            original.classification.statuses
        );
        for (a, b) in resumed.marginals.iter().zip(&original.marginals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The byte codec preserves the trajectory too.
        let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn select_next_none_when_classified() {
        let prior = Prior::flat(4, 0.02);
        let mut s = SbgtSession::new(
            prior,
            BinaryDilutionModel::perfect(),
            SbgtConfig::default().serial(),
        );
        // One all-negative pool classifies everyone at these thresholds.
        s.observe(State::from_subjects([0, 1, 2, 3]), false)
            .unwrap();
        assert!(s.classify().is_terminal());
        assert!(s.select_next().is_none());
    }

    #[test]
    fn global_selection_is_no_worse_than_prefix() {
        let mut s = session(ExecMode::Serial);
        s.observe(State::from_subjects([0, 1, 2]), true).unwrap();
        let prefix = s.select_next().unwrap();
        let global = s.select_next_global().unwrap();
        assert!(global.distance <= prefix.distance + 1e-12);
        // And the parallel path agrees with the serial one.
        let mut p = session(ExecMode::Parallel(ParConfig {
            chunk_len: 17,
            threshold: 0,
        }));
        p.observe(State::from_subjects([0, 1, 2]), true).unwrap();
        let global_par = p.select_next_global().unwrap();
        assert_eq!(global.pool, global_par.pool);
    }

    #[test]
    fn informative_selection_bounds() {
        let mut s = session(ExecMode::Serial);
        s.observe(State::from_subjects([0, 1]), true).unwrap();
        let sel = s.select_next_informative(3).unwrap();
        assert!(sel.information_gain >= 0.0);
        assert!(sel.information_gain <= 2f64.ln() + 1e-12);
        assert!(!sel.pool.is_empty());
    }

    #[test]
    fn select_stage_dispatches_and_validates() {
        let mut a = session(ExecMode::Serial);
        let mut b = session(ExecMode::Parallel(ParConfig {
            chunk_len: 17,
            threshold: 0,
        }));
        let pool = State::from_subjects([0, 1, 2]);
        a.observe(pool, true).unwrap();
        b.observe(pool, true).unwrap();
        let sa = a.select_stage(3).unwrap();
        let sb = b.select_stage(3).unwrap();
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(x.pool, y.pool);
        }
        // Zero width is a typed error, not a panic.
        assert!(matches!(
            a.select_stage(0),
            Err(SelectError::InvalidArgument(_))
        ));
    }

    #[test]
    fn attached_recorder_captures_round_and_phase_spans() {
        use sbgt_engine::obs::{ObsConfig, SpanKind, SpanRecorder};
        let truth = State::from_subjects([1, 3]);
        let mut s = SbgtSession::new(
            Prior::flat(6, 0.1),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default().serial(),
        );
        assert!(!s.has_obs());
        let rec = Arc::new(SpanRecorder::new(ObsConfig::full()));
        s.attach_obs(Arc::clone(&rec), 7);
        assert!(s.has_obs());
        let outcome = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        let snap = rec.snapshot();
        let events: Vec<_> = snap.all_events().collect();
        let rounds = events.iter().filter(|e| e.kind == SpanKind::Round).count();
        assert!(rounds >= 1, "each round must emit a Round span");
        // Every span carries the attached cohort id, and Full level also
        // captured the per-phase breakdown.
        assert!(events.iter().all(|e| e.meta.cohort == 7));
        for phase in ["session:marginals", "session:select", "session:observe"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.kind == SpanKind::Phase && rec.name_of(e.name) == phase),
                "missing phase span {phase}"
            );
        }
    }

    #[test]
    fn adaptive_switch_happens_mid_run_and_still_classifies() {
        use sbgt_lattice::SparseSwitch;
        let truth = State::from_subjects([2, 7]);
        let mut s = SbgtSession::new(
            Prior::flat(10, 0.05),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default()
                .serial()
                .with_sparse_switch(SparseSwitch {
                    max_support_fraction: 0.5,
                    prune_epsilon: 1e-9,
                }),
        );
        assert!(!s.is_sparse());
        let outcome = s.run_to_classification(|pool| truth.intersects(pool));
        assert!(outcome.classification.is_terminal());
        assert_eq!(outcome.classification.positives(), 2);
        // A perfect-model run collapses support fast; the switch must have
        // fired well before classification at a 50% threshold.
        assert!(s.is_sparse(), "session never switched to sparse");
        let sp = s.sparse_posterior().unwrap();
        assert!(sp.support() < 1 << 10);
        // Conservation holds on the live sparse posterior.
        assert!((sp.total() + sp.pruned_mass() - 1.0).abs() < 1e-9);
        // Dense-only views still work by materializing.
        let report = s.report(2);
        assert!(report.entropy >= 0.0);
    }

    #[test]
    fn sparse_snapshot_restore_is_bit_exact() {
        use sbgt_lattice::SparseSwitch;
        let truth = State::from_subjects([1, 6]);
        let mk = || {
            SbgtSession::new(
                Prior::flat(9, 0.06),
                BinaryDilutionModel::pcr_like(),
                SbgtConfig::default()
                    .serial()
                    .with_sparse_switch(SparseSwitch {
                        max_support_fraction: 0.5,
                        prune_epsilon: 1e-9,
                    }),
            )
        };
        let mut s = mk();
        // Drive until the switch fires (or the run ends, which would be a
        // test bug at these thresholds).
        while !s.is_sparse() {
            assert!(
                s.run_round(|pool| truth.intersects(pool))
                    .finished()
                    .is_none(),
                "classified before switching"
            );
        }
        let snap = s.snapshot();
        assert!(snap.sparse.is_some());
        // Byte codec round-trips the sparse section bit-for-bit.
        let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        let mut restored =
            SbgtSession::restore(&decoded, BinaryDilutionModel::pcr_like(), *s.config()).unwrap();
        assert!(restored.is_sparse());
        let (a, b) = (
            s.sparse_posterior().unwrap(),
            restored.sparse_posterior().unwrap(),
        );
        assert_eq!(a.pruned_mass().to_bits(), b.pruned_mass().to_bits());
        assert_eq!(a.entries().len(), b.entries().len());
        for ((sa, pa), (sb, pb)) in a.entries().iter().zip(b.entries()) {
            assert_eq!(sa, sb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        // Both copies finish identically.
        let original = s.run_to_classification(|pool| truth.intersects(pool));
        let resumed = restored.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(resumed.tests, original.tests);
        assert_eq!(
            resumed.classification.statuses,
            original.classification.statuses
        );
        for (x, y) in resumed.marginals.iter().zip(&original.marginals) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "switched to sparse")]
    fn dense_accessor_panics_after_switch() {
        use sbgt_lattice::SparseSwitch;
        let truth = State::from_subjects([0]);
        let mut s = SbgtSession::new(
            Prior::flat(6, 0.05),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default()
                .serial()
                .with_sparse_switch(SparseSwitch {
                    max_support_fraction: 1.0,
                    prune_epsilon: 1e-9,
                }),
        );
        // With the threshold at the whole lattice, the first informative
        // observation triggers the switch.
        let _ = s.run_round(|pool| truth.intersects(pool));
        assert!(s.is_sparse());
        let _ = s.posterior();
    }

    #[test]
    fn plan_cache_replay_is_bit_exact() {
        use sbgt_select::{PlanCache, PlanKey, PlanLineage};
        let risks = [0.03, 0.07, 0.02, 0.09, 0.05, 0.04, 0.08, 0.06];
        let truth = State::from_subjects([1, 6]);
        let config = SbgtConfig::default().serial().with_stage_width(2);
        let mk = || {
            SbgtSession::new(
                Prior::from_risks(&risks),
                BinaryDilutionModel::pcr_like(),
                config,
            )
        };
        let key = || {
            PlanKey::new(
                &risks,
                &BinaryDilutionModel::pcr_like(),
                &config.rule,
                config.stage_width,
                config.max_pool_size,
                None,
                PlanLineage::DenseSerial,
            )
        };
        let mut live = mk();
        let reference = live.run_to_classification(|pool| truth.intersects(pool));

        let cache = PlanCache::new(1024);
        let mut warming = mk();
        warming.attach_plan(cache.handle(key()));
        assert!(warming.has_plan());
        let warmed = warming.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(warming.history(), live.history(), "warming run ≡ live");
        let after_warm = cache.stats();
        assert!(after_warm.extends > 0, "warming run must extend the tree");

        // Same config replayed: every select step hits the tree, and the
        // whole trajectory is bit-for-bit the live one.
        let mut replay = mk();
        replay.attach_plan(cache.handle(key()));
        let replayed = replay.run_to_classification(|pool| truth.intersects(pool));
        assert_eq!(replay.history(), live.history(), "replay ≡ live");
        assert_eq!(
            cache.stats().misses,
            after_warm.misses,
            "replay never misses"
        );
        assert!(cache.stats().hits > after_warm.hits);
        for (a, b) in replayed
            .marginals
            .iter()
            .chain(&warmed.marginals)
            .zip(reference.marginals.iter().chain(&reference.marginals))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            replayed.classification.statuses,
            reference.classification.statuses
        );
    }

    #[test]
    fn impossible_observation_propagates() {
        let mut s = SbgtSession::new(
            Prior::flat(3, 0.1),
            BinaryDilutionModel::perfect(),
            SbgtConfig::default().serial(),
        );
        let pool = State::from_subjects([0, 1, 2]);
        s.observe(pool, false).unwrap();
        assert!(s.observe(pool, true).is_err());
    }
}
