//! Session checkpoint/restore — the eviction and recovery format.
//!
//! A [`SessionSnapshot`] captures the full state of a live session —
//! posterior shards (exact unnormalized values), normalization constant,
//! committed pools, round counter, fresh marginals, and the pipelined
//! selection bank — so a cohort can be evicted under memory pressure and
//! later rehydrated, or rolled back after a chaos fault kills a round,
//! **bit-for-bit**: every float is preserved exactly, so the restored
//! session selects the same pools and reaches the same classification as
//! one that never stopped.
//!
//! The struct derives the workspace's `serde` marker traits; durable
//! persistence goes through the explicit binary codec
//! ([`SessionSnapshot::to_bytes`] / [`SessionSnapshot::from_bytes`]), which
//! round-trips floats via their IEEE-754 bit patterns.

use serde::{Deserialize, Serialize};

use sbgt_lattice::State;

/// Which approximate backend produced an [`ApproxSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApproxKind {
    /// Loopy belief propagation on the specimen↔pool factor graph. BP
    /// sessions are a pure function of (prior, history) — the snapshot
    /// carries no message state, marginals are re-relaxed on restore.
    Bp,
    /// Sequential Monte Carlo particle posterior: the snapshot carries the
    /// full particle population, log-weights, and RNG state, so the restored
    /// session continues the exact sample path bit for bit.
    Particle,
}

impl ApproxKind {
    /// Stable wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            ApproxKind::Bp => 0,
            ApproxKind::Particle => 1,
        }
    }

    /// Decode a wire byte; unknown values are a typed error.
    pub fn from_byte(b: u8) -> Result<Self, SnapshotError> {
        match b {
            0 => Ok(ApproxKind::Bp),
            1 => Ok(ApproxKind::Particle),
            other => Err(SnapshotError::Corrupt(format!(
                "unknown approx kind byte {other}"
            ))),
        }
    }
}

/// Particle-population state for [`ApproxKind::Particle`] snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleBlock {
    /// Bit-words per particle: `ceil(n_subjects / 64)`.
    pub words_per_particle: usize,
    /// All particles' bit-words, concatenated: particle `p` owns
    /// `words[p*wpp .. (p+1)*wpp]`.
    pub words: Vec<u64>,
    /// One log-weight per particle (unnormalized).
    pub log_weights: Vec<f64>,
    /// The session RNG state (xoshiro256**, 4 words) at the snapshot point.
    pub rng: [u64; 4],
}

/// State of an approximate (beyond-2^N) session. Pools are recorded as
/// sorted subject-index lists because a [`State`] word cannot hold them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxSnapshot {
    /// Which backend this is.
    pub kind: ApproxKind,
    /// Committed pools: every `(sorted subject indices, outcome)` observed
    /// so far, in order.
    pub history: Vec<(Vec<u32>, bool)>,
    /// Particle population; `Some` iff `kind` is [`ApproxKind::Particle`].
    pub particles: Option<ParticleBlock>,
}

/// Error restoring or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload is inconsistent (wrong magic, truncated buffer, shard
    /// lengths that do not tile the lattice, ...); the message says how.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(msg) => write!(f, "corrupt session snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Post-switch sparse posterior state: the retained entries (exact bits,
/// sorted by state index) plus the pruned-mass record, enough to rebuild
/// the live [`sbgt_lattice::SparsePosterior`] via
/// [`sbgt_lattice::SparsePosterior::from_parts`] bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseSnapshot {
    /// Retained `(state, mass)` entries, sorted by state index.
    pub entries: Vec<(State, f64)>,
    /// Mass discarded by pruning so far (the conservation record).
    pub pruned_mass: f64,
}

/// Full state of a session at a round boundary (or mid-stage: any point
/// between observations is a valid snapshot point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Cohort size.
    pub n_subjects: usize,
    /// Posterior values per shard, exact bits. Dense sessions store one
    /// shard of normalized probabilities; sharded sessions store one vector
    /// per partition (unnormalized), preserving partition boundaries so the
    /// restored reduction order — and therefore every downstream float —
    /// is identical.
    pub shards: Vec<Vec<f64>>,
    /// Normalization constant of the sharded posterior (dense sessions
    /// store `1.0`; their posterior is kept normalized).
    pub total: f64,
    /// Committed pools: every `(pool, outcome)` observed so far, in order.
    pub history: Vec<(State, bool)>,
    /// Round counter (completed stages).
    pub stages: usize,
    /// Current marginals (sharded sessions keep them fresh; dense sessions
    /// store them for inspection but recompute on demand).
    pub marginals: Vec<f64>,
    /// Sharded sessions: the `(order, masses)` selection bank pipelined
    /// from the last fused round, if any.
    pub pending_selection: Option<(Vec<usize>, Vec<f64>)>,
    /// Post-switch sparse posterior, for sessions that have crossed the
    /// adaptive dense→sparse threshold (or always-sparse sessions). When
    /// set, `shards` is empty — the sparse entries *are* the posterior.
    pub sparse: Option<SparseSnapshot>,
    /// Approximate-backend state (BP / particle). When set, `shards`,
    /// `history`, and `sparse` are all empty — the cohort never had a `2^N`
    /// posterior or one-word pools to store.
    pub approx: Option<ApproxSnapshot>,
}

const MAGIC: &[u8; 8] = b"SBGTSNAP";
/// Format written for dense/sharded snapshots — unchanged from the first
/// release, so pre-sparse archives decode and dense snapshots stay
/// byte-identical to what older readers expect.
const VERSION_DENSE: u32 = 1;
/// Format written when the sparse section is present (appended after the
/// pending-selection section).
const VERSION_SPARSE: u32 = 2;
/// Format written when the approx section is present (appended after the
/// pending-selection section; mutually exclusive with the sparse section).
const VERSION_APPROX: u32 = 3;

impl SessionSnapshot {
    /// Number of posterior values across all shards.
    pub fn state_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Check internal consistency: shard lengths must tile the `2^N`
    /// lattice and the marginals (when present) must match the cohort size.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if let Some(ap) = &self.approx {
            return self.validate_approx(ap);
        }
        let want = 1usize
            .checked_shl(self.n_subjects as u32)
            .filter(|_| self.n_subjects <= 63)
            .ok_or_else(|| {
                SnapshotError::Corrupt(format!("cohort size {} overflows u64", self.n_subjects))
            })?;
        match &self.sparse {
            None => {
                if self.state_count() != want {
                    return Err(SnapshotError::Corrupt(format!(
                        "shards hold {} values, lattice needs {want}",
                        self.state_count()
                    )));
                }
            }
            Some(sp) => {
                if self.state_count() != 0 {
                    return Err(SnapshotError::Corrupt(format!(
                        "sparse snapshot also holds {} dense values",
                        self.state_count()
                    )));
                }
                if sp.entries.len() > want {
                    return Err(SnapshotError::Corrupt(format!(
                        "sparse support {} exceeds lattice size {want}",
                        sp.entries.len()
                    )));
                }
                for w in sp.entries.windows(2) {
                    if w[0].0.bits() >= w[1].0.bits() {
                        return Err(SnapshotError::Corrupt(format!(
                            "sparse entries unsorted or duplicated at state {}",
                            w[1].0
                        )));
                    }
                }
                if let Some((s, _)) = sp.entries.last() {
                    if s.bits() >= want as u64 {
                        return Err(SnapshotError::Corrupt(format!(
                            "sparse state {s} out of range for n={}",
                            self.n_subjects
                        )));
                    }
                }
                if !sp.pruned_mass.is_finite() {
                    return Err(SnapshotError::Corrupt(format!(
                        "non-finite pruned mass {}",
                        sp.pruned_mass
                    )));
                }
            }
        }
        if !self.marginals.is_empty() && self.marginals.len() != self.n_subjects {
            return Err(SnapshotError::Corrupt(format!(
                "{} marginals for {} subjects",
                self.marginals.len(),
                self.n_subjects
            )));
        }
        if let Some((order, masses)) = &self.pending_selection {
            if masses.len() != order.len() + 1 {
                return Err(SnapshotError::Corrupt(format!(
                    "pending selection holds {} masses for {} ordered subjects",
                    masses.len(),
                    order.len()
                )));
            }
        }
        Ok(())
    }

    /// Consistency rules for approx snapshots: no dense/sparse posterior
    /// payload may ride along, pools must be sorted in-range index lists,
    /// and a particle block must tile `count × words_per_particle` exactly.
    /// There is deliberately no `2^N` bound here — that wall is the reason
    /// these snapshots exist.
    fn validate_approx(&self, ap: &ApproxSnapshot) -> Result<(), SnapshotError> {
        if self.state_count() != 0 || self.sparse.is_some() || !self.history.is_empty() {
            return Err(SnapshotError::Corrupt(
                "approx snapshot also holds exact-posterior state".into(),
            ));
        }
        let n = self.n_subjects as u32;
        for (pool, _) in &ap.history {
            if pool.is_empty() {
                return Err(SnapshotError::Corrupt(
                    "empty pool in approx history".into(),
                ));
            }
            for w in pool.windows(2) {
                if w[0] >= w[1] {
                    return Err(SnapshotError::Corrupt(format!(
                        "approx pool unsorted or duplicated at subject {}",
                        w[1]
                    )));
                }
            }
            if pool.last().copied().unwrap_or(0) >= n {
                return Err(SnapshotError::Corrupt(format!(
                    "approx pool subject {} out of range for n={n}",
                    pool.last().unwrap()
                )));
            }
        }
        match (&ap.kind, &ap.particles) {
            (ApproxKind::Bp, Some(_)) => {
                return Err(SnapshotError::Corrupt(
                    "BP snapshot carries a particle block".into(),
                ));
            }
            (ApproxKind::Particle, None) => {
                return Err(SnapshotError::Corrupt(
                    "particle snapshot missing its particle block".into(),
                ));
            }
            (ApproxKind::Particle, Some(pb)) => {
                let wpp = self.n_subjects.div_ceil(64);
                if pb.words_per_particle != wpp {
                    return Err(SnapshotError::Corrupt(format!(
                        "{} words per particle, n={} needs {wpp}",
                        pb.words_per_particle, self.n_subjects
                    )));
                }
                if pb.log_weights.is_empty() {
                    return Err(SnapshotError::Corrupt("zero particles".into()));
                }
                if pb.words.len() != pb.log_weights.len() * wpp {
                    return Err(SnapshotError::Corrupt(format!(
                        "{} particle words for {} particles of {wpp} word(s)",
                        pb.words.len(),
                        pb.log_weights.len()
                    )));
                }
                if pb
                    .log_weights
                    .iter()
                    .any(|w| w.is_nan() || *w == f64::INFINITY)
                {
                    return Err(SnapshotError::Corrupt(
                        "non-finite particle log-weight".into(),
                    ));
                }
            }
            (ApproxKind::Bp, None) => {}
        }
        if !self.marginals.is_empty() && self.marginals.len() != self.n_subjects {
            return Err(SnapshotError::Corrupt(format!(
                "{} marginals for {} subjects",
                self.marginals.len(),
                self.n_subjects
            )));
        }
        if self.pending_selection.is_some() {
            return Err(SnapshotError::Corrupt(
                "approx snapshot carries a pending dense selection bank".into(),
            ));
        }
        Ok(())
    }

    /// Serialize to the versioned binary format. Floats are written as
    /// little-endian IEEE-754 bit patterns, so decode is bit-exact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.state_count() * 8);
        let version = if self.approx.is_some() {
            VERSION_APPROX
        } else if self.sparse.is_some() {
            VERSION_SPARSE
        } else {
            VERSION_DENSE
        };
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(self.n_subjects as u64).to_le_bytes());
        out.extend_from_slice(&(self.stages as u64).to_le_bytes());
        out.extend_from_slice(&self.total.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&(shard.len() as u64).to_le_bytes());
            for v in shard {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.history.len() as u64).to_le_bytes());
        for (pool, outcome) in &self.history {
            out.extend_from_slice(&pool.bits().to_le_bytes());
            out.push(u8::from(*outcome));
        }
        out.extend_from_slice(&(self.marginals.len() as u64).to_le_bytes());
        for m in &self.marginals {
            out.extend_from_slice(&m.to_bits().to_le_bytes());
        }
        match &self.pending_selection {
            None => out.push(0),
            Some((order, masses)) => {
                out.push(1);
                out.extend_from_slice(&(order.len() as u64).to_le_bytes());
                for &i in order {
                    out.extend_from_slice(&(i as u64).to_le_bytes());
                }
                out.extend_from_slice(&(masses.len() as u64).to_le_bytes());
                for v in masses {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
        if let Some(sp) = &self.sparse {
            out.extend_from_slice(&(sp.entries.len() as u64).to_le_bytes());
            for (s, p) in &sp.entries {
                out.extend_from_slice(&s.bits().to_le_bytes());
                out.extend_from_slice(&p.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&sp.pruned_mass.to_bits().to_le_bytes());
        }
        if let Some(ap) = &self.approx {
            out.push(ap.kind.to_byte());
            out.extend_from_slice(&(ap.history.len() as u64).to_le_bytes());
            for (pool, outcome) in &ap.history {
                out.extend_from_slice(&(pool.len() as u32).to_le_bytes());
                for &i in pool {
                    out.extend_from_slice(&i.to_le_bytes());
                }
                out.push(u8::from(*outcome));
            }
            match &ap.particles {
                None => out.push(0),
                Some(pb) => {
                    out.push(1);
                    out.extend_from_slice(&(pb.log_weights.len() as u64).to_le_bytes());
                    out.extend_from_slice(&(pb.words_per_particle as u64).to_le_bytes());
                    for w in &pb.words {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                    for lw in &pb.log_weights {
                        out.extend_from_slice(&lw.to_bits().to_le_bytes());
                    }
                    for r in &pb.rng {
                        out.extend_from_slice(&r.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Decode the binary format; every structural violation is a typed
    /// [`SnapshotError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != VERSION_DENSE && version != VERSION_SPARSE && version != VERSION_APPROX {
            return Err(SnapshotError::Corrupt(format!(
                "unsupported version {version}"
            )));
        }
        let n_subjects = r.u64()? as usize;
        let stages = r.u64()? as usize;
        let total = f64::from_bits(r.u64()?);
        let shard_count = r.len_prefix()?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let len = r.len_prefix()?;
            let mut shard = Vec::with_capacity(len);
            for _ in 0..len {
                shard.push(f64::from_bits(r.u64()?));
            }
            shards.push(shard);
        }
        let history_len = r.len_prefix()?;
        let mut history = Vec::with_capacity(history_len);
        for _ in 0..history_len {
            let pool = State(r.u64()?);
            let outcome = r.take(1)?[0] != 0;
            history.push((pool, outcome));
        }
        let marginals_len = r.len_prefix()?;
        let mut marginals = Vec::with_capacity(marginals_len);
        for _ in 0..marginals_len {
            marginals.push(f64::from_bits(r.u64()?));
        }
        let pending_selection = match r.take(1)?[0] {
            0 => None,
            1 => {
                let order_len = r.len_prefix()?;
                let mut order = Vec::with_capacity(order_len);
                for _ in 0..order_len {
                    order.push(r.u64()? as usize);
                }
                let masses_len = r.len_prefix()?;
                let mut masses = Vec::with_capacity(masses_len);
                for _ in 0..masses_len {
                    masses.push(f64::from_bits(r.u64()?));
                }
                Some((order, masses))
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "bad pending-selection tag {other}"
                )))
            }
        };
        let sparse = if version == VERSION_SPARSE {
            let entries_len = r.len_prefix()?;
            let mut entries = Vec::with_capacity(entries_len);
            for _ in 0..entries_len {
                let s = State(r.u64()?);
                let p = f64::from_bits(r.u64()?);
                entries.push((s, p));
            }
            let pruned_mass = f64::from_bits(r.u64()?);
            Some(SparseSnapshot {
                entries,
                pruned_mass,
            })
        } else {
            None
        };
        let approx = if version == VERSION_APPROX {
            let kind = ApproxKind::from_byte(r.take(1)?[0])?;
            let hist_len = r.len_prefix()?;
            let mut ap_history = Vec::with_capacity(hist_len);
            for _ in 0..hist_len {
                let pool_len = r.u32()? as usize;
                let mut pool = Vec::with_capacity(pool_len.min(4096));
                for _ in 0..pool_len {
                    pool.push(r.u32()?);
                }
                let outcome = r.take(1)?[0] != 0;
                ap_history.push((pool, outcome));
            }
            let particles = match r.take(1)?[0] {
                0 => None,
                1 => {
                    let count = r.len_prefix()?;
                    let words_per_particle = r.u64()? as usize;
                    let word_count = count
                        .checked_mul(words_per_particle)
                        .filter(|&w| w <= (bytes.len() - r.at) / 8)
                        .ok_or_else(|| {
                            SnapshotError::Corrupt(format!(
                                "particle block {count}×{words_per_particle} words overflows buffer"
                            ))
                        })?;
                    let mut words = Vec::with_capacity(word_count);
                    for _ in 0..word_count {
                        words.push(r.u64()?);
                    }
                    let mut log_weights = Vec::with_capacity(count);
                    for _ in 0..count {
                        log_weights.push(f64::from_bits(r.u64()?));
                    }
                    let mut rng = [0u64; 4];
                    for slot in &mut rng {
                        *slot = r.u64()?;
                    }
                    Some(ParticleBlock {
                        words_per_particle,
                        words,
                        log_weights,
                        rng,
                    })
                }
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "bad particle-block tag {other}"
                    )))
                }
            };
            Some(ApproxSnapshot {
                kind,
                history: ap_history,
                particles,
            })
        } else {
            None
        };
        if r.at != bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing byte(s)",
                bytes.len() - r.at
            )));
        }
        let snapshot = SessionSnapshot {
            n_subjects,
            shards,
            total,
            history,
            stages,
            marginals,
            pending_selection,
            sparse,
            approx,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.at + n > self.bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// A length prefix, sanity-capped so a corrupt buffer cannot request an
    /// absurd allocation.
    fn len_prefix(&mut self) -> Result<usize, SnapshotError> {
        let len = self.u64()?;
        let remaining = (self.bytes.len() - self.at) as u64;
        if len > remaining {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {len} exceeds remaining {remaining} byte(s)"
            )));
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: 2,
            shards: vec![vec![0.25, 0.5], vec![0.125, 0.0625]],
            total: 0.9375,
            history: vec![(State::from_subjects([0, 1]), true), (State(1), false)],
            stages: 2,
            marginals: vec![0.4, 0.6],
            pending_selection: Some((vec![1, 0], vec![0.9375, 0.5, 0.25])),
            sparse: None,
            approx: None,
        }
    }

    fn sample_sparse() -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: 3,
            shards: vec![],
            total: 0.875,
            history: vec![(State(5), true)],
            stages: 4,
            marginals: vec![],
            pending_selection: None,
            sparse: Some(SparseSnapshot {
                entries: vec![(State(1), 0.5), (State(5), 0.375)],
                pruned_mass: 0.125,
            }),
            approx: None,
        }
    }

    fn sample_bp() -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: 256,
            shards: vec![],
            total: 1.0,
            history: vec![],
            stages: 3,
            marginals: vec![],
            pending_selection: None,
            sparse: None,
            approx: Some(ApproxSnapshot {
                kind: ApproxKind::Bp,
                history: vec![(vec![0, 64, 200], true), (vec![1, 255], false)],
                particles: None,
            }),
        }
    }

    fn sample_particle() -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: 70,
            shards: vec![],
            total: 1.0,
            history: vec![],
            stages: 1,
            marginals: vec![],
            pending_selection: None,
            sparse: None,
            approx: Some(ApproxSnapshot {
                kind: ApproxKind::Particle,
                history: vec![(vec![3, 69], true)],
                particles: Some(ParticleBlock {
                    words_per_particle: 2,
                    words: vec![0b101, 0, u64::MAX, 0b11],
                    log_weights: vec![-0.25, -1.5],
                    rng: [1, 2, 3, 4],
                }),
            }),
        }
    }

    #[test]
    fn byte_codec_round_trips_bit_for_bit() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        for (a, b) in snap
            .shards
            .iter()
            .flatten()
            .zip(back.shards.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // No pending selection round-trips too.
        let mut bare = snap;
        bare.pending_selection = None;
        bare.marginals.clear();
        assert_eq!(SessionSnapshot::from_bytes(&bare.to_bytes()).unwrap(), bare);
    }

    #[test]
    fn corrupt_buffers_are_typed_errors() {
        let snap = sample();
        let bytes = snap.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            SessionSnapshot::from_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        // Truncation at every prefix is an error, never a panic.
        for cut in [0, 7, 11, 20, 40, bytes.len() - 1] {
            assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SessionSnapshot::from_bytes(&long).is_err());
        // Unsupported version.
        let mut vers = bytes;
        vers[8] = 99;
        let err = SessionSnapshot::from_bytes(&vers).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn sparse_codec_round_trips_bit_for_bit() {
        let snap = sample_sparse();
        assert!(snap.validate().is_ok());
        let bytes = snap.to_bytes();
        // Sparse snapshots carry the bumped version; dense ones keep v1, so
        // pre-sparse archives stay byte-identical.
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        assert_eq!(
            u32::from_le_bytes(sample().to_bytes()[8..12].try_into().unwrap()),
            1
        );
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        let (a, b) = (snap.sparse.as_ref().unwrap(), back.sparse.as_ref().unwrap());
        assert_eq!(a.pruned_mass.to_bits(), b.pruned_mass.to_bits());
        for ((sa, pa), (sb, pb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(sa, sb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        // Truncations inside the sparse section are typed errors.
        for cut in [bytes.len() - 1, bytes.len() - 9, bytes.len() - 20] {
            assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn validate_rejects_bad_sparse_sections() {
        let mut both = sample_sparse();
        both.shards = vec![vec![0.0; 8]];
        assert!(both.validate().is_err());
        let mut dup = sample_sparse();
        dup.sparse.as_mut().unwrap().entries = vec![(State(1), 0.5), (State(1), 0.5)];
        assert!(dup.validate().is_err());
        let mut unsorted = sample_sparse();
        unsorted.sparse.as_mut().unwrap().entries = vec![(State(5), 0.5), (State(1), 0.5)];
        assert!(unsorted.validate().is_err());
        let mut out_of_range = sample_sparse();
        out_of_range.sparse.as_mut().unwrap().entries = vec![(State(9), 0.5)];
        assert!(out_of_range.validate().is_err());
        let mut bad_mass = sample_sparse();
        bad_mass.sparse.as_mut().unwrap().pruned_mass = f64::NAN;
        assert!(bad_mass.validate().is_err());
    }

    #[test]
    fn approx_codec_round_trips_bit_for_bit() {
        for snap in [sample_bp(), sample_particle()] {
            assert!(snap.validate().is_ok());
            let bytes = snap.to_bytes();
            assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 3);
            let back = SessionSnapshot::from_bytes(&bytes).unwrap();
            assert_eq!(back, snap);
        }
        let bytes = sample_particle().to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        let (a, b) = (
            sample_particle().approx.unwrap().particles.unwrap(),
            back.approx.unwrap().particles.unwrap(),
        );
        assert_eq!(a.rng, b.rng);
        for (x, y) in a.log_weights.iter().zip(&b.log_weights) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn validate_rejects_bad_approx_sections() {
        // An approx snapshot smuggling dense shards.
        let mut both = sample_bp();
        both.shards = vec![vec![0.0; 4]];
        assert!(both.validate().is_err());
        // Unsorted pool.
        let mut unsorted = sample_bp();
        unsorted.approx.as_mut().unwrap().history[0].0 = vec![5, 2];
        assert!(unsorted.validate().is_err());
        // Out-of-range subject.
        let mut oor = sample_bp();
        oor.approx.as_mut().unwrap().history[0].0 = vec![256];
        assert!(oor.validate().is_err());
        // BP with a particle block / particle without one.
        let mut bp_pb = sample_bp();
        bp_pb.approx.as_mut().unwrap().particles = sample_particle().approx.unwrap().particles;
        assert!(bp_pb.validate().is_err());
        let mut no_pb = sample_particle();
        no_pb.approx.as_mut().unwrap().particles = None;
        assert!(no_pb.validate().is_err());
        // Particle block that does not tile count × words_per_particle.
        let mut ragged = sample_particle();
        ragged
            .approx
            .as_mut()
            .unwrap()
            .particles
            .as_mut()
            .unwrap()
            .words
            .pop();
        assert!(ragged.validate().is_err());
        // NaN log-weight.
        let mut nan = sample_particle();
        nan.approx
            .as_mut()
            .unwrap()
            .particles
            .as_mut()
            .unwrap()
            .log_weights[0] = f64::NAN;
        assert!(nan.validate().is_err());
    }

    #[test]
    fn approx_codec_rejects_tampering() {
        let bytes = sample_particle().to_bytes();
        // Truncation anywhere inside the approx section is a typed error.
        for cut in (bytes.len() - 60)..bytes.len() {
            assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Unknown approx kind byte. The kind byte sits right after the
        // pending-selection tag; find it by re-encoding with a poked kind.
        let base = sample_bp();
        let clean = base.to_bytes();
        let kind_at = clean
            .len()
            - base
                .approx
                .as_ref()
                .unwrap()
                .history
                .iter()
                .map(|(p, _)| 4 + 4 * p.len() + 1)
                .sum::<usize>()
            - 8 // history count
            - 1 // particle tag
            - 1; // the kind byte itself
        let mut bad_kind = clean.clone();
        bad_kind[kind_at] = 7;
        let err = SessionSnapshot::from_bytes(&bad_kind).unwrap_err();
        assert!(err.to_string().contains("approx kind"), "{err}");
    }

    #[test]
    fn validate_rejects_inconsistent_shapes() {
        let mut snap = sample();
        assert!(snap.validate().is_ok());
        snap.shards[0].pop();
        assert!(snap.validate().is_err());
        let mut bad_marginals = sample();
        bad_marginals.marginals.push(0.5);
        assert!(bad_marginals.validate().is_err());
        let mut bad_pending = sample();
        bad_pending.pending_selection = Some((vec![0], vec![1.0]));
        assert!(bad_pending.validate().is_err());
    }
}
