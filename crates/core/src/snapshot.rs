//! Session checkpoint/restore — the eviction and recovery format.
//!
//! A [`SessionSnapshot`] captures the full state of a live session —
//! posterior shards (exact unnormalized values), normalization constant,
//! committed pools, round counter, fresh marginals, and the pipelined
//! selection bank — so a cohort can be evicted under memory pressure and
//! later rehydrated, or rolled back after a chaos fault kills a round,
//! **bit-for-bit**: every float is preserved exactly, so the restored
//! session selects the same pools and reaches the same classification as
//! one that never stopped.
//!
//! The struct derives the workspace's `serde` marker traits; durable
//! persistence goes through the explicit binary codec
//! ([`SessionSnapshot::to_bytes`] / [`SessionSnapshot::from_bytes`]), which
//! round-trips floats via their IEEE-754 bit patterns.

use serde::{Deserialize, Serialize};

use sbgt_lattice::State;

/// Error restoring or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload is inconsistent (wrong magic, truncated buffer, shard
    /// lengths that do not tile the lattice, ...); the message says how.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(msg) => write!(f, "corrupt session snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Post-switch sparse posterior state: the retained entries (exact bits,
/// sorted by state index) plus the pruned-mass record, enough to rebuild
/// the live [`sbgt_lattice::SparsePosterior`] via
/// [`sbgt_lattice::SparsePosterior::from_parts`] bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseSnapshot {
    /// Retained `(state, mass)` entries, sorted by state index.
    pub entries: Vec<(State, f64)>,
    /// Mass discarded by pruning so far (the conservation record).
    pub pruned_mass: f64,
}

/// Full state of a session at a round boundary (or mid-stage: any point
/// between observations is a valid snapshot point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Cohort size.
    pub n_subjects: usize,
    /// Posterior values per shard, exact bits. Dense sessions store one
    /// shard of normalized probabilities; sharded sessions store one vector
    /// per partition (unnormalized), preserving partition boundaries so the
    /// restored reduction order — and therefore every downstream float —
    /// is identical.
    pub shards: Vec<Vec<f64>>,
    /// Normalization constant of the sharded posterior (dense sessions
    /// store `1.0`; their posterior is kept normalized).
    pub total: f64,
    /// Committed pools: every `(pool, outcome)` observed so far, in order.
    pub history: Vec<(State, bool)>,
    /// Round counter (completed stages).
    pub stages: usize,
    /// Current marginals (sharded sessions keep them fresh; dense sessions
    /// store them for inspection but recompute on demand).
    pub marginals: Vec<f64>,
    /// Sharded sessions: the `(order, masses)` selection bank pipelined
    /// from the last fused round, if any.
    pub pending_selection: Option<(Vec<usize>, Vec<f64>)>,
    /// Post-switch sparse posterior, for sessions that have crossed the
    /// adaptive dense→sparse threshold (or always-sparse sessions). When
    /// set, `shards` is empty — the sparse entries *are* the posterior.
    pub sparse: Option<SparseSnapshot>,
}

const MAGIC: &[u8; 8] = b"SBGTSNAP";
/// Format written for dense/sharded snapshots — unchanged from the first
/// release, so pre-sparse archives decode and dense snapshots stay
/// byte-identical to what older readers expect.
const VERSION_DENSE: u32 = 1;
/// Format written when the sparse section is present (appended after the
/// pending-selection section).
const VERSION_SPARSE: u32 = 2;

impl SessionSnapshot {
    /// Number of posterior values across all shards.
    pub fn state_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Check internal consistency: shard lengths must tile the `2^N`
    /// lattice and the marginals (when present) must match the cohort size.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let want = 1usize
            .checked_shl(self.n_subjects as u32)
            .filter(|_| self.n_subjects <= 63)
            .ok_or_else(|| {
                SnapshotError::Corrupt(format!("cohort size {} overflows u64", self.n_subjects))
            })?;
        match &self.sparse {
            None => {
                if self.state_count() != want {
                    return Err(SnapshotError::Corrupt(format!(
                        "shards hold {} values, lattice needs {want}",
                        self.state_count()
                    )));
                }
            }
            Some(sp) => {
                if self.state_count() != 0 {
                    return Err(SnapshotError::Corrupt(format!(
                        "sparse snapshot also holds {} dense values",
                        self.state_count()
                    )));
                }
                if sp.entries.len() > want {
                    return Err(SnapshotError::Corrupt(format!(
                        "sparse support {} exceeds lattice size {want}",
                        sp.entries.len()
                    )));
                }
                for w in sp.entries.windows(2) {
                    if w[0].0.bits() >= w[1].0.bits() {
                        return Err(SnapshotError::Corrupt(format!(
                            "sparse entries unsorted or duplicated at state {}",
                            w[1].0
                        )));
                    }
                }
                if let Some((s, _)) = sp.entries.last() {
                    if s.bits() >= want as u64 {
                        return Err(SnapshotError::Corrupt(format!(
                            "sparse state {s} out of range for n={}",
                            self.n_subjects
                        )));
                    }
                }
                if !sp.pruned_mass.is_finite() {
                    return Err(SnapshotError::Corrupt(format!(
                        "non-finite pruned mass {}",
                        sp.pruned_mass
                    )));
                }
            }
        }
        if !self.marginals.is_empty() && self.marginals.len() != self.n_subjects {
            return Err(SnapshotError::Corrupt(format!(
                "{} marginals for {} subjects",
                self.marginals.len(),
                self.n_subjects
            )));
        }
        if let Some((order, masses)) = &self.pending_selection {
            if masses.len() != order.len() + 1 {
                return Err(SnapshotError::Corrupt(format!(
                    "pending selection holds {} masses for {} ordered subjects",
                    masses.len(),
                    order.len()
                )));
            }
        }
        Ok(())
    }

    /// Serialize to the versioned binary format. Floats are written as
    /// little-endian IEEE-754 bit patterns, so decode is bit-exact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.state_count() * 8);
        let version = if self.sparse.is_some() {
            VERSION_SPARSE
        } else {
            VERSION_DENSE
        };
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(self.n_subjects as u64).to_le_bytes());
        out.extend_from_slice(&(self.stages as u64).to_le_bytes());
        out.extend_from_slice(&self.total.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&(shard.len() as u64).to_le_bytes());
            for v in shard {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.history.len() as u64).to_le_bytes());
        for (pool, outcome) in &self.history {
            out.extend_from_slice(&pool.bits().to_le_bytes());
            out.push(u8::from(*outcome));
        }
        out.extend_from_slice(&(self.marginals.len() as u64).to_le_bytes());
        for m in &self.marginals {
            out.extend_from_slice(&m.to_bits().to_le_bytes());
        }
        match &self.pending_selection {
            None => out.push(0),
            Some((order, masses)) => {
                out.push(1);
                out.extend_from_slice(&(order.len() as u64).to_le_bytes());
                for &i in order {
                    out.extend_from_slice(&(i as u64).to_le_bytes());
                }
                out.extend_from_slice(&(masses.len() as u64).to_le_bytes());
                for v in masses {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
        if let Some(sp) = &self.sparse {
            out.extend_from_slice(&(sp.entries.len() as u64).to_le_bytes());
            for (s, p) in &sp.entries {
                out.extend_from_slice(&s.bits().to_le_bytes());
                out.extend_from_slice(&p.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&sp.pruned_mass.to_bits().to_le_bytes());
        }
        out
    }

    /// Decode the binary format; every structural violation is a typed
    /// [`SnapshotError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != VERSION_DENSE && version != VERSION_SPARSE {
            return Err(SnapshotError::Corrupt(format!(
                "unsupported version {version}"
            )));
        }
        let n_subjects = r.u64()? as usize;
        let stages = r.u64()? as usize;
        let total = f64::from_bits(r.u64()?);
        let shard_count = r.len_prefix()?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let len = r.len_prefix()?;
            let mut shard = Vec::with_capacity(len);
            for _ in 0..len {
                shard.push(f64::from_bits(r.u64()?));
            }
            shards.push(shard);
        }
        let history_len = r.len_prefix()?;
        let mut history = Vec::with_capacity(history_len);
        for _ in 0..history_len {
            let pool = State(r.u64()?);
            let outcome = r.take(1)?[0] != 0;
            history.push((pool, outcome));
        }
        let marginals_len = r.len_prefix()?;
        let mut marginals = Vec::with_capacity(marginals_len);
        for _ in 0..marginals_len {
            marginals.push(f64::from_bits(r.u64()?));
        }
        let pending_selection = match r.take(1)?[0] {
            0 => None,
            1 => {
                let order_len = r.len_prefix()?;
                let mut order = Vec::with_capacity(order_len);
                for _ in 0..order_len {
                    order.push(r.u64()? as usize);
                }
                let masses_len = r.len_prefix()?;
                let mut masses = Vec::with_capacity(masses_len);
                for _ in 0..masses_len {
                    masses.push(f64::from_bits(r.u64()?));
                }
                Some((order, masses))
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "bad pending-selection tag {other}"
                )))
            }
        };
        let sparse = if version == VERSION_SPARSE {
            let entries_len = r.len_prefix()?;
            let mut entries = Vec::with_capacity(entries_len);
            for _ in 0..entries_len {
                let s = State(r.u64()?);
                let p = f64::from_bits(r.u64()?);
                entries.push((s, p));
            }
            let pruned_mass = f64::from_bits(r.u64()?);
            Some(SparseSnapshot {
                entries,
                pruned_mass,
            })
        } else {
            None
        };
        if r.at != bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing byte(s)",
                bytes.len() - r.at
            )));
        }
        let snapshot = SessionSnapshot {
            n_subjects,
            shards,
            total,
            history,
            stages,
            marginals,
            pending_selection,
            sparse,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.at + n > self.bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length prefix, sanity-capped so a corrupt buffer cannot request an
    /// absurd allocation.
    fn len_prefix(&mut self) -> Result<usize, SnapshotError> {
        let len = self.u64()?;
        let remaining = (self.bytes.len() - self.at) as u64;
        if len > remaining {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {len} exceeds remaining {remaining} byte(s)"
            )));
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: 2,
            shards: vec![vec![0.25, 0.5], vec![0.125, 0.0625]],
            total: 0.9375,
            history: vec![(State::from_subjects([0, 1]), true), (State(1), false)],
            stages: 2,
            marginals: vec![0.4, 0.6],
            pending_selection: Some((vec![1, 0], vec![0.9375, 0.5, 0.25])),
            sparse: None,
        }
    }

    fn sample_sparse() -> SessionSnapshot {
        SessionSnapshot {
            n_subjects: 3,
            shards: vec![],
            total: 0.875,
            history: vec![(State(5), true)],
            stages: 4,
            marginals: vec![],
            pending_selection: None,
            sparse: Some(SparseSnapshot {
                entries: vec![(State(1), 0.5), (State(5), 0.375)],
                pruned_mass: 0.125,
            }),
        }
    }

    #[test]
    fn byte_codec_round_trips_bit_for_bit() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        for (a, b) in snap
            .shards
            .iter()
            .flatten()
            .zip(back.shards.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // No pending selection round-trips too.
        let mut bare = snap;
        bare.pending_selection = None;
        bare.marginals.clear();
        assert_eq!(SessionSnapshot::from_bytes(&bare.to_bytes()).unwrap(), bare);
    }

    #[test]
    fn corrupt_buffers_are_typed_errors() {
        let snap = sample();
        let bytes = snap.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            SessionSnapshot::from_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        // Truncation at every prefix is an error, never a panic.
        for cut in [0, 7, 11, 20, 40, bytes.len() - 1] {
            assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SessionSnapshot::from_bytes(&long).is_err());
        // Unsupported version.
        let mut vers = bytes;
        vers[8] = 99;
        let err = SessionSnapshot::from_bytes(&vers).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn sparse_codec_round_trips_bit_for_bit() {
        let snap = sample_sparse();
        assert!(snap.validate().is_ok());
        let bytes = snap.to_bytes();
        // Sparse snapshots carry the bumped version; dense ones keep v1, so
        // pre-sparse archives stay byte-identical.
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        assert_eq!(
            u32::from_le_bytes(sample().to_bytes()[8..12].try_into().unwrap()),
            1
        );
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        let (a, b) = (snap.sparse.as_ref().unwrap(), back.sparse.as_ref().unwrap());
        assert_eq!(a.pruned_mass.to_bits(), b.pruned_mass.to_bits());
        for ((sa, pa), (sb, pb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(sa, sb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        // Truncations inside the sparse section are typed errors.
        for cut in [bytes.len() - 1, bytes.len() - 9, bytes.len() - 20] {
            assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn validate_rejects_bad_sparse_sections() {
        let mut both = sample_sparse();
        both.shards = vec![vec![0.0; 8]];
        assert!(both.validate().is_err());
        let mut dup = sample_sparse();
        dup.sparse.as_mut().unwrap().entries = vec![(State(1), 0.5), (State(1), 0.5)];
        assert!(dup.validate().is_err());
        let mut unsorted = sample_sparse();
        unsorted.sparse.as_mut().unwrap().entries = vec![(State(5), 0.5), (State(1), 0.5)];
        assert!(unsorted.validate().is_err());
        let mut out_of_range = sample_sparse();
        out_of_range.sparse.as_mut().unwrap().entries = vec![(State(9), 0.5)];
        assert!(out_of_range.validate().is_err());
        let mut bad_mass = sample_sparse();
        bad_mass.sparse.as_mut().unwrap().pruned_mass = f64::NAN;
        assert!(bad_mass.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_shapes() {
        let mut snap = sample();
        assert!(snap.validate().is_ok());
        snap.shards[0].pop();
        assert!(snap.validate().is_err());
        let mut bad_marginals = sample();
        bad_marginals.marginals.push(0.5);
        assert!(bad_marginals.validate().is_err());
        let mut bad_pending = sample();
        bad_pending.pending_selection = Some((vec![0], vec![1.0]));
        assert!(bad_pending.validate().is_err());
    }
}
