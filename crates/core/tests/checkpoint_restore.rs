//! Property tests: checkpoint/restore is **bit-for-bit**. Snapshotting a
//! session at any round boundary, round-tripping the byte codec, and
//! restoring reproduces the exact posterior bits, the same selection
//! trajectory, and the same final classification as the uninterrupted run —
//! for dense and sharded sessions, across partition counts, stage widths,
//! and snapshot points (including mid-run with a banked pipelined
//! selection).

use proptest::prelude::*;
use sbgt::prelude::*;
use sbgt_engine::{Engine, EngineConfig};

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_threads(2))
}

/// Distinct per-subject risks derived from a free u64: flat priors leave
/// the ascending-marginal ordering to last-ulp noise, which is valid but
/// makes trajectory comparisons meaningless.
fn risks_from_seed(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            0.01 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.15
        })
        .collect()
}

fn truth_from_seed(seed: u64, n: usize) -> State {
    State(seed % (1u64 << n))
}

/// Run an uninterrupted session, recording every pool the lab sees.
fn dense_reference(
    risks: &[f64],
    truth: State,
    config: &SbgtConfig,
) -> (SessionOutcome, Vec<State>) {
    let model = BinaryDilutionModel::pcr_like();
    let mut session = SbgtSession::new(Prior::from_risks(risks), model, *config);
    let mut pools = Vec::new();
    let outcome = session.run_to_classification(|pool| {
        pools.push(pool);
        truth.intersects(pool)
    });
    (outcome, pools)
}

fn assert_bitwise_marginals(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "marginal bits differ: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense session: snapshot after `k` rounds, codec round-trip, restore,
    /// finish — identical trajectory and bit-exact classification.
    #[test]
    fn dense_snapshot_restore_is_bit_exact(
        seed in proptest::arbitrary::any::<u64>(),
        n in 4usize..=9,
        width in 1usize..=3,
        pause_after in 1usize..=4,
    ) {
        let risks = risks_from_seed(seed, n);
        let truth = truth_from_seed(seed >> 7, n);
        let config = SbgtConfig::default().with_stage_width(width).serial();
        let (expected, ref_pools) = dense_reference(&risks, truth, &config);
        let model = BinaryDilutionModel::pcr_like();

        let mut live = SbgtSession::new(Prior::from_risks(&risks), model, config);
        let mut pools = Vec::new();
        let mut finished_early = None;
        for _ in 0..pause_after {
            if let RoundStep::Finished(o) = live.run_round(|pool| {
                pools.push(pool);
                truth.intersects(pool)
            }) {
                finished_early = Some(o);
                break;
            }
        }
        if let Some(outcome) = finished_early {
            // Session classified before the pause point: the stepped run
            // itself must equal the batch reference.
            prop_assert_eq!(pools, ref_pools);
            prop_assert_eq!(outcome, expected);
        } else {
            let bytes = live.snapshot().to_bytes();
            let snap = SessionSnapshot::from_bytes(&bytes).unwrap();
            drop(live);
            let mut restored = SbgtSession::restore(&snap, model, config).unwrap();
            let outcome = restored.run_to_classification(|pool| {
                pools.push(pool);
                truth.intersects(pool)
            });
            prop_assert_eq!(pools, ref_pools, "selection trajectory diverged");
            assert_bitwise_marginals(&outcome.marginals, &expected.marginals);
            prop_assert_eq!(outcome, expected);
        }
    }

    /// Sharded session: same property, across partition counts; the restored
    /// run must also match the *dense serial* reference classification-wise
    /// (same pools, same statuses), proving restore preserves partition
    /// boundaries and the pipelined selection bank.
    #[test]
    fn sharded_snapshot_restore_is_bit_exact(
        seed in proptest::arbitrary::any::<u64>(),
        n in 4usize..=9,
        parts in 1usize..=5,
        pause_after in 1usize..=4,
    ) {
        let e = engine();
        let risks = risks_from_seed(seed, n);
        let truth = truth_from_seed(seed >> 7, n);
        let config = SbgtConfig::default();
        let model = BinaryDilutionModel::pcr_like();

        // Uninterrupted sharded reference.
        let mut reference =
            ShardedSession::new(&e, Prior::from_risks(&risks), model, config, parts);
        let mut ref_pools = Vec::new();
        let expected = reference.run_to_classification(&e, |pool| {
            ref_pools.push(pool);
            truth.intersects(pool)
        });

        let mut live =
            ShardedSession::new(&e, Prior::from_risks(&risks), model, config, parts);
        let mut pools = Vec::new();
        let mut finished_early = None;
        for _ in 0..pause_after {
            if let RoundStep::Finished(o) = live.run_round(&e, |pool| {
                pools.push(pool);
                truth.intersects(pool)
            }) {
                finished_early = Some(o);
                break;
            }
        }
        if let Some(outcome) = finished_early {
            prop_assert_eq!(pools, ref_pools);
            prop_assert_eq!(outcome, expected);
        } else {
            let snap = live.snapshot();
            // Partition boundaries survive the snapshot.
            prop_assert_eq!(snap.shards.len(), parts.min(1usize << n));
            let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
            prop_assert_eq!(&decoded, &snap);
            drop(live);
            let mut restored = ShardedSession::restore(&decoded, model, config).unwrap();
            let outcome = restored.run_to_classification(&e, |pool| {
                pools.push(pool);
                truth.intersects(pool)
            });
            prop_assert_eq!(pools, ref_pools, "selection trajectory diverged");
            assert_bitwise_marginals(&outcome.marginals, &expected.marginals);
            prop_assert_eq!(outcome, expected);
        }
    }

    /// The byte codec round-trips arbitrary structurally-valid snapshots
    /// bit-for-bit, and restore rejects tampered payloads with a typed
    /// error instead of corrupting a session.
    #[test]
    fn codec_rejects_tampering(
        seed in proptest::arbitrary::any::<u64>(),
        n in 3usize..=7,
        flip in proptest::arbitrary::any::<usize>(),
    ) {
        let e = engine();
        let risks = risks_from_seed(seed, n);
        let truth = truth_from_seed(seed >> 9, n);
        let mut live = ShardedSession::new(
            &e,
            Prior::from_risks(&risks),
            BinaryDilutionModel::pcr_like(),
            SbgtConfig::default(),
            3,
        );
        let _ = live.run_round(&e, |pool| truth.intersects(pool));
        let bytes = live.snapshot().to_bytes();
        prop_assert_eq!(
            SessionSnapshot::from_bytes(&bytes).unwrap(),
            live.snapshot()
        );
        // Truncation anywhere is an error, never a panic.
        let cut = flip % bytes.len();
        prop_assert!(SessionSnapshot::from_bytes(&bytes[..cut]).is_err());
    }
}
