//! Property tests: the zero-copy in-place update is *bit-for-bit*
//! identical to the immutable materializing stage, and agrees with the
//! serial dense kernel, across random priors, pools, outcomes, and
//! partition counts — including the shared-handle copy-on-write case.

use proptest::prelude::*;
use sbgt::ShardedPosterior;
use sbgt_bayes::{update_dense, BayesError, Observation, Prior};
use sbgt_engine::{Engine, EngineConfig, StageVariant};
use sbgt_lattice::State;
use sbgt_response::BinaryDilutionModel;

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_threads(2))
}

/// Derive a non-empty pool over `n` subjects from a free u64 seed (the
/// vendored proptest has no dependent generation).
fn pool_from_seed(seed: u64, n: usize) -> State {
    let space = (1u64 << n) - 1;
    let mask = (seed % space) + 1;
    State::from_subjects((0..n).filter(|&i| mask >> i & 1 == 1))
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: state {i} differs ({x} vs {y})"
        );
    }
}

/// Full-level tracing is observation only: a traced engine produces the
/// exact bits of an untraced one through every stage variant (and it
/// actually recorded spans while doing so).
#[test]
fn full_tracing_never_changes_posterior_bits() {
    use sbgt_engine::ObsConfig;
    let off = engine();
    let full = Engine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_obs(ObsConfig::full()),
    );
    let risks = [0.02, 0.08, 0.15, 0.05, 0.3, 0.11, 0.07, 0.22];
    let n = risks.len();
    let dense0 = Prior::from_risks(&risks).to_dense();
    let model = BinaryDilutionModel::pcr_like();
    let mut a = ShardedPosterior::from_dense(&dense0, 4);
    let mut b = ShardedPosterior::from_dense(&dense0, 4);
    for (i, seed) in [13u64, 29, 71, 97].into_iter().enumerate() {
        let pool = pool_from_seed(seed, n);
        let za = a.update(&off, &model, pool, i % 2 == 0).unwrap();
        let zb = b.update(&full, &model, pool, i % 2 == 0).unwrap();
        assert_eq!(za.to_bits(), zb.to_bits());
    }
    assert_bitwise_eq(
        a.to_dense(&off).probs(),
        b.to_dense(&full).probs(),
        "traced vs untraced",
    );
    assert!(
        off.obs().snapshot().total_events() == 0,
        "off records nothing"
    );
    assert!(
        full.obs().snapshot().total_events() > 0,
        "full must have recorded stage/task spans"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-place and immutable updates produce bitwise-identical posteriors
    /// and evidences for any observation sequence.
    #[test]
    fn in_place_matches_immutable_bitwise(
        risks in prop::collection::vec(0.01f64..0.4, 2..=8),
        parts in 1usize..=6,
        obs in prop::collection::vec((proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<bool>()), 1..=5),
    ) {
        let e = engine();
        let n = risks.len();
        let dense0 = Prior::from_risks(&risks).to_dense();
        let mut in_place = ShardedPosterior::from_dense(&dense0, parts);
        let mut immutable = ShardedPosterior::from_dense(&dense0, parts);
        let model = BinaryDilutionModel::pcr_like();

        for &(seed, outcome) in &obs {
            let pool = pool_from_seed(seed, n);
            let a = in_place.update(&e, &model, pool, outcome);
            let b = immutable.update_immutable(&e, &model, pool, outcome);
            match (a, b) {
                (Ok(za), Ok(zb)) => prop_assert_eq!(za.to_bits(), zb.to_bits()),
                (Err(ea), Err(eb)) => {
                    prop_assert_eq!(ea, eb);
                    break;
                }
                (a, b) => prop_assert!(false, "paths disagree on error: {:?} vs {:?}", a, b),
            }
            prop_assert_eq!(in_place.total().to_bits(), immutable.total().to_bits());
            assert_bitwise_eq(
                in_place.to_dense(&e).probs(),
                immutable.to_dense(&e).probs(),
                "in-place vs immutable",
            );
        }
    }

    /// Both sharded paths agree with the serial dense kernel (which
    /// renormalizes every round, so agreement is to rounding, not bits).
    #[test]
    fn sharded_matches_dense_serial(
        risks in prop::collection::vec(0.01f64..0.4, 2..=8),
        parts in 1usize..=6,
        obs in prop::collection::vec((proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<bool>()), 1..=5),
    ) {
        let e = engine();
        let n = risks.len();
        let mut dense = Prior::from_risks(&risks).to_dense();
        let mut sharded = ShardedPosterior::from_dense(&dense, parts);
        let model = BinaryDilutionModel::pcr_like();

        for &(seed, outcome) in &obs {
            let pool = pool_from_seed(seed, n);
            let observation = Observation::new(pool, outcome);
            let zd = update_dense(&mut dense, &model, &observation);
            let zs = sharded.update(&e, &model, pool, outcome);
            match (zd, zs) {
                (Ok(zd), Ok(zs)) => prop_assert!((zd - zs).abs() <= 1e-12 * zd.abs().max(1.0)),
                (Err(BayesError::ImpossibleObservation), Err(BayesError::ImpossibleObservation)) => break,
                (a, b) => prop_assert!(false, "kernels disagree on error: {:?} vs {:?}", a, b),
            }
            for (i, (d, s)) in dense.probs().iter().zip(sharded.to_dense(&e).probs()).enumerate() {
                prop_assert!(
                    (d - s).abs() <= 1e-12,
                    "state {}: dense {} vs sharded {}", i, d, s
                );
            }
        }
    }

    /// Shared-handle case: a clone shares shard storage, so updating one
    /// copy must take the copy-on-write path, leave the clone bitwise
    /// untouched, and still produce the exact same posterior as an
    /// unshared in-place update.
    #[test]
    fn cow_update_leaves_clone_untouched(
        risks in prop::collection::vec(0.01f64..0.4, 2..=8),
        parts in 1usize..=4,
        seed in proptest::arbitrary::any::<u64>(),
        outcome in proptest::arbitrary::any::<bool>(),
    ) {
        let e = engine();
        let n = risks.len();
        let dense0 = Prior::from_risks(&risks).to_dense();
        let mut shared = ShardedPosterior::from_dense(&dense0, parts);
        let snapshot = shared.clone();
        let snapshot_before = snapshot.to_dense(&e);
        let mut unshared = ShardedPosterior::from_dense(&dense0, parts);
        let model = BinaryDilutionModel::pcr_like();
        let pool = pool_from_seed(seed, n);

        let za = shared.update(&e, &model, pool, outcome).unwrap();
        let jobs = e.metrics().jobs();
        match jobs.last().unwrap().variant {
            StageVariant::InPlace { unique, cow } => {
                prop_assert_eq!(unique, 0, "every partition was shared with the clone");
                prop_assert_eq!(cow, shared.num_partitions());
            }
            other => prop_assert!(false, "expected in-place stage, got {}", other),
        }
        // The clone still sees the prior, bit for bit.
        assert_bitwise_eq(snapshot.to_dense(&e).probs(), snapshot_before.probs(), "clone");
        // The COW result is identical to the unshared (truly in-place) one.
        let zb = unshared.update(&e, &model, pool, outcome).unwrap();
        prop_assert_eq!(za.to_bits(), zb.to_bits());
        assert_bitwise_eq(
            shared.to_dense(&e).probs(),
            unshared.to_dense(&e).probs(),
            "cow vs unique",
        );
    }
}
