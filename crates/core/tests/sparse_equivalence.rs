//! Property: with pruning disabled (`ε = 0`), the sparse session is
//! observationally equivalent to the dense session over whole closed-loop
//! episodes — same selected pools, same classifications, matching evidence
//! and marginals — for arbitrary priors and arbitrary (deterministic)
//! assay outcomes. This pins the sparse representation's arithmetic to the
//! dense reference before pruning enters the picture.

use proptest::prelude::*;

use sbgt::{SbgtConfig, SbgtSession, SparseSession};
use sbgt_bayes::Prior;
use sbgt_lattice::State;
use sbgt_response::{BinaryDilutionModel, BinaryOutcomeModel};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
}

/// Deterministic virtual lab: a pure hash of (seed, test index, pool)
/// thresholded against the model's positive probability, so both sessions
/// see the exact same outcome stream without any shared RNG state.
fn lab_outcome(
    seed: u64,
    test_index: usize,
    pool: State,
    truth: State,
    model: &BinaryDilutionModel,
) -> bool {
    let mut x = seed
        ^ (test_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ pool.bits().wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    u < model.positive_prob(truth.positives_in(pool), pool.rank())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unpruned_sparse_session_tracks_dense_through_whole_episodes(
        risks in prop::collection::vec(0.005f64..0.3, 2..=8),
        truth_bits in any::<u64>(),
        lab_seed in any::<u64>(),
    ) {
        let n = risks.len();
        let truth = State(truth_bits & State::full(n).bits());
        let model = BinaryDilutionModel::pcr_like();
        let cfg = SbgtConfig::default().serial();
        let mut dense = SbgtSession::new(Prior::from_risks(&risks), model, cfg);
        let mut sparse = SparseSession::new(Prior::from_risks(&risks), model, cfg, 0.0).unwrap();

        let mut tests = 0usize;
        for _round in 0..cfg.max_stages {
            let cd = dense.classify();
            let cs = sparse.classify();
            prop_assert_eq!(&cd.statuses, &cs.statuses, "classifications diverged");
            if cd.is_terminal() {
                break;
            }
            let sel_d = dense.select_next();
            let sel_s = sparse.select_next();
            match (sel_d, sel_s) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.pool, b.pool, "selected pools diverged");
                    let outcome = lab_outcome(lab_seed, tests, a.pool, truth, &model);
                    tests += 1;
                    let zd = dense.observe(a.pool, outcome);
                    let zs = sparse.observe(a.pool, outcome);
                    match (zd, zs) {
                        (Ok(zd), Ok(zs)) => prop_assert!(
                            close(zd, zs),
                            "evidence diverged: {} vs {}", zd, zs
                        ),
                        // An impossible observation must be impossible in
                        // both representations.
                        (Err(_), Err(_)) => break,
                        (d, s) => prop_assert!(false, "error asymmetry: {:?} vs {:?}", d, s),
                    }
                }
                (d, s) => prop_assert!(false, "selection asymmetry: {:?} vs {:?}", d, s),
            }
            for (a, b) in dense.marginals().iter().zip(sparse.marginals()) {
                prop_assert!(close(*a, b), "marginals diverged: {} vs {}", a, b);
            }
            prop_assert_eq!(dense.history(), sparse.history());
        }
        // Nothing was ever pruned, so the sparse session retains all mass.
        prop_assert!(close(sparse.pruned_mass(), 0.0));
        prop_assert!(close(sparse.posterior().total() + sparse.pruned_mass(), 1.0));
    }
}
