//! Disabled-telemetry overhead bound, by decomposition.
//!
//! Tracing off must cost ≤ ~2% of a fused BHA round. An A/B wall-clock
//! comparison of two full runs is hopelessly noisy at that resolution on
//! shared CI hardware, so this measures the two factors directly:
//!
//! 1. the cost of one disabled instrumentation hook (an atomic load and
//!    a compare — what every `enabled_at` site pays when recording is
//!    off), amortized over millions of calls, and
//! 2. the wall time of one fused round on a realistically-sized lattice,
//!
//! then asserts `hooks_per_round × hook_cost ≤ 2% × round_time` with a
//! generous hook budget (64 per round; the real loop has well under 20:
//! two in `run_stage_with`, a handful in the session and service loops,
//! and zero per task — the per-attempt context is `None` when disabled).
//!
//! Gated like the bench smoke: meaningless under an unoptimized build, so
//! it only measures when `SBGT_BENCH_SMOKE=1` and skips in debug profiles.

use std::hint::black_box;
use std::time::Instant;

use sbgt::{SbgtConfig, ShardedSession};
use sbgt_bayes::Prior;
use sbgt_engine::obs::TraceLevel;
use sbgt_engine::{Engine, EngineConfig, ObsConfig};
use sbgt_lattice::State;
use sbgt_response::BinaryDilutionModel;

/// Hooks charged to one round — a deliberate overestimate.
const HOOKS_PER_ROUND: u64 = 64;
const HOOK_SAMPLES: u64 = 4_000_000;

#[test]
fn disabled_tracing_costs_under_two_percent_of_a_round() {
    if std::env::var("SBGT_BENCH_SMOKE").is_err() {
        eprintln!("skipping: set SBGT_BENCH_SMOKE=1 to measure overhead");
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("skipping: overhead bound is only meaningful in release builds");
        return;
    }

    let e = Engine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_obs(ObsConfig::off()),
    );

    // Factor 1: the disabled hook. `enabled_at` on an off recorder is the
    // exact branch every instrumentation site takes when tracing is off.
    let rec = e.obs();
    let start = Instant::now();
    let mut live = 0u64;
    for _ in 0..HOOK_SAMPLES {
        if black_box(rec.enabled_at(black_box(TraceLevel::Spans))) {
            live += 1;
        }
    }
    let hook_ns = start.elapsed().as_nanos() as f64 / HOOK_SAMPLES as f64;
    assert_eq!(live, 0, "recorder must be off");

    // Factor 2: one fused round on a 2^14-state lattice.
    let n = 14usize;
    let risks: Vec<f64> = (0..n).map(|i| 0.02 + 0.015 * (i as f64)).collect();
    let truth = State::from_subjects([3usize, 9]);
    let mut session = ShardedSession::new(
        &e,
        Prior::from_risks(&risks),
        BinaryDilutionModel::pcr_like(),
        SbgtConfig::default(),
        4,
    );
    let mut rounds = 0u32;
    let start = Instant::now();
    while rounds < 6 {
        if session
            .run_round(&e, |pool| truth.intersects(pool))
            .finished()
            .is_some()
        {
            break;
        }
        rounds += 1;
    }
    assert!(rounds > 0, "cohort classified before any round was timed");
    let round_ns = start.elapsed().as_nanos() as f64 / f64::from(rounds);

    let overhead = HOOKS_PER_ROUND as f64 * hook_ns;
    let ratio = overhead / round_ns;
    eprintln!(
        "hook {hook_ns:.2}ns × {HOOKS_PER_ROUND} = {overhead:.0}ns \
         vs round {round_ns:.0}ns → {:.4}%",
        ratio * 100.0
    );
    assert!(
        ratio <= 0.02,
        "disabled tracing costs {:.3}% of a fused round (budget 2%)",
        ratio * 100.0
    );
}
