//! Chaos tests: the posterior hot loop under deterministic fault
//! injection.
//!
//! Every stage variant of the sharded posterior — immutable
//! (`map_partitions`), in-place on uniquely-owned shards, in-place under a
//! live clone (COW), and the fused superstage — is run with seeded panics,
//! injected stragglers, and poisoned results, and must recover to a
//! posterior **bit-for-bit identical** to a fault-free run. Recovery never
//! changes values because every retried or speculative attempt re-runs the
//! same pure closure against pristine partition input and the driver
//! reduces partials in task-index order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use proptest::prelude::*;
use sbgt::{SbgtConfig, ShardedPosterior, ShardedSession};
use sbgt_bayes::Prior;
use sbgt_engine::{ChaosConfig, Engine, EngineConfig, FaultPlan, RetryPolicy, SpeculationConfig};
use sbgt_lattice::State;
use sbgt_response::BinaryDilutionModel;
use sbgt_select::{select_stage_lookahead, LookaheadConfig, Selection};

/// Fault-free reference engine.
fn clean_engine() -> Engine {
    Engine::new(EngineConfig::default().with_threads(2))
}

/// Fault-tolerant engine: 2 attempts per task, which dominates every plan
/// in this file (scheduled faults hit attempt 0 only; seeded campaigns use
/// the default `max_faulted_attempts = 1`), so every run must survive.
fn ft_engine(threads: usize) -> Engine {
    Engine::new(
        EngineConfig::default()
            .with_threads(threads)
            .with_retry(RetryPolicy::clamped(2)),
    )
}

/// Derive a non-empty pool over `n` subjects from a free u64 seed.
fn pool_from_seed(seed: u64, n: usize) -> State {
    let space = (1u64 << n) - 1;
    let mask = (seed % space) + 1;
    State::from_subjects((0..n).filter(|&i| mask >> i & 1 == 1))
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: state {i} differs ({x} vs {y})"
        );
    }
}

/// Every observable of the stage-variant sequence, for exact comparison
/// between a clean and a chaotic run.
struct SequenceOutput {
    evidences: Vec<f64>,
    fused_marginals: Vec<f64>,
    fused_masses: Vec<f64>,
    final_dense: Vec<f64>,
    immutable_dense: Vec<f64>,
    cow_snapshot_dense: Vec<f64>,
}

/// One update through each stage variant: immutable, in-place on unique
/// handles, in-place under a live clone (COW), and the fused superstage.
fn run_stage_variant_sequence(e: &Engine) -> SequenceOutput {
    let risks = [0.02, 0.08, 0.15, 0.05, 0.3, 0.11, 0.07, 0.22];
    let n = risks.len();
    let dense0 = Prior::from_risks(&risks).to_dense();
    let model = BinaryDilutionModel::pcr_like();

    // Immutable variant (`map_partitions`).
    let mut immutable = ShardedPosterior::from_dense(&dense0, 4);
    let z1 = immutable
        .update_immutable(e, &model, pool_from_seed(13, n), true)
        .unwrap();

    // In-place on uniquely-owned shards.
    let mut post = ShardedPosterior::from_dense(&dense0, 4);
    let z2 = post
        .update(e, &model, pool_from_seed(29, n), false)
        .unwrap();

    // In-place under a live clone: the copy-on-write case.
    let snapshot = post.clone();
    let z3 = post.update(e, &model, pool_from_seed(71, n), true).unwrap();

    // Fused BHA superstage.
    let order: Vec<usize> = (0..n).collect();
    let round = post
        .fused_round(e, &model, pool_from_seed(97, n), false, &order)
        .unwrap();

    SequenceOutput {
        evidences: vec![z1, z2, z3, round.evidence],
        fused_marginals: round.marginals,
        fused_masses: round.prefix_negative_masses,
        final_dense: post.to_dense(e).probs().to_vec(),
        immutable_dense: immutable.to_dense(e).probs().to_vec(),
        cow_snapshot_dense: snapshot.to_dense(e).probs().to_vec(),
    }
}

/// Acceptance: at least one panic and one straggler injected into every
/// stage variant; the run completes with bit-for-bit-equal posteriors and
/// nonzero retries and speculative wins in the metrics.
#[test]
fn every_stage_variant_survives_panic_and_straggler_bit_for_bit() {
    let clean = run_stage_variant_sequence(&clean_engine());

    let e = Engine::new(
        EngineConfig::default()
            .with_threads(4)
            .with_retry(RetryPolicy::clamped(2))
            .with_speculation(SpeculationConfig {
                quantile: 0.75,
                multiplier: 1.5,
                min_straggler: Duration::from_millis(10),
            }),
    );
    let straggle = Duration::from_millis(150);
    // `update:in-place` runs twice (unique then COW); scheduled faults
    // match every occurrence of the stage name, so both get hit.
    e.set_fault_plan(
        FaultPlan::new()
            .panic_at("map_partitions", 0, 0)
            .delay_at("map_partitions", 3, 0, straggle)
            .panic_at("update:in-place", 1, 0)
            .delay_at("update:in-place", 2, 0, straggle)
            .panic_at("fused-round:in-place", 0, 0)
            .delay_at("fused-round:in-place", 3, 0, straggle),
    );
    let chaotic = run_stage_variant_sequence(&e);

    assert_bitwise_eq(&clean.evidences, &chaotic.evidences, "evidences");
    assert_bitwise_eq(
        &clean.fused_marginals,
        &chaotic.fused_marginals,
        "fused marginals",
    );
    assert_bitwise_eq(&clean.fused_masses, &chaotic.fused_masses, "fused masses");
    assert_bitwise_eq(&clean.final_dense, &chaotic.final_dense, "final posterior");
    assert_bitwise_eq(
        &clean.immutable_dense,
        &chaotic.immutable_dense,
        "immutable posterior",
    );
    assert_bitwise_eq(
        &clean.cow_snapshot_dense,
        &chaotic.cow_snapshot_dense,
        "cow snapshot",
    );

    let totals = e.metrics().fault_totals();
    // One panic + one delay per stage occurrence: map_partitions once,
    // update:in-place twice, fused-round:in-place once.
    assert_eq!(totals.injected_panics, 4, "{totals:?}");
    assert_eq!(totals.injected_delays, 4, "{totals:?}");
    assert_eq!(totals.retries, 4, "every injected panic was retried");
    assert!(
        totals.speculative_wins >= 1,
        "no speculative duplicate beat its 150ms straggler: {totals:?}"
    );
    assert!(totals.speculative_launched >= totals.speculative_wins);
}

/// Retry exhaustion: a task that panics on **every** attempt fails the
/// stage with the stage's name and the attempt count, and the posterior is
/// left pristine — no partial results leak into the dataset.
#[test]
fn permanent_panic_surfaces_stage_name_and_leaks_nothing() {
    let e = ft_engine(2);
    // Both attempts of task 0 die: retry budget (2) exhausted.
    e.set_fault_plan(FaultPlan::new().panic_at("update:in-place", 0, 0).panic_at(
        "update:in-place",
        0,
        1,
    ));
    let risks = [0.05, 0.1, 0.2, 0.15, 0.08];
    let dense0 = Prior::from_risks(&risks).to_dense();
    let model = BinaryDilutionModel::pcr_like();
    let mut post = ShardedPosterior::from_dense(&dense0, 2);
    let before = post.to_dense(&e).probs().to_vec();
    let total_before = post.total();

    let panic_payload = catch_unwind(AssertUnwindSafe(|| {
        let _ = post.update(&e, &model, pool_from_seed(5, risks.len()), true);
    }))
    .unwrap_err();
    let message = panic_payload
        .downcast_ref::<String>()
        .expect("string panic payload")
        .clone();
    assert!(
        message.contains("stage 'update:in-place'"),
        "missing stage name: {message}"
    );
    assert!(
        message.contains("after 2 attempt(s)"),
        "missing attempt count: {message}"
    );

    // The posterior is exactly as it was: pristine shards, pristine total.
    assert_bitwise_eq(
        post.to_dense(&e).probs(),
        &before,
        "posterior after failure",
    );
    assert_eq!(post.total().to_bits(), total_before.to_bits());
    let job = e.metrics().jobs().pop().unwrap();
    assert!(!job.succeeded);
    assert_eq!(job.faults.injected_panics, 2);
    assert_eq!(job.faults.retries, 1);
}

/// Tracing must not perturb the chaos schedule: fault draws are keyed by
/// the stage sequence, so a fully-traced chaotic run must inject the
/// exact same faults and land on the exact same bits as an untraced
/// chaotic run with the same campaign.
#[test]
fn full_tracing_never_shifts_the_fault_schedule() {
    use sbgt_engine::ObsConfig;
    let campaign = || {
        FaultPlan::seeded(
            ChaosConfig::new(7177)
                .with_panic_rate(0.2)
                .with_delay_rate(0.05, Duration::from_millis(1))
                .with_poison_rate(0.1),
        )
    };
    let run = |obs: ObsConfig| {
        let e = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_retry(RetryPolicy::clamped(2))
                .with_obs(obs),
        );
        e.set_fault_plan(campaign());
        let out = run_stage_variant_sequence(&e);
        (out, e.metrics().fault_totals(), e)
    };
    let (untraced, untraced_faults, _e1) = run(ObsConfig::off());
    let (traced, traced_faults, e2) = run(ObsConfig::full());

    assert_eq!(untraced_faults, traced_faults, "fault schedule shifted");
    assert!(
        untraced_faults.injected_total() > 0,
        "campaign never fired: {untraced_faults:?}"
    );
    assert_bitwise_eq(&untraced.evidences, &traced.evidences, "evidences");
    assert_bitwise_eq(
        &untraced.final_dense,
        &traced.final_dense,
        "final posterior",
    );
    assert_bitwise_eq(
        &untraced.fused_marginals,
        &traced.fused_marginals,
        "fused marginals",
    );
    // The traced run must have captured the injected faults as marks and
    // the failed attempts as failed task spans.
    let rec = e2.obs();
    let snap = rec.snapshot();
    let events: Vec<_> = snap.all_events().collect();
    assert!(events
        .iter()
        .any(|ev| rec.name_of(ev.name).starts_with("fault:")));
    assert!(events.iter().any(|ev| ev.meta.failed));
}

/// A full sharded session driven to classification under a seeded random
/// campaign produces the identical outcome to a fault-free session:
/// same pools tested, same stage count, same classification, bitwise-equal
/// marginals.
#[test]
fn sharded_session_survives_seeded_campaign_identically() {
    let risks = [0.04, 0.12, 0.07, 0.2, 0.09, 0.16];
    let model = BinaryDilutionModel::pcr_like();
    let config = SbgtConfig::default();
    // Subjects 1 and 3 are infected; a pool is positive iff it hits one.
    let infected = State::from_subjects([1usize, 3]);
    let lab = |pool: State| infected.intersects(pool);

    let run = |e: &Engine| {
        let mut session = ShardedSession::new(e, Prior::from_risks(&risks), model, config, 4);
        let outcome = session.run_to_classification(e, lab);
        (outcome, session.history().to_vec())
    };

    let (clean_outcome, clean_history) = run(&clean_engine());

    let e = ft_engine(2);
    e.set_fault_plan(FaultPlan::seeded(
        ChaosConfig::new(2024)
            .with_panic_rate(0.15)
            .with_delay_rate(0.05, Duration::from_millis(2))
            .with_poison_rate(0.05),
    ));
    let (chaos_outcome, chaos_history) = run(&e);

    assert_eq!(clean_history, chaos_history, "different pools were tested");
    assert_eq!(clean_outcome.tests, chaos_outcome.tests);
    assert_eq!(clean_outcome.stages, chaos_outcome.stages);
    assert_eq!(clean_outcome.classification, chaos_outcome.classification);
    assert_bitwise_eq(
        &clean_outcome.marginals,
        &chaos_outcome.marginals,
        "session marginals",
    );
    // The campaign must actually have fired for this test to mean anything.
    let totals = e.metrics().fault_totals();
    assert!(
        totals.injected_total() > 0,
        "campaign never fired: {totals:?}"
    );
    assert_eq!(
        totals.retries,
        totals.injected_panics + totals.injected_poisons,
        "every failed attempt was retried exactly once"
    );
}

/// Build a sharded session over `parts` partitions and shape its posterior
/// with a few scripted observations so selection runs on a non-trivial
/// distribution.
fn warmed_session(e: &Engine, risks: &[f64], parts: usize) -> ShardedSession<BinaryDilutionModel> {
    let model = BinaryDilutionModel::pcr_like();
    let mut session = ShardedSession::new(
        e,
        Prior::from_risks(risks),
        model,
        SbgtConfig::default(),
        parts,
    );
    let n = risks.len();
    for (i, seed) in [13u64, 29, 71].into_iter().enumerate() {
        session
            .observe(e, pool_from_seed(seed, n), i % 2 == 0)
            .unwrap();
    }
    session
}

/// Pools must match bit-for-bit; masses/distances to 1e-9 (the sharded
/// aggregate and the serial baseline group their float sums differently).
fn assert_selections_match_serial(sharded: &[Selection], serial: &[Selection]) {
    assert_eq!(sharded.len(), serial.len(), "stage width mismatch");
    for (a, b) in sharded.iter().zip(serial) {
        assert_eq!(a.pool, b.pool, "different pool selected");
        assert!(
            (a.negative_mass - b.negative_mass).abs() < 1e-9,
            "negative mass drifted: {} vs {}",
            a.negative_mass,
            b.negative_mass
        );
        assert!(
            (a.distance - b.distance).abs() < 1e-9,
            "distance drifted: {} vs {}",
            a.distance,
            b.distance
        );
    }
}

/// The engine-sharded branch-fused stage selection picks exactly the pools
/// the serial clone-per-branch rule picks, on a clean engine.
#[test]
fn sharded_lookahead_selection_matches_serial_rule() {
    let e = clean_engine();
    let risks = [0.04, 0.12, 0.07, 0.2, 0.09, 0.16, 0.03];
    let session = warmed_session(&e, &risks, 4);
    let order = session.eligible_order();
    let dense = session.posterior().to_dense(&e);

    for width in 1..=4usize {
        let cfg = LookaheadConfig {
            width,
            max_pool_size: 4,
        };
        let sharded = session.select_stage(&e, &cfg).unwrap();
        let serial =
            select_stage_lookahead(&dense, &BinaryDilutionModel::pcr_like(), &order, &cfg).unwrap();
        assert_selections_match_serial(&sharded, &serial);
    }
}

/// Injected panics and stragglers on the `lookahead:select` stage never
/// change a selection: every retried attempt re-runs the same pure
/// histogram closure against pristine shard input, so the recovered stage
/// is **bit-for-bit** the fault-free stage.
#[test]
fn lookahead_selection_survives_panic_and_straggler_bit_for_bit() {
    let risks = [0.04, 0.12, 0.07, 0.2, 0.09, 0.16, 0.03];
    let cfg = LookaheadConfig {
        width: 3,
        max_pool_size: 4,
    };

    let clean_e = clean_engine();
    let clean = warmed_session(&clean_e, &risks, 4)
        .select_stage(&clean_e, &cfg)
        .unwrap();

    let e = ft_engine(4);
    // A width-3 stage runs 3 greedy steps → 3 `lookahead:select` jobs;
    // scheduled faults match every occurrence of the stage name.
    e.set_fault_plan(
        FaultPlan::new()
            .panic_at("lookahead:select", 0, 0)
            .delay_at("lookahead:select", 2, 0, Duration::from_millis(20))
            .panic_at("lookahead:select", 3, 0),
    );
    let chaotic = warmed_session(&e, &risks, 4)
        .select_stage(&e, &cfg)
        .unwrap();

    assert_eq!(clean.len(), chaotic.len(), "stage width mismatch");
    for (a, b) in clean.iter().zip(&chaotic) {
        assert_eq!(a.pool, b.pool, "fault recovery changed the pool");
        assert_eq!(a.negative_mass.to_bits(), b.negative_mass.to_bits());
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }

    let totals = e.metrics().fault_totals();
    assert_eq!(totals.injected_panics, 6, "{totals:?}"); // 3 steps × 2 scheduled panics
    assert_eq!(totals.retries, totals.injected_panics);
    assert!(totals.injected_delays >= 1, "{totals:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random cohorts, widths, and partitionings: the engine-sharded
    /// look-ahead stage under a seeded chaos campaign selects the same
    /// pools as both its own fault-free run (bit-for-bit) and the serial
    /// clone-per-branch rule (pools exact, masses to 1e-9).
    #[test]
    fn lookahead_selection_immune_to_seeded_campaign(
        risks in prop::collection::vec(0.01f64..0.4, 2..=7),
        width in 1usize..=4,
        parts in 1usize..=4,
        campaign_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let cfg = LookaheadConfig { width, max_pool_size: 4 };

        let clean_e = clean_engine();
        let clean_session = warmed_session(&clean_e, &risks, parts);
        let clean = clean_session.select_stage(&clean_e, &cfg).unwrap();

        let chaos_e = ft_engine(2);
        chaos_e.set_fault_plan(FaultPlan::seeded(
            ChaosConfig::new(campaign_seed)
                .with_panic_rate(0.25)
                .with_delay_rate(0.1, Duration::from_millis(1))
                .with_poison_rate(0.1),
        ));
        let chaos = warmed_session(&chaos_e, &risks, parts)
            .select_stage(&chaos_e, &cfg)
            .unwrap();

        prop_assert_eq!(clean.len(), chaos.len());
        for (a, b) in clean.iter().zip(&chaos) {
            prop_assert_eq!(a.pool, b.pool);
            prop_assert_eq!(a.negative_mass.to_bits(), b.negative_mass.to_bits());
            prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }

        let serial = select_stage_lookahead(
            &clean_session.posterior().to_dense(&clean_e),
            &BinaryDilutionModel::pcr_like(),
            &clean_session.eligible_order(),
            &cfg,
        ).unwrap();
        assert_selections_match_serial(&clean, &serial);
    }

    /// Random seeded campaigns over random cohorts: panics, stragglers,
    /// and poisons at every stage variant never change a single bit of the
    /// posterior or the evidences.
    #[test]
    fn seeded_campaign_never_changes_posterior_bits(
        risks in prop::collection::vec(0.01f64..0.4, 2..=7),
        parts in 1usize..=4,
        campaign_seed in proptest::arbitrary::any::<u64>(),
        obs in prop::collection::vec((proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<bool>()), 1..=4),
    ) {
        let n = risks.len();
        let dense0 = Prior::from_risks(&risks).to_dense();
        let model = BinaryDilutionModel::pcr_like();

        let clean_e = clean_engine();
        let chaos_e = ft_engine(2);
        chaos_e.set_fault_plan(FaultPlan::seeded(
            ChaosConfig::new(campaign_seed)
                .with_panic_rate(0.25)
                .with_delay_rate(0.1, Duration::from_millis(1))
                .with_poison_rate(0.1),
        ));

        let mut clean_post = ShardedPosterior::from_dense(&dense0, parts);
        let mut chaos_post = ShardedPosterior::from_dense(&dense0, parts);
        let mut clean_imm = ShardedPosterior::from_dense(&dense0, parts);
        let mut chaos_imm = ShardedPosterior::from_dense(&dense0, parts);
        let order: Vec<usize> = (0..n).collect();

        for (i, &(seed, outcome)) in obs.iter().enumerate() {
            let pool = pool_from_seed(seed, n);
            // Rotate through the stage variants so each proptest case
            // exercises several under the campaign.
            match i % 3 {
                0 => {
                    let a = clean_post.update(&clean_e, &model, pool, outcome);
                    let b = chaos_post.update(&chaos_e, &model, pool, outcome);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    if let (Ok(za), Ok(zb)) = (a, b) {
                        prop_assert_eq!(za.to_bits(), zb.to_bits());
                    } else {
                        break;
                    }
                }
                1 => {
                    let a = clean_post.fused_round(&clean_e, &model, pool, outcome, &order);
                    let b = chaos_post.fused_round(&chaos_e, &model, pool, outcome, &order);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    match (a, b) {
                        (Ok(ra), Ok(rb)) => {
                            prop_assert_eq!(ra.evidence.to_bits(), rb.evidence.to_bits());
                            assert_bitwise_eq(&ra.marginals, &rb.marginals, "fused marginals");
                            assert_bitwise_eq(
                                &ra.prefix_negative_masses,
                                &rb.prefix_negative_masses,
                                "fused masses",
                            );
                        }
                        _ => break,
                    }
                }
                _ => {
                    let a = clean_imm.update_immutable(&clean_e, &model, pool, outcome);
                    let b = chaos_imm.update_immutable(&chaos_e, &model, pool, outcome);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    if let (Ok(za), Ok(zb)) = (a, b) {
                        prop_assert_eq!(za.to_bits(), zb.to_bits());
                    } else {
                        break;
                    }
                }
            }
            prop_assert_eq!(clean_post.total().to_bits(), chaos_post.total().to_bits());
            assert_bitwise_eq(
                clean_post.to_dense(&clean_e).probs(),
                chaos_post.to_dense(&chaos_e).probs(),
                "chaos vs clean posterior",
            );
            assert_bitwise_eq(
                clean_imm.to_dense(&clean_e).probs(),
                chaos_imm.to_dense(&chaos_e).probs(),
                "chaos vs clean immutable posterior",
            );
        }
    }
}
