//! Lattice states as bitmasks.

use serde::{Deserialize, Serialize};

/// Maximum cohort size representable by the dense lattice machinery.
///
/// States are `u64` bitmasks, and the dense posterior is an array of `2^N`
/// doubles, so the practical dense ceiling is memory (`N = 30` is 8 GiB);
/// 48 leaves headroom for sparse representations while keeping state
/// arithmetic in one word.
pub const MAX_SUBJECTS: usize = 48;

/// One lattice state: the set of subjects hypothesized positive, as a
/// bitmask (bit `i` set ⇔ subject `i` positive). The integer value of the
/// mask doubles as the state's index into dense posterior arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct State(pub u64);

impl State {
    /// The bottom of the lattice: no subject positive.
    pub const EMPTY: State = State(0);

    /// State from an iterator of subject indices.
    ///
    /// # Panics
    /// Panics if any index is `>= MAX_SUBJECTS`.
    pub fn from_subjects<I: IntoIterator<Item = usize>>(subjects: I) -> State {
        let mut mask = 0u64;
        for s in subjects {
            assert!(s < MAX_SUBJECTS, "subject index {s} out of range");
            mask |= 1u64 << s;
        }
        State(mask)
    }

    /// The top of the lattice for a cohort of `n`: all subjects positive.
    pub fn full(n: usize) -> State {
        assert!(n <= MAX_SUBJECTS);
        if n == 0 {
            State(0)
        } else {
            State(u64::MAX >> (64 - n))
        }
    }

    /// Raw bitmask.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Dense-array index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Number of positive subjects (the state's rank in the lattice).
    #[inline]
    pub fn rank(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether subject `i` is positive in this state.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Number of positives this state places in pool `pool` —
    /// `|s ∩ A|`, the quantity every dilution-aware likelihood is indexed by.
    #[inline]
    pub fn positives_in(self, pool: State) -> u32 {
        (self.0 & pool.0).count_ones()
    }

    /// Lattice meet: intersection.
    #[inline]
    pub fn meet(self, other: State) -> State {
        State(self.0 & other.0)
    }

    /// Lattice join: union.
    #[inline]
    pub fn join(self, other: State) -> State {
        State(self.0 | other.0)
    }

    /// Complement within a cohort of `n` subjects.
    #[inline]
    pub fn complement(self, n: usize) -> State {
        State(!self.0 & State::full(n).0)
    }

    /// Set-inclusion partial order: `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: State) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two states are comparable in the lattice order.
    #[inline]
    pub fn comparable(self, other: State) -> bool {
        self.is_subset_of(other) || other.is_subset_of(self)
    }

    /// Whether `other` covers `self`: `self ⊂ other` and they differ in
    /// exactly one subject.
    #[inline]
    pub fn covered_by(self, other: State) -> bool {
        self.is_subset_of(other) && (self.0 ^ other.0).count_ones() == 1
    }

    /// Add subject `i` (join with the atom for `i`).
    #[inline]
    pub fn with(self, i: usize) -> State {
        State(self.0 | (1u64 << i))
    }

    /// Remove subject `i`.
    #[inline]
    pub fn without(self, i: usize) -> State {
        State(self.0 & !(1u64 << i))
    }

    /// Iterate the indices of positive subjects, ascending.
    pub fn subjects(self) -> SubjectIter {
        SubjectIter(self.0)
    }

    /// Whether this state intersects `pool` (the pool contains at least one
    /// positive sample under this hypothesis).
    #[inline]
    pub fn intersects(self, pool: State) -> bool {
        self.0 & pool.0 != 0
    }

    /// Whether the state is the empty (all-negative) state.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for s in self.subjects() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the set bits of a state, ascending.
#[derive(Debug, Clone)]
pub struct SubjectIter(u64);

impl Iterator for SubjectIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear lowest set bit
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SubjectIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = State::from_subjects([0, 2, 5]);
        assert_eq!(s.bits(), 0b100101);
        assert_eq!(s.rank(), 3);
        assert!(s.contains(0) && s.contains(2) && s.contains(5));
        assert!(!s.contains(1));
        assert_eq!(s.index(), 37);
        assert_eq!(s.subjects().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(s.to_string(), "{0,2,5}");
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(State::full(0), State::EMPTY);
        assert_eq!(State::full(3).bits(), 0b111);
        assert_eq!(State::full(MAX_SUBJECTS).rank() as usize, MAX_SUBJECTS);
        assert!(State::EMPTY.is_empty());
        assert!(!State::full(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_subjects_range_check() {
        let _ = State::from_subjects([MAX_SUBJECTS]);
    }

    #[test]
    fn lattice_ops() {
        let a = State::from_subjects([0, 1]);
        let b = State::from_subjects([1, 2]);
        assert_eq!(a.meet(b), State::from_subjects([1]));
        assert_eq!(a.join(b), State::from_subjects([0, 1, 2]));
        assert_eq!(a.complement(4), State::from_subjects([2, 3]));
    }

    #[test]
    fn order_relations() {
        let small = State::from_subjects([1]);
        let big = State::from_subjects([1, 3]);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(small.comparable(big));
        assert!(small.covered_by(big));
        assert!(!small.covered_by(State::from_subjects([1, 3, 4])));
        let other = State::from_subjects([2]);
        assert!(!small.comparable(other));
        assert!(State::EMPTY.is_subset_of(small));
    }

    #[test]
    fn positives_in_pool() {
        let s = State::from_subjects([0, 2, 4]);
        let pool = State::from_subjects([2, 3, 4, 5]);
        assert_eq!(s.positives_in(pool), 2);
        assert!(s.intersects(pool));
        assert!(!s.intersects(State::from_subjects([1, 3])));
    }

    #[test]
    fn with_without() {
        let s = State::EMPTY.with(3).with(7);
        assert_eq!(s, State::from_subjects([3, 7]));
        assert_eq!(s.without(3), State::from_subjects([7]));
        assert_eq!(s.without(5), s); // removing absent subject is a no-op
    }

    #[test]
    fn subject_iter_len() {
        let s = State::from_subjects([0, 10, 40]);
        assert_eq!(s.subjects().len(), 3);
        assert_eq!(s.subjects().collect::<Vec<_>>(), vec![0, 10, 40]);
        assert_eq!(State::EMPTY.subjects().count(), 0);
    }
}
