//! # sbgt-lattice — Boolean-lattice state space for Bayesian group testing
//!
//! The Bayesian group-testing framework of Tatsuoka, Chen & Lu maintains a
//! posterior distribution over the Boolean lattice `2^N`: each *state*
//! `s ⊆ {0..N-1}` is one hypothesis about which of the `N` subjects are
//! infected, ordered by set inclusion. The lattice order is load-bearing:
//! a pooled test on pool `A` partitions the state space into the *down-set*
//! `{s : s ∩ A = ∅}` (states under which the pool contains no positive
//! sample) and its complement, and the Bayesian Halving Algorithm picks the
//! pool whose down-set posterior mass is nearest ½.
//!
//! This crate provides:
//!
//! * [`State`] — a state as a `u64` bitmask with the lattice operations
//!   (meet/join/complement, inclusion, rank, covers);
//! * [`order`] — order-theoretic helpers (up-sets, down-sets, comparability);
//! * [`iter`] — subset/superset/rank iterators used by exhaustive selection
//!   and by tests as ground truth;
//! * [`DensePosterior`] — the `Vec<f64>`-of-length-`2^N` posterior with the
//!   serial reference kernels (multiply-by-likelihood, normalize, marginals,
//!   down-set masses, entropy, top-k);
//! * [`SparsePosterior`] — the pruned representation (HiBGT-style) that
//!   drops negligible-mass states;
//! * [`kernels`] — the data-parallel versions of every dense kernel, chunked
//!   with rayon; these are what SBGT's distributed operators lower to;
//! * [`branch`] — the branch-fused look-ahead selection kernel
//!   ([`LookaheadKernel`]) that accumulates all `2^j` outcome-branch
//!   prefix-mass histograms in one traversal, shared by the serial, rayon,
//!   and engine-sharded selection paths.
//!
//! Throughout, the state integer doubles as the array index, so dense
//! kernels are gather-free linear passes — the layout property that lets the
//! partition-parallel engine shard the lattice by contiguous index ranges.

pub mod bigstate;
pub mod branch;
pub mod chains;
pub mod dense;
pub mod hybrid;
pub mod iter;
pub mod kernels;
pub mod logdomain;
pub mod order;
pub mod simd;
pub mod sparse;
pub mod state;
pub mod transform;

pub use bigstate::BigState;
pub use branch::{BranchPool, LookaheadKernel};
pub use chains::{ChainPosterior, ChainShape};
pub use dense::DensePosterior;
pub use hybrid::{HybridPosterior, SparseSwitch};
pub use logdomain::LogPosterior;
pub use sparse::SparsePosterior;
pub use state::{State, MAX_SUBJECTS};

/// Number of lattice states for a cohort of `n` subjects (`2^n`).
///
/// # Panics
/// Panics if `n > MAX_SUBJECTS` (the dense representation would not fit an
/// address space / `u64` mask).
pub fn num_states(n: usize) -> usize {
    assert!(
        n <= MAX_SUBJECTS,
        "cohort of {n} subjects exceeds MAX_SUBJECTS={MAX_SUBJECTS}"
    );
    1usize << n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_states_powers() {
        assert_eq!(num_states(0), 1);
        assert_eq!(num_states(1), 2);
        assert_eq!(num_states(10), 1024);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_SUBJECTS")]
    fn num_states_overflow_guard() {
        let _ = num_states(MAX_SUBJECTS + 1);
    }
}
