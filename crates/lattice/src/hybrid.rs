//! Adaptive dense→sparse posterior switching.
//!
//! Posterior mass concentrates onto a tiny support after a few informative
//! rounds (HiBGT's pruned-lattice observation), at which point the `Θ(2^N)`
//! dense traversal wastes almost all of its work on states carrying no
//! mass. [`HybridPosterior`] starts dense — where the SIMD kernels and the
//! sharded engine path are fastest — and switches to [`SparsePosterior`]
//! once the retained support falls below a configurable fraction of the
//! lattice ([`SparseSwitch`]). The switch is one-way: a posterior never
//! re-densifies (support only shrinks under further evidence, and the
//! pruned-mass record would be lost).

use crate::dense::DensePosterior;
use crate::sparse::SparsePosterior;

/// When (and how aggressively) a dense posterior converts to sparse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseSwitch {
    /// Switch when the retained support (states with mass above the prune
    /// cut) is at most this fraction of `2^N`. Must lie in `(0, 1]`.
    pub max_support_fraction: f64,
    /// Relative prune threshold applied at the switch and after every
    /// subsequent sparse update (`0.0` = keep all positive-mass states).
    /// Must lie in `[0, 1)`.
    pub prune_epsilon: f64,
}

impl Default for SparseSwitch {
    fn default() -> Self {
        // 1/64th of the lattice: late enough that the dense SIMD path has
        // done the heavy early rounds, early enough that the sparse tail of
        // a session runs in cache.
        SparseSwitch {
            max_support_fraction: 1.0 / 64.0,
            prune_epsilon: 1e-12,
        }
    }
}

impl SparseSwitch {
    /// `Err(reason)` when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.max_support_fraction > 0.0 && self.max_support_fraction <= 1.0) {
            return Err(format!(
                "max_support_fraction must lie in (0, 1], got {}",
                self.max_support_fraction
            ));
        }
        if !(0.0..1.0).contains(&self.prune_epsilon) {
            return Err(format!(
                "prune_epsilon must lie in [0, 1), got {}",
                self.prune_epsilon
            ));
        }
        Ok(())
    }
}

/// Number of states of `dense` whose mass exceeds the relative prune cut —
/// the support the posterior would retain if converted to sparse now.
pub fn retained_support(dense: &DensePosterior, epsilon: f64) -> usize {
    let total = dense.total();
    let cut = if total > 0.0 { epsilon * total } else { 0.0 };
    dense
        .probs()
        .iter()
        .filter(|&&p| p > cut && p > 0.0)
        .count()
}

/// A posterior that is dense until evidence concentrates it, sparse after.
#[derive(Debug, Clone, PartialEq)]
pub enum HybridPosterior {
    /// Early-session exhaustive representation.
    Dense(DensePosterior),
    /// Post-switch pruned representation.
    Sparse(SparsePosterior),
}

impl HybridPosterior {
    /// Start dense (the only entry point — switching is evidence-driven).
    pub fn new_dense(dense: DensePosterior) -> Self {
        HybridPosterior::Dense(dense)
    }

    /// Cohort size `N`.
    pub fn n_subjects(&self) -> usize {
        match self {
            HybridPosterior::Dense(d) => d.n_subjects(),
            HybridPosterior::Sparse(s) => s.n_subjects(),
        }
    }

    /// Whether the switch has happened.
    pub fn is_sparse(&self) -> bool {
        matches!(self, HybridPosterior::Sparse(_))
    }

    /// The sparse representation, when switched.
    pub fn as_sparse(&self) -> Option<&SparsePosterior> {
        match self {
            HybridPosterior::Sparse(s) => Some(s),
            HybridPosterior::Dense(_) => None,
        }
    }

    /// The dense representation, while unswitched.
    pub fn as_dense(&self) -> Option<&DensePosterior> {
        match self {
            HybridPosterior::Dense(d) => Some(d),
            HybridPosterior::Sparse(_) => None,
        }
    }

    /// Convert to sparse now if the retained support qualifies under
    /// `switch`; returns the retained support when the switch happens.
    /// No-op (returning `None`) when already sparse or still too spread.
    pub fn maybe_switch(&mut self, switch: &SparseSwitch) -> Option<usize> {
        let HybridPosterior::Dense(dense) = self else {
            return None;
        };
        let support = retained_support(dense, switch.prune_epsilon);
        let limit = switch.max_support_fraction * dense.len() as f64;
        if support as f64 > limit {
            return None;
        }
        *self = HybridPosterior::Sparse(SparsePosterior::from_dense(dense, switch.prune_epsilon));
        Some(support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;

    #[test]
    fn switch_config_is_validated() {
        assert!(SparseSwitch::default().validate().is_ok());
        for bad in [
            SparseSwitch {
                max_support_fraction: 0.0,
                ..SparseSwitch::default()
            },
            SparseSwitch {
                max_support_fraction: 1.5,
                ..SparseSwitch::default()
            },
            SparseSwitch {
                prune_epsilon: 1.0,
                ..SparseSwitch::default()
            },
            SparseSwitch {
                prune_epsilon: -0.1,
                ..SparseSwitch::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn stays_dense_while_spread_then_switches() {
        // Uniform posterior: full support, no switch.
        let mut h = HybridPosterior::new_dense(DensePosterior::new_uniform(6));
        let switch = SparseSwitch {
            max_support_fraction: 0.25,
            prune_epsilon: 1e-9,
        };
        assert_eq!(h.maybe_switch(&switch), None);
        assert!(!h.is_sparse());

        // Concentrate the mass onto a handful of states.
        let mut probs = vec![0.0f64; 64];
        probs[3] = 0.7;
        probs[12] = 0.2;
        probs[40] = 0.1;
        let mut h = HybridPosterior::new_dense(DensePosterior::from_probs(6, probs));
        assert_eq!(h.maybe_switch(&switch), Some(3));
        assert!(h.is_sparse());
        let s = h.as_sparse().unwrap();
        assert_eq!(s.support(), 3);
        assert_eq!(s.get(State(3)), 0.7);
        // Switching is one-way and idempotent.
        assert_eq!(h.maybe_switch(&switch), None);
    }

    #[test]
    fn retained_support_respects_epsilon() {
        let mut probs = vec![1e-15f64; 16];
        probs[5] = 1.0;
        let d = DensePosterior::from_probs(4, probs);
        assert_eq!(retained_support(&d, 1e-9), 1);
        assert_eq!(retained_support(&d, 0.0), 16);
    }
}
