//! Subject sets beyond the one-word ceiling.
//!
//! [`State`] packs a cohort into a single `u64`, which caps exact-lattice
//! machinery at [`MAX_SUBJECTS`] = 48. The approximate backends work on
//! cohorts of hundreds, so truths and pools there are [`BigState`]: the same
//! set-of-subjects semantics over an array of words. A `BigState` is *not* a
//! lattice index — there is no `2^N` array for it to index into — so the
//! dense-only operations (`index`, `complement`, down-set walks) deliberately
//! do not exist here.

use serde::{Deserialize, Serialize};

use crate::state::{State, MAX_SUBJECTS};

/// A set of subject indices as a little-endian array of 64-bit words:
/// subject `i` lives in bit `i % 64` of word `i / 64`.
///
/// Unlike [`State`] there is no fixed capacity: the word array grows to fit
/// the highest set index. Two `BigState`s are equal iff they contain the same
/// subjects — trailing zero words are trimmed on construction so `Eq`/`Hash`
/// stay structural.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigState {
    words: Vec<u64>,
}

impl BigState {
    /// The empty set.
    pub fn empty() -> BigState {
        BigState { words: Vec::new() }
    }

    /// Set from an iterator of subject indices (any order, duplicates ok).
    pub fn from_subjects<I: IntoIterator<Item = usize>>(subjects: I) -> BigState {
        let mut s = BigState::empty();
        for i in subjects {
            s.insert(i);
        }
        s
    }

    /// Set from a raw word array (bit `i % 64` of word `i / 64` ⇔ subject
    /// `i`). Trailing zero words are trimmed.
    pub fn from_words(words: Vec<u64>) -> BigState {
        let mut s = BigState { words };
        s.trim();
        s
    }

    /// All subjects of a cohort of `n`.
    pub fn full(n: usize) -> BigState {
        let mut words = vec![u64::MAX; n / 64];
        if !n.is_multiple_of(64) {
            words.push(u64::MAX >> (64 - n % 64));
        }
        BigState::from_words(words)
    }

    /// Widen a one-word [`State`] into a `BigState` with the same subjects.
    pub fn from_state(s: State) -> BigState {
        BigState::from_words(vec![s.bits()])
    }

    /// Narrow back to a one-word [`State`], if every subject fits under
    /// [`MAX_SUBJECTS`].
    pub fn to_state(&self) -> Option<State> {
        if self.words.len() > 1 {
            return None;
        }
        let bits = self.words.first().copied().unwrap_or(0);
        if bits >> MAX_SUBJECTS != 0 {
            return None;
        }
        Some(State(bits))
    }

    /// The backing words, little-endian, trailing zeros trimmed.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Add subject `i`.
    pub fn insert(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Whether subject `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Number of subjects in the set.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `|self ∩ other|` — for a truth against a pool, the number of truly
    /// positive samples the pool contains, which is all any dilution-aware
    /// response model looks at.
    #[inline]
    pub fn positives_in(&self, pool: &BigState) -> u32 {
        self.words
            .iter()
            .zip(&pool.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Whether the two sets share a subject.
    #[inline]
    pub fn intersects(&self, other: &BigState) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate the subject indices, ascending.
    pub fn subjects(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(w, &bits)| State(bits).subjects().map(move |b| w * 64 + b))
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl std::fmt::Display for BigState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for s in self.subjects() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = BigState::from_subjects([0, 2, 130]);
        assert_eq!(s.rank(), 3);
        assert!(s.contains(0) && s.contains(2) && s.contains(130));
        assert!(!s.contains(64) && !s.contains(1000));
        assert_eq!(s.subjects().collect::<Vec<_>>(), vec![0, 2, 130]);
        assert_eq!(s.to_string(), "{0,2,130}");
        assert_eq!(s.words().len(), 3);
    }

    #[test]
    fn full_matches_per_subject_inserts() {
        for n in [0, 1, 63, 64, 65, 128, 200, 256] {
            let full = BigState::full(n);
            assert_eq!(full, BigState::from_subjects(0..n), "n={n}");
            assert_eq!(full.rank() as usize, n);
        }
    }

    #[test]
    fn trailing_zero_words_do_not_break_equality() {
        let a = BigState::from_subjects([3]);
        let b = BigState::from_words(vec![0b1000, 0, 0]);
        assert_eq!(a, b);
        assert_eq!(b.words().len(), 1);
        assert!(BigState::from_words(vec![0, 0]).is_empty());
    }

    #[test]
    fn positives_and_intersections_across_word_boundaries() {
        let truth = BigState::from_subjects([5, 63, 64, 200]);
        let pool = BigState::from_subjects([63, 64, 65, 199]);
        assert_eq!(truth.positives_in(&pool), 2);
        assert!(truth.intersects(&pool));
        assert!(!truth.intersects(&BigState::from_subjects([6, 66])));
        // Asymmetric word lengths zip safely.
        assert_eq!(pool.positives_in(&truth), 2);
        assert_eq!(BigState::empty().positives_in(&pool), 0);
    }

    #[test]
    fn state_bridge_round_trips() {
        let s = State::from_subjects([0, 7, 40]);
        let big = BigState::from_state(s);
        assert_eq!(big.to_state(), Some(s));
        assert_eq!(big.rank(), s.rank());
        assert_eq!(
            big.subjects().collect::<Vec<_>>(),
            s.subjects().collect::<Vec<_>>()
        );
        assert_eq!(BigState::empty().to_state(), Some(State::EMPTY));
        assert_eq!(BigState::from_subjects([64]).to_state(), None);
        assert_eq!(BigState::from_subjects([MAX_SUBJECTS]).to_state(), None);
    }
}
