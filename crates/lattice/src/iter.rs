//! Iterators over regions of the Boolean lattice.
//!
//! These are the reference enumerations: exhaustive pool search and the test
//! suite use them as ground truth against the fused kernels in
//! [`crate::dense`] and [`crate::kernels`].

use crate::state::State;

/// Iterate every state of a cohort of `n` subjects in index order
/// (`0 ..= 2^n - 1`).
pub fn all_states(n: usize) -> impl Iterator<Item = State> {
    (0u64..(1u64 << n)).map(State)
}

/// Iterate all subsets of `mask` (including the empty set and `mask`
/// itself), in descending mask-value order except for the final empty set.
///
/// Uses the standard `sub = (sub - 1) & mask` walk: visits exactly the
/// `2^rank(mask)` subsets in O(1) per step with no allocation.
pub fn subsets_of(mask: State) -> SubsetIter {
    SubsetIter {
        mask: mask.bits(),
        current: mask.bits(),
        done: false,
    }
}

/// See [`subsets_of`].
#[derive(Debug, Clone)]
pub struct SubsetIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        if self.done {
            return None;
        }
        let out = State(self.current);
        if self.current == 0 {
            self.done = true;
        } else {
            self.current = (self.current - 1) & self.mask;
        }
        Some(out)
    }
}

/// Iterate all supersets of `base` within a cohort of `n` subjects,
/// ascending by the added-subject mask.
pub fn supersets_of(base: State, n: usize) -> impl Iterator<Item = State> {
    let free = base.complement(n);
    subsets_of(free)
        .collect::<Vec<_>>() // subsets_of is descending; collect to re-order
        .into_iter()
        .rev()
        .map(move |add| base.join(add))
}

/// Iterate the states of exact rank `k` in a cohort of `n` subjects, in
/// ascending index order (Gosper's hack: next-higher integer with the same
/// popcount).
pub fn states_of_rank(n: usize, k: usize) -> RankIter {
    assert!(n <= 63, "rank iteration limited to n <= 63");
    let limit = 1u64 << n;
    let current = if k == 0 {
        0
    } else if k > n {
        limit // no such states: start past the limit
    } else {
        (1u64 << k) - 1
    };
    RankIter {
        current,
        limit,
        k: k as u32,
        exhausted: k > n,
    }
}

/// See [`states_of_rank`].
#[derive(Debug, Clone)]
pub struct RankIter {
    current: u64,
    limit: u64,
    k: u32,
    exhausted: bool,
}

impl Iterator for RankIter {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        if self.exhausted || self.current >= self.limit {
            return None;
        }
        let out = State(self.current);
        if self.k == 0 {
            self.exhausted = true;
        } else {
            // Gosper's hack.
            let c = self.current;
            let lowest = c & c.wrapping_neg();
            let ripple = c + lowest;
            if ripple == 0 {
                self.exhausted = true;
            } else {
                self.current = ripple | (((c ^ ripple) >> 2) / lowest);
            }
        }
        Some(out)
    }
}

/// Gray-code walk over all states of a cohort of `n`: consecutive states
/// differ in exactly one subject. Yields `(state, flipped_subject)` where
/// `flipped_subject` is `None` for the initial empty state. Useful for
/// incremental recomputation across neighbouring hypotheses.
pub fn gray_code(n: usize) -> impl Iterator<Item = (State, Option<usize>)> {
    (0u64..(1u64 << n)).map(|i| {
        let gray = i ^ (i >> 1);
        let flipped = if i == 0 {
            None
        } else {
            // Bit flipped between gray(i-1) and gray(i) is trailing_zeros(i).
            Some(i.trailing_zeros() as usize)
        };
        (State(gray), flipped)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_states_count() {
        assert_eq!(all_states(5).count(), 32);
        assert_eq!(all_states(0).count(), 1);
    }

    #[test]
    fn subsets_enumerate_exactly() {
        let mask = State::from_subjects([0, 2, 3]);
        let subs: HashSet<State> = subsets_of(mask).collect();
        assert_eq!(subs.len(), 8);
        for s in &subs {
            assert!(s.is_subset_of(mask));
        }
        assert!(subs.contains(&State::EMPTY));
        assert!(subs.contains(&mask));
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<State> = subsets_of(State::EMPTY).collect();
        assert_eq!(subs, vec![State::EMPTY]);
    }

    #[test]
    fn supersets_enumerate_exactly() {
        let n = 5;
        let base = State::from_subjects([1, 3]);
        let sups: HashSet<State> = supersets_of(base, n).collect();
        assert_eq!(sups.len(), 8); // 2^(5-2)
        for s in &sups {
            assert!(base.is_subset_of(*s));
        }
        assert!(sups.contains(&base));
        assert!(sups.contains(&State::full(n)));
    }

    #[test]
    fn rank_iter_matches_binomial() {
        fn binom(n: u64, k: u64) -> u64 {
            if k > n {
                return 0;
            }
            let mut r = 1u64;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in 0..=8usize {
            for k in 0..=n + 1 {
                let states: Vec<State> = states_of_rank(n, k).collect();
                assert_eq!(
                    states.len() as u64,
                    binom(n as u64, k as u64),
                    "n={n} k={k}"
                );
                for s in &states {
                    assert_eq!(s.rank() as usize, k);
                }
                // Ascending order.
                for w in states.windows(2) {
                    assert!(w[0].bits() < w[1].bits());
                }
            }
        }
    }

    #[test]
    fn rank_zero_is_empty_state_only() {
        let states: Vec<State> = states_of_rank(6, 0).collect();
        assert_eq!(states, vec![State::EMPTY]);
    }

    #[test]
    fn gray_code_single_flips() {
        let n = 6;
        let walk: Vec<(State, Option<usize>)> = gray_code(n).collect();
        assert_eq!(walk.len(), 64);
        assert_eq!(walk[0], (State::EMPTY, None));
        let seen: HashSet<State> = walk.iter().map(|(s, _)| *s).collect();
        assert_eq!(seen.len(), 64); // visits every state once
        for w in walk.windows(2) {
            let (a, _) = w[0];
            let (b, flip) = w[1];
            assert_eq!((a.bits() ^ b.bits()).count_ones(), 1);
            let flipped = (a.bits() ^ b.bits()).trailing_zeros() as usize;
            assert_eq!(flip, Some(flipped));
        }
    }
}
