//! Branch-fused look-ahead selection kernel.
//!
//! Look-ahead stage selection scores prefix-pool candidates by their
//! *expected* halving distance over the `2^j` outcome branches of the `j`
//! pools already committed to the stage. The obvious implementation
//! materializes one posterior per branch (clone + full Bayesian update —
//! `O(2^j · 2^N)` allocation and traffic per greedy step). This module is
//! the fused alternative: for each lattice state, the likelihood weight of
//! every outcome branch is the product of the committed pools' outcome
//! likelihoods at that state, so **one traversal of the unnormalized prior
//! posterior** accumulates all `2^j` branch-weighted first-positive
//! histograms at once. No branch posterior ever exists in memory.
//!
//! Per state the kernel needs `j` pool popcounts (blocked: the high-bit
//! popcount is hoisted per 256-aligned run and the low byte comes from a
//! 256-entry table, exactly like the sharded update kernel), one
//! first-positive lookup (byte-lane tables), and `2^{j+1} − 2` multiplies
//! (iterative doubling over the branch products). The output is a
//! `(m + 1) × 2^j` histogram — `m + 1` first-positive rows, branch-minor —
//! that the driver suffix-sums into per-branch all-prefix negative masses.
//! Memory per task is `O(m · 2^j)`, independent of `2^N`.
//!
//! The kernel takes plain likelihood tables rather than a response model,
//! so it is shared verbatim by the dense serial path, the rayon chunk path
//! ([`crate::kernels::par_lookahead_histograms`]), and the engine-sharded
//! aggregate stage in the core crate.

use crate::dense::{first_pos, first_pos_tables};

/// A pool committed to the current look-ahead stage, in the form the fused
/// kernel consumes: its bitmask plus the likelihood tables of both assay
/// outcomes (`tables[outcome as usize][k]` = likelihood of the outcome
/// given `k` positives in the pool).
#[derive(Debug, Clone)]
pub struct BranchPool {
    /// The pool's subject bitmask.
    pub mask: u64,
    /// `[negative, positive]` outcome likelihood tables, each of length
    /// `popcount(mask) + 1`.
    pub tables: [Vec<f64>; 2],
}

/// Number of outcome branches spanned by `pools` (`2^j`).
pub fn num_branches(pools: &[BranchPool]) -> usize {
    1usize << pools.len()
}

/// Popcount of `i & mask` for every low-byte value `i` — the table half of
/// the blocked popcount shared with the sharded update kernels.
pub fn low_byte_popcounts(mask: u64) -> [u8; 256] {
    let m = (mask & 0xFF) as usize;
    let mut t = [0u8; 256];
    for (i, e) in t.iter_mut().enumerate() {
        *e = (i & m).count_ones() as u8;
    }
    t
}

/// Precomputed per-ordering state of the fused look-ahead kernel: the
/// first-positive byte-lane tables of a candidate subject ordering.
///
/// Build once per greedy stage (the ordering is fixed for the stage), then
/// call [`LookaheadKernel::histograms`] once per greedy step with the
/// pools committed so far — over the whole posterior, a rayon chunk, or an
/// engine partition.
#[derive(Debug)]
pub struct LookaheadKernel {
    first_tables: Vec<[u32; 256]>,
    m: usize,
}

impl LookaheadKernel {
    /// Prepare the kernel for a candidate ordering over `n` subjects.
    ///
    /// # Panics
    /// Panics if `order` contains a duplicate or an index `>= n` (matching
    /// [`crate::DensePosterior::prefix_negative_masses`]).
    pub fn new(n: usize, order: &[usize]) -> Self {
        let m = order.len();
        let mut pos_of = vec![u32::MAX; n];
        for (k, &subj) in order.iter().enumerate() {
            assert!(subj < n, "subject {subj} out of range");
            assert!(
                pos_of[subj] == u32::MAX,
                "duplicate subject {subj} in order"
            );
            pos_of[subj] = k as u32;
        }
        LookaheadKernel {
            first_tables: first_pos_tables(&pos_of, m),
            m,
        }
    }

    /// Number of first-positive rows in the histogram (`order.len() + 1`).
    pub fn num_prefixes(&self) -> usize {
        self.m + 1
    }

    /// Borrow the first-positive byte-lane tables (shared with the fused
    /// SIMD superstage in [`crate::simd`]).
    pub(crate) fn first_tables(&self) -> &[[u32; 256]] {
        &self.first_tables
    }

    /// Accumulate the branch-weighted first-positive histograms of one
    /// contiguous slice of posterior mass.
    ///
    /// `probs[off]` is the (unnormalized) mass of global state
    /// `base + off`. Returns `hist` of length `(m + 1) · 2^j` laid out
    /// row-major by first-positive position with the branch index minor:
    /// `hist[first · 2^j + b]` sums `π(s) · L_b(s)` over the slice's states
    /// with first positive `first`, where `L_b(s)` is the product of each
    /// committed pool's branch-`b` outcome likelihood at `s`. Branch bit
    /// convention: the earliest committed pool owns the most significant
    /// bit (iterative doubling order); only the sum over branches is ever
    /// order-sensitive, and callers index branches uniformly.
    ///
    /// With no committed pools this degenerates to the plain first-positive
    /// histogram of the prefix-halving kernel.
    pub fn histograms(&self, probs: &[f64], base: u64, pools: &[BranchPool]) -> Vec<f64> {
        let nb = num_branches(pools);
        let mut hist = vec![0.0f64; self.num_prefixes() * nb];
        let lo: Vec<[u8; 256]> = pools.iter().map(|p| low_byte_popcounts(p.mask)).collect();
        let hi_masks: Vec<u64> = pools.iter().map(|p| p.mask & !0xFF).collect();
        let mut k_hi = vec![0usize; pools.len()];
        let mut prod = vec![0.0f64; nb];
        let len = probs.len();
        let mut off = 0usize;
        while off < len {
            // Within a 256-aligned run of global indices every pool's
            // high-bit popcount is constant — hoist them all.
            let state = base + off as u64;
            for (k, &hm) in k_hi.iter_mut().zip(&hi_masks) {
                *k = (state & hm).count_ones() as usize;
            }
            let run = ((256 - (state & 0xFF)) as usize).min(len - off);
            for (d, &p) in probs[off..off + run].iter().enumerate() {
                let s = base + (off + d) as u64;
                let byte = (s & 0xFF) as usize;
                prod[0] = p;
                let mut cur = 1usize;
                for (i, pool) in pools.iter().enumerate() {
                    let k = k_hi[i] + lo[i][byte] as usize;
                    let neg = pool.tables[0][k];
                    let pos = pool.tables[1][k];
                    crate::simd::lookahead_double_block(&mut prod, cur, neg, pos);
                    cur <<= 1;
                }
                let row = first_pos(&self.first_tables, s) as usize * nb;
                crate::simd::add_assign_block(&mut hist[row..row + nb], &prod);
            }
            off += run;
        }
        hist
    }
}

/// Suffix-sum a `(rows) × nb` first-positive histogram down its rows:
/// `masses[k · nb + b] = Σ_{first ≥ k} hist[first · nb + b]` — branch `b`'s
/// unnormalized negative mass for every prefix pool (`masses[b]` at `k = 0`
/// is branch `b`'s total mass).
pub fn suffix_sum_rows(hist: &[f64], nb: usize) -> Vec<f64> {
    assert!(nb >= 1 && hist.len().is_multiple_of(nb), "ragged histogram");
    let rows = hist.len() / nb;
    let mut masses = vec![0.0f64; hist.len()];
    let mut running = vec![0.0f64; nb];
    for k in (0..rows).rev() {
        for b in 0..nb {
            running[b] += hist[k * nb + b];
            masses[k * nb + b] = running[b];
        }
    }
    masses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DensePosterior;
    use crate::state::State;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12 * (1.0 + a.abs() + b.abs())
    }

    /// Complementary two-outcome tables for a pool: a fake but valid assay.
    fn pool(mask: u64) -> BranchPool {
        let r = mask.count_ones() as usize;
        let pos: Vec<f64> = (0..=r)
            .map(|k| 0.05 + 0.9 * k as f64 / (r.max(1)) as f64)
            .collect();
        let neg: Vec<f64> = pos.iter().map(|p| 1.0 - p).collect();
        BranchPool {
            mask,
            tables: [neg, pos],
        }
    }

    #[test]
    fn no_pools_matches_prefix_histogram() {
        let d = DensePosterior::from_risks(&[0.1, 0.3, 0.2, 0.05]);
        let order = [2usize, 0, 3, 1];
        let kernel = LookaheadKernel::new(4, &order);
        let hist = kernel.histograms(d.probs(), 0, &[]);
        let masses = suffix_sum_rows(&hist, 1);
        let expected = d.prefix_negative_masses(&order);
        assert_eq!(masses.len(), expected.len());
        for (a, b) in masses.iter().zip(&expected) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn branch_masses_match_materialized_branches() {
        // Ground truth: multiply the posterior through each branch's
        // likelihood product explicitly, then take prefix masses.
        let risks = [0.1, 0.25, 0.07, 0.18, 0.3];
        let d = DensePosterior::from_risks(&risks);
        let order = [4usize, 1, 0, 3, 2];
        let pools = [pool(0b10011), pool(0b01100)];
        let kernel = LookaheadKernel::new(5, &order);
        let hist = kernel.histograms(d.probs(), 0, &pools);
        let nb = num_branches(&pools);
        assert_eq!(nb, 4);
        let masses = suffix_sum_rows(&hist, nb);

        for b in 0..nb {
            // Earliest pool owns the most significant branch bit.
            let outcomes = [(b >> 1) & 1, b & 1];
            let mut branched = d.clone();
            for (pl, &y) in pools.iter().zip(&outcomes) {
                let table = &pl.tables[y];
                branched.mul_likelihood(State(pl.mask), table);
            }
            let expected = branched.prefix_negative_masses(&order);
            for (k, e) in expected.iter().enumerate() {
                let got = masses[k * nb + b];
                assert!(close(got, *e), "branch {b} prefix {k}: {got} vs {e}");
            }
        }
    }

    #[test]
    fn sliced_traversal_matches_whole() {
        // Splitting the state range into arbitrary contiguous slices and
        // summing the per-slice histograms must equal the one-shot pass —
        // the property the sharded and chunked callers rely on.
        let risks = [0.2, 0.05, 0.33, 0.11, 0.08, 0.27];
        let d = DensePosterior::from_risks(&risks);
        let order = [0usize, 5, 2, 4];
        let pools = [pool(0b100101), pool(0b011010), pool(0b000111)];
        let kernel = LookaheadKernel::new(6, &order);
        let whole = kernel.histograms(d.probs(), 0, &pools);

        let cuts = [0usize, 7, 19, 40, 64];
        let mut summed = vec![0.0f64; whole.len()];
        for w in cuts.windows(2) {
            let part = kernel.histograms(&d.probs()[w[0]..w[1]], w[0] as u64, &pools);
            for (s, p) in summed.iter_mut().zip(&part) {
                *s += p;
            }
        }
        for (a, b) in whole.iter().zip(&summed) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn complementary_tables_preserve_total_mass() {
        // When each pool's outcome tables sum to 1, the branch products of
        // a state sum to the state's mass — the identity that lets the
        // driver reuse the step-0 total as the branch-weight normalizer.
        let d = DensePosterior::from_risks(&[0.15, 0.3, 0.22]);
        let order = [1usize, 0, 2];
        let pools = [pool(0b101), pool(0b011)];
        let kernel = LookaheadKernel::new(3, &order);
        let hist = kernel.histograms(d.probs(), 0, &pools);
        let nb = num_branches(&pools);
        let masses = suffix_sum_rows(&hist, nb);
        let branch_total: f64 = masses[..nb].iter().sum();
        assert!(close(branch_total, d.total()));
    }

    #[test]
    fn suffix_sum_rows_small_example() {
        // rows = 3, nb = 2
        let hist = [1.0, 10.0, 2.0, 20.0, 4.0, 40.0];
        let masses = suffix_sum_rows(&hist, 2);
        assert_eq!(masses, vec![7.0, 70.0, 6.0, 60.0, 4.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate subject")]
    fn kernel_rejects_duplicate_order() {
        let _ = LookaheadKernel::new(4, &[1, 1]);
    }

    #[test]
    fn low_byte_popcounts_table() {
        let t = low_byte_popcounts(0b1010_0101);
        assert_eq!(t[0], 0);
        assert_eq!(t[0xFF], 4);
        assert_eq!(t[0b0000_0101], 2);
        // High mask bits are ignored by design.
        let t2 = low_byte_popcounts(0xFFFF_FF00);
        assert!(t2.iter().all(|&x| x == 0));
    }
}
