//! Log-domain posterior for numerically hard regimes.
//!
//! A long sequential episode multiplies the posterior by hundreds of
//! likelihood factors; with near-degenerate assays (likelihoods near 0)
//! and large `N`, linear-domain masses underflow `f64` long before the
//! procedure terminates. `LogPosterior` stores `ln π(s)` (with `-∞` for
//! zero mass) and normalizes with a max-shifted log-sum-exp, so episodes
//! of any length stay representable. It mirrors the core kernels of
//! [`crate::DensePosterior`]; conversions are exact where representable
//! and property-tested against the linear domain.

use crate::dense::DensePosterior;
use crate::state::State;

/// Dense posterior in the log domain: slot `s` holds `ln π(s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogPosterior {
    n_subjects: usize,
    log_probs: Vec<f64>,
}

impl LogPosterior {
    /// Convert from the linear domain (`0 ↦ −∞`).
    pub fn from_dense(dense: &DensePosterior) -> Self {
        LogPosterior {
            n_subjects: dense.n_subjects(),
            log_probs: dense.probs().iter().map(|&p| p.ln()).collect(),
        }
    }

    /// Independent-risk prior, built directly in the log domain (sums of
    /// logs, immune to underflow even for hundreds of subjects... though
    /// the vector length still bounds `n`).
    pub fn from_risks(risks: &[f64]) -> Self {
        let n = risks.len();
        let len = crate::num_states(n);
        let log_p: Vec<f64> = risks.iter().map(|&p| p.ln()).collect();
        let log_q: Vec<f64> = risks.iter().map(|&p| (1.0 - p).ln()).collect();
        let mut log_probs = vec![0.0f64; len];
        // Same doubling construction as the linear domain, with sums.
        let mut filled = 1usize;
        for i in 0..n {
            for j in 0..filled {
                let base = log_probs[j];
                log_probs[j + filled] = base + log_p[i];
                log_probs[j] = base + log_q[i];
            }
            filled <<= 1;
        }
        LogPosterior {
            n_subjects: n,
            log_probs,
        }
    }

    /// Cohort size.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.log_probs.len()
    }

    /// Never empty (a lattice has at least the bottom state).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `ln π(s)`.
    pub fn get_log(&self, s: State) -> f64 {
        self.log_probs[s.index()]
    }

    /// Log of the total mass, via max-shifted log-sum-exp
    /// (`-∞` for an all-zero posterior).
    pub fn log_total(&self) -> f64 {
        log_sum_exp(&self.log_probs)
    }

    /// Add `ln table[|s ∩ pool|]` to every state — the log-domain Bayesian
    /// update. Returns the log-evidence `ln Σ π(s)·table[k(s)]` *relative
    /// to the pre-update total* and renormalizes so the max log-mass is 0
    /// (which keeps all values representable regardless of episode
    /// length).
    ///
    /// Returns `None` when the observation is impossible (all slots −∞).
    pub fn update(&mut self, pool: State, table: &[f64]) -> Option<f64> {
        assert!(
            table.len() > pool.rank() as usize,
            "likelihood table too short"
        );
        let log_table: Vec<f64> = table.iter().map(|&v| v.ln()).collect();
        let mask = pool.bits();
        let before = self.log_total();
        for (idx, lp) in self.log_probs.iter_mut().enumerate() {
            let k = (idx as u64 & mask).count_ones() as usize;
            *lp += log_table[k];
        }
        let after = self.log_total();
        if !after.is_finite() {
            return None;
        }
        // Shift so the maximum is zero: subsequent log-sum-exps stay exact
        // and slots never drift toward -inf overflow.
        let max = self
            .log_probs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        for lp in &mut self.log_probs {
            *lp -= max;
        }
        Some(after - before)
    }

    /// Posterior marginals (probabilities, linear domain) — exact via a
    /// shifted exponentiation.
    pub fn marginals(&self) -> Vec<f64> {
        let max = self
            .log_probs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            return vec![0.0; self.n_subjects];
        }
        let mut acc = vec![0.0f64; self.n_subjects];
        let mut total = 0.0f64;
        for (idx, &lp) in self.log_probs.iter().enumerate() {
            let w = (lp - max).exp();
            total += w;
            let mut bits = idx as u64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                acc[b] += w;
                bits &= bits - 1;
            }
        }
        for a in &mut acc {
            *a /= total;
        }
        acc
    }

    /// MAP state and its log-probability relative to the total.
    pub fn map_state(&self) -> (State, f64) {
        let (idx, &lp) = self
            .log_probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("non-empty lattice");
        (State(idx as u64), lp - self.log_total())
    }

    /// Convert back to the linear domain, normalized.
    pub fn to_dense(&self) -> DensePosterior {
        let max = self
            .log_probs
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let probs: Vec<f64> = if max.is_finite() {
            self.log_probs.iter().map(|&lp| (lp - max).exp()).collect()
        } else {
            vec![0.0; self.log_probs.len()]
        };
        let mut dense = DensePosterior::from_probs(self.n_subjects, probs);
        let _ = dense.try_normalize();
        dense
    }
}

/// Max-shifted log-sum-exp; `-∞` for an empty or all-`-∞` slice.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn from_risks_matches_linear_domain() {
        let risks = [0.1, 0.35, 0.02, 0.6];
        let log = LogPosterior::from_risks(&risks);
        let lin = DensePosterior::from_risks(&risks);
        for idx in 0..lin.len() {
            let s = State(idx as u64);
            assert!(close(log.get_log(s), lin.get(s).ln()), "state {s}");
        }
        assert!(close(log.log_total(), 0.0)); // prior total = 1
    }

    #[test]
    fn update_matches_linear_domain() {
        let risks = [0.05, 0.2, 0.12, 0.3, 0.08];
        let pool = State::from_subjects([1, 3, 4]);
        let table = [0.97, 0.4, 0.22, 0.15];

        let mut log = LogPosterior::from_risks(&risks);
        let mut lin = DensePosterior::from_risks(&risks);
        let log_ev = log.update(pool, &table).unwrap();
        let ev = lin.mul_likelihood_fused(pool, &table);
        lin.try_normalize().unwrap();
        assert!(close(log_ev, ev.ln()));
        for (a, b) in log.marginals().iter().zip(lin.marginals()) {
            assert!(close(*a, b));
        }
        let (ms, _) = log.map_state();
        assert_eq!(ms, lin.map_state().0);
    }

    #[test]
    fn survives_extreme_underflow() {
        // 200 consecutive harsh updates would underflow linear f64
        // (0.001^200 = 1e-600); the log domain must stay finite and
        // normalized.
        let risks = [0.3, 0.4, 0.2];
        let pool = State::from_subjects([0, 1, 2]);
        // A likelihood table that crushes all masses equally hard, plus a
        // slight tilt so the posterior still moves.
        let table = [1e-3, 9e-4, 8e-4, 7e-4];
        let mut log = LogPosterior::from_risks(&risks);
        for _ in 0..200 {
            log.update(pool, &table).unwrap();
        }
        let m = log.marginals();
        assert!(m.iter().all(|x| x.is_finite()));
        let d = log.to_dense();
        assert!(close(d.total(), 1.0));
        // The tilt pushes mass toward fewer positives (larger table value
        // for smaller k): empty state must dominate.
        assert_eq!(log.map_state().0, State::EMPTY);

        // The linear domain indeed underflows in the same scenario.
        let mut lin = DensePosterior::from_risks(&risks);
        let mut underflowed = false;
        for _ in 0..200 {
            let z = lin.mul_likelihood_fused(pool, &table);
            if z == 0.0 {
                underflowed = true;
                break;
            }
        }
        assert!(underflowed, "expected the linear domain to underflow");
    }

    #[test]
    fn impossible_observation_returns_none() {
        let mut log = LogPosterior::from_risks(&[0.5]);
        // Zero out everything: table of zeros.
        assert!(log.update(State::from_subjects([0]), &[0.0, 0.0]).is_none());
    }

    #[test]
    fn log_sum_exp_edge_cases() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
        assert!(close(log_sum_exp(&[0.0, 0.0]), 2f64.ln()));
        // Huge shifts must not overflow.
        assert!(close(log_sum_exp(&[-1000.0, -1000.0]), -1000.0 + 2f64.ln()));
    }

    #[test]
    fn to_dense_roundtrip() {
        let risks = [0.2, 0.4, 0.1];
        let log = LogPosterior::from_risks(&risks);
        let d = log.to_dense();
        let direct = DensePosterior::from_risks(&risks);
        for (a, b) in d.probs().iter().zip(direct.probs()) {
            assert!(close(*a, *b));
        }
    }
}
