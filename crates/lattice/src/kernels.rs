//! Data-parallel lattice kernels.
//!
//! Each function here is the chunked, parallel counterpart of a serial
//! reference kernel on [`DensePosterior`]; property tests assert agreement
//! to floating-point tolerance. The SBGT operators dispatch to these when
//! the lattice is large enough to amortize fork/join overhead
//! ([`ParConfig::threshold`]), exactly as the Spark framework only shines
//! past a state-count threshold.
//!
//! Parallelism is rayon over contiguous chunks: the state index equals the
//! array index, so a chunk starting at `base` covers states
//! `base .. base + chunk_len` and every kernel recovers the state mask from
//! `base + offset` without any gather.

use rayon::prelude::*;

use crate::dense::DensePosterior;
use crate::state::State;

/// Tuning for the parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Chunk length in states. Chosen so a chunk's mass vector fits L2
    /// (2^16 f64 = 512 KiB halves; 2^14 default = 128 KiB is conservative).
    pub chunk_len: usize,
    /// Below this state count the serial kernel is used (fork/join overhead
    /// dominates under ~64k states).
    pub threshold: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            chunk_len: 1 << 14,
            threshold: 1 << 16,
        }
    }
}

impl ParConfig {
    /// Config that always takes the parallel path (for tests/benches).
    pub fn always_parallel() -> Self {
        ParConfig {
            chunk_len: 1 << 14,
            threshold: 0,
        }
    }
}

/// Parallel fused multiply + total: `probs[s] *= table[|s ∩ pool|]`,
/// returning the new total mass. See
/// [`DensePosterior::mul_likelihood_fused`].
pub fn par_mul_likelihood_fused(
    posterior: &mut DensePosterior,
    pool: State,
    table: &[f64],
    cfg: ParConfig,
) -> f64 {
    assert!(
        table.len() > pool.rank() as usize,
        "likelihood table too short"
    );
    if posterior.len() < cfg.threshold {
        return posterior.mul_likelihood_fused(pool, table);
    }
    let mask = pool.bits();
    let chunk = cfg.chunk_len.max(1);
    posterior
        .probs_mut()
        .par_chunks_mut(chunk)
        .enumerate()
        .map(|(ci, probs)| {
            let base = (ci * chunk) as u64;
            crate::simd::mul_table_block(probs, base, mask, table)
        })
        .sum()
}

/// Parallel normalization: divide by `z` (caller obtains `z` from a fused
/// pass or [`par_total`]).
pub fn par_scale(posterior: &mut DensePosterior, factor: f64, cfg: ParConfig) {
    if posterior.len() < cfg.threshold {
        for p in posterior.probs_mut() {
            *p *= factor;
        }
        return;
    }
    posterior
        .probs_mut()
        .par_chunks_mut(cfg.chunk_len.max(1))
        .for_each(|chunk| {
            for p in chunk {
                *p *= factor;
            }
        });
}

/// Parallel total mass.
pub fn par_total(posterior: &DensePosterior, cfg: ParConfig) -> f64 {
    if posterior.len() < cfg.threshold {
        return posterior.total();
    }
    posterior
        .probs()
        .par_chunks(cfg.chunk_len.max(1))
        .map(|chunk| chunk.iter().sum::<f64>())
        .sum()
}

/// Parallel single-pass marginals (normalized by the total), matching
/// [`DensePosterior::marginals`].
pub fn par_marginals(posterior: &DensePosterior, cfg: ParConfig) -> Vec<f64> {
    if posterior.len() < cfg.threshold {
        return posterior.marginals();
    }
    let n = posterior.n_subjects();
    let chunk = cfg.chunk_len.max(1);
    let (acc, total) = posterior
        .probs()
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, probs)| {
            let base = (ci * chunk) as u64;
            let mut acc = vec![0.0f64; n];
            let mut total = 0.0f64;
            for (off, &p) in probs.iter().enumerate() {
                total += p;
                let mut bits = base + off as u64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    acc[b] += p;
                    bits &= bits - 1;
                }
            }
            (acc, total)
        })
        .reduce(
            || (vec![0.0f64; n], 0.0f64),
            |(mut a, ta), (b, tb)| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                (a, ta + tb)
            },
        );
    let mut acc = acc;
    if total > 0.0 {
        for a in &mut acc {
            *a /= total;
        }
    }
    acc
}

/// Parallel pool-negative mass, matching
/// [`DensePosterior::pool_negative_mass`].
pub fn par_pool_negative_mass(posterior: &DensePosterior, pool: State, cfg: ParConfig) -> f64 {
    if posterior.len() < cfg.threshold {
        return posterior.pool_negative_mass(pool);
    }
    let mask = pool.bits();
    let chunk = cfg.chunk_len.max(1);
    posterior
        .probs()
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, probs)| {
            let base = (ci * chunk) as u64;
            let mut local = 0.0;
            for (off, &p) in probs.iter().enumerate() {
                if (base + off as u64) & mask == 0 {
                    local += p;
                }
            }
            local
        })
        .sum()
}

/// Parallel all-prefix pool-negative masses, matching
/// [`DensePosterior::prefix_negative_masses`].
pub fn par_prefix_negative_masses(
    posterior: &DensePosterior,
    order: &[usize],
    cfg: ParConfig,
) -> Vec<f64> {
    if posterior.len() < cfg.threshold {
        return posterior.prefix_negative_masses(order);
    }
    let n = posterior.n_subjects();
    let m = order.len();
    let mut pos_of = vec![u32::MAX; n];
    for (k, &subj) in order.iter().enumerate() {
        assert!(subj < n, "subject {subj} out of range");
        assert!(
            pos_of[subj] == u32::MAX,
            "duplicate subject {subj} in order"
        );
        pos_of[subj] = k as u32;
    }
    let chunk = cfg.chunk_len.max(1);
    let tables = crate::dense::first_pos_tables(&pos_of, m);
    let tables = &tables;
    let hist = posterior
        .probs()
        .par_chunks(chunk)
        .enumerate()
        .map(move |(ci, probs)| {
            let base = (ci * chunk) as u64;
            let mut hist = vec![0.0f64; m + 1];
            for (off, &p) in probs.iter().enumerate() {
                let first = crate::dense::first_pos(tables, base + off as u64);
                hist[first as usize] += p;
            }
            hist
        })
        .reduce(
            || vec![0.0f64; m + 1],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
    let mut masses = vec![0.0f64; m + 1];
    let mut running = 0.0;
    for k in (0..=m).rev() {
        running += hist[k];
        masses[k] = running;
    }
    masses
}

/// Parallel branch-fused look-ahead histograms, matching
/// [`crate::LookaheadKernel::histograms`] over the whole posterior.
///
/// Each rayon chunk runs the fused kernel on its contiguous state range;
/// the `(m + 1) × 2^j` partial histograms are reduced elementwise. This is
/// the single-node parallel path behind `select_stage_lookahead_par`; the
/// engine-sharded path runs the same kernel per partition instead.
pub fn par_lookahead_histograms(
    posterior: &DensePosterior,
    kernel: &crate::LookaheadKernel,
    pools: &[crate::BranchPool],
    cfg: ParConfig,
) -> Vec<f64> {
    if posterior.len() < cfg.threshold {
        return kernel.histograms(posterior.probs(), 0, pools);
    }
    let chunk = cfg.chunk_len.max(1);
    let nb = crate::branch::num_branches(pools);
    posterior
        .probs()
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, probs)| kernel.histograms(probs, (ci * chunk) as u64, pools))
        .reduce(
            || vec![0.0f64; kernel.num_prefixes() * nb],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
}

/// Parallel entropy (nats), matching [`DensePosterior::entropy`].
pub fn par_entropy(posterior: &DensePosterior, cfg: ParConfig) -> f64 {
    if posterior.len() < cfg.threshold {
        return posterior.entropy();
    }
    let chunk = cfg.chunk_len.max(1);
    let (z, sum_plogp) = posterior
        .probs()
        .par_chunks(chunk)
        .map(|probs| {
            let mut z = 0.0;
            let mut s = 0.0;
            for &p in probs {
                z += p;
                if p > 0.0 {
                    s += p * p.ln();
                }
            }
            (z, s)
        })
        .reduce(|| (0.0, 0.0), |(a1, b1), (a2, b2)| (a1 + a2, b1 + b2));
    if !(z.is_finite() && z > 0.0) {
        return 0.0;
    }
    z.ln() - sum_plogp / z
}

/// Parallel top-k: per-chunk bounded heaps merged on the driver, matching
/// [`DensePosterior::top_k`] (same ordering and tie-breaks).
pub fn par_top_k(posterior: &DensePosterior, k: usize, cfg: ParConfig) -> Vec<(State, f64)> {
    if posterior.len() < cfg.threshold || k == 0 {
        return posterior.top_k(k);
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, u64);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
        }
    }

    let chunk = cfg.chunk_len.max(1);
    let z = par_total(posterior, cfg);
    let mut candidates: Vec<(u64, f64)> = posterior
        .probs()
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, probs)| {
            let base = (ci * chunk) as u64;
            let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
            for (off, &p) in probs.iter().enumerate() {
                heap.push(Reverse(Entry(p, base + off as u64)));
                if heap.len() > k {
                    heap.pop();
                }
            }
            heap.into_iter()
                .map(|Reverse(Entry(p, idx))| (idx, p))
                .collect::<Vec<_>>()
        })
        .reduce(Vec::new, |mut a, b| {
            a.extend(b);
            a
        });
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    candidates.truncate(k);
    candidates
        .into_iter()
        .map(|(idx, p)| (State(idx), if z > 0.0 { p / z } else { 0.0 }))
        .collect()
}

/// Parallel construction from a state→mass function.
pub fn par_from_fn(n: usize, f: impl Fn(State) -> f64 + Sync, cfg: ParConfig) -> DensePosterior {
    let len = crate::num_states(n);
    if len < cfg.threshold {
        return DensePosterior::from_fn(n, f);
    }
    let chunk = cfg.chunk_len.max(1);
    let mut probs = vec![0.0f64; len];
    probs
        .par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ci, slots)| {
            let base = (ci * chunk) as u64;
            for (off, slot) in slots.iter_mut().enumerate() {
                *slot = f(State(base + off as u64));
            }
        });
    DensePosterior::from_probs(n, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(n: usize) -> DensePosterior {
        let risks: Vec<f64> = (0..n).map(|i| 0.02 + 0.9 * (i as f64 / n as f64)).collect();
        DensePosterior::from_risks(&risks)
    }

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs()),
            "{a} vs {b}"
        );
    }

    const CFG: ParConfig = ParConfig {
        chunk_len: 64,
        threshold: 0,
    };

    #[test]
    fn fused_matches_serial() {
        let pool = State::from_subjects([0, 3, 7]);
        let table = [0.95, 0.5, 0.3, 0.2];
        let mut a = example(10);
        let mut b = a.clone();
        let ta = a.mul_likelihood_fused(pool, &table);
        let tb = par_mul_likelihood_fused(&mut b, pool, &table, CFG);
        assert_close(ta, tb);
        for (x, y) in a.probs().iter().zip(b.probs()) {
            assert_close(*x, *y);
        }
    }

    #[test]
    fn below_threshold_uses_serial_path() {
        let pool = State::from_subjects([1]);
        let table = [0.9, 0.2];
        let mut a = example(6);
        let cfg = ParConfig {
            chunk_len: 16,
            threshold: usize::MAX,
        };
        let t = par_mul_likelihood_fused(&mut a, pool, &table, cfg);
        assert_close(t, a.total());
    }

    #[test]
    fn total_and_scale() {
        let mut d = example(9);
        let t = par_total(&d, CFG);
        assert_close(t, d.total());
        par_scale(&mut d, 1.0 / t, CFG);
        assert_close(par_total(&d, CFG), 1.0);
    }

    #[test]
    fn marginals_match_serial() {
        let d = example(11);
        let serial = d.marginals();
        let parallel = par_marginals(&d, CFG);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn pool_negative_mass_matches_serial() {
        let d = example(10);
        for pool in [
            State::EMPTY,
            State::from_subjects([0]),
            State::from_subjects([2, 5, 9]),
            State::full(10),
        ] {
            assert_close(
                d.pool_negative_mass(pool),
                par_pool_negative_mass(&d, pool, CFG),
            );
        }
    }

    #[test]
    fn prefix_masses_match_serial() {
        let d = example(10);
        let order = [4usize, 9, 0, 2, 7, 1];
        let serial = d.prefix_negative_masses(&order);
        let parallel = par_prefix_negative_masses(&d, &order, CFG);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn lookahead_histograms_match_serial_kernel() {
        use crate::branch::{num_branches, BranchPool, LookaheadKernel};
        let d = example(10);
        let order = [4usize, 9, 0, 2, 7, 1];
        let kernel = LookaheadKernel::new(10, &order);
        let make_pool = |mask: u64| {
            let r = mask.count_ones() as usize;
            let pos: Vec<f64> = (0..=r).map(|k| 0.1 + 0.8 * k as f64 / r as f64).collect();
            let neg: Vec<f64> = pos.iter().map(|p| 1.0 - p).collect();
            BranchPool {
                mask,
                tables: [neg, pos],
            }
        };
        for pools in [
            vec![],
            vec![make_pool(0b10_0101_0001)],
            vec![make_pool(0b10_0101_0001), make_pool(0b01_0010_1010)],
        ] {
            let serial = kernel.histograms(d.probs(), 0, &pools);
            let parallel = par_lookahead_histograms(&d, &kernel, &pools, CFG);
            assert_eq!(serial.len(), parallel.len());
            assert_eq!(serial.len(), kernel.num_prefixes() * num_branches(&pools));
            for (a, b) in serial.iter().zip(&parallel) {
                assert_close(*a, *b);
            }
        }
    }

    #[test]
    fn entropy_matches_serial() {
        let d = example(10);
        assert_close(d.entropy(), par_entropy(&d, CFG));
    }

    #[test]
    fn top_k_matches_serial() {
        let d = example(10);
        for k in [0usize, 1, 5, 64, 2000] {
            let serial = d.top_k(k);
            let parallel = par_top_k(&d, k, CFG);
            assert_eq!(serial.len(), parallel.len(), "k={k}");
            for ((s1, p1), (s2, p2)) in serial.iter().zip(&parallel) {
                assert_eq!(s1, s2, "k={k}");
                assert_close(*p1, *p2);
            }
        }
    }

    #[test]
    fn from_fn_matches_serial() {
        let f = |s: State| 1.0 / (1.0 + s.rank() as f64);
        let a = DensePosterior::from_fn(9, f);
        let b = par_from_fn(9, f, CFG);
        for (x, y) in a.probs().iter().zip(b.probs()) {
            assert_close(*x, *y);
        }
    }
}
