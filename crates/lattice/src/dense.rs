//! Dense posterior over the full Boolean lattice.
//!
//! `DensePosterior` stores one `f64` of (generally unnormalized) posterior
//! mass per state, indexed by the state's bitmask. All methods here are the
//! **serial reference kernels** — they define the semantics, serve as the
//! baseline framework in the speedup experiments, and back-stop the parallel
//! kernels in [`crate::kernels`] (property tests assert agreement).
//!
//! Kernel design notes (these are the paper's constant-factor wins, not
//! incidental details):
//!
//! * A pooled test's likelihood depends on the state only through
//!   `k = |s ∩ A|`, so a multiply pass indexes a precomputed table of
//!   `|A| + 1` entries rather than calling the response model `2^N` times.
//! * Marginals for all `N` subjects are accumulated in **one** pass
//!   (`O(2^N · N)` bit-tests but a single memory traversal) instead of `N`
//!   separate passes.
//! * The halving search needs the pool-negative mass of every *prefix pool*
//!   of a subject ordering; [`DensePosterior::prefix_negative_masses`]
//!   computes all `N+1` of them in one traversal via a first-positive-
//!   position histogram, instead of one `O(2^N)` scan per candidate.

use crate::state::State;
use crate::MAX_SUBJECTS;

/// Per-byte first-position lookup tables for the all-prefix mass kernels.
///
/// `pos_of[b]` is the position of subject `b` in the candidate ordering
/// (`u32::MAX` when absent). The returned `lanes[l][byte]` is the minimum
/// ordering position over the set bits of `byte` interpreted as subjects
/// `8l .. 8l+7`, with `m` (the order length) when none apply. A state's
/// first positive position is then `min` over its byte lanes — four table
/// lookups for `N ≤ 32` instead of a set-bit loop, which makes the fused
/// selection pass run at copy speed.
pub(crate) fn first_pos_tables(pos_of: &[u32], m: usize) -> Vec<[u32; 256]> {
    let n = pos_of.len();
    let lanes = n.div_ceil(8);
    let mut tables = vec![[m as u32; 256]; lanes];
    for (lane, table) in tables.iter_mut().enumerate() {
        for (byte, entry) in table.iter_mut().enumerate().skip(1) {
            let mut best = m as u32;
            let mut bits = byte;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let subj = lane * 8 + b;
                if subj < n {
                    let pos = pos_of[subj];
                    if pos < best {
                        best = pos;
                    }
                }
                bits &= bits - 1;
            }
            *entry = best;
        }
    }
    tables
}

/// First positive position of `state` under the prepared tables.
#[inline]
pub(crate) fn first_pos(tables: &[[u32; 256]], state: u64) -> u32 {
    let mut best = u32::MAX;
    let mut bits = state;
    for table in tables {
        let byte = (bits & 0xFF) as usize;
        let v = table[byte];
        if v < best {
            best = v;
        }
        bits >>= 8;
        if bits == 0 {
            break;
        }
    }
    if best == u32::MAX {
        // Only reachable when `tables` is empty (a zero-subject cohort,
        // where the order is necessarily empty and every position is 0);
        // lane 0 otherwise always yields a value ≤ m.
        0
    } else {
        best
    }
}

/// Dense (one slot per lattice state) posterior mass vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DensePosterior {
    n_subjects: usize,
    probs: Vec<f64>,
}

impl DensePosterior {
    /// Uniform mass over all `2^n` states.
    pub fn new_uniform(n: usize) -> Self {
        let len = crate::num_states(n);
        DensePosterior {
            n_subjects: n,
            probs: vec![1.0 / len as f64; len],
        }
    }

    /// Build from an arbitrary mass function.
    pub fn from_fn(n: usize, f: impl Fn(State) -> f64) -> Self {
        let len = crate::num_states(n);
        let probs = (0..len as u64).map(|i| f(State(i))).collect();
        DensePosterior {
            n_subjects: n,
            probs,
        }
    }

    /// Independent-risk prior: `π(s) = ∏_{i∈s} p_i · ∏_{i∉s} (1 − p_i)`.
    ///
    /// Built by in-place doubling in `O(2^N)` total work: after step `i` the
    /// first `2^(i+1)` slots hold the joint mass of the first `i+1` subjects.
    ///
    /// ```
    /// use sbgt_lattice::{DensePosterior, State};
    /// let prior = DensePosterior::from_risks(&[0.1, 0.3]);
    /// assert!((prior.get(State::EMPTY) - 0.9 * 0.7).abs() < 1e-12);
    /// assert!((prior.total() - 1.0).abs() < 1e-12);
    /// assert_eq!(prior.marginals().len(), 2);
    /// ```
    ///
    /// # Panics
    /// Panics if any risk is outside `[0, 1]` or `risks.len() > MAX_SUBJECTS`.
    pub fn from_risks(risks: &[f64]) -> Self {
        let n = risks.len();
        assert!(n <= MAX_SUBJECTS, "too many subjects");
        for (i, &p) in risks.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "risk {i} = {p} outside [0,1]"
            );
        }
        let len = crate::num_states(n);
        let mut probs = vec![0.0; len];
        probs[0] = 1.0;
        let mut filled = 1usize;
        for &p in risks {
            for j in 0..filled {
                let base = probs[j];
                probs[j + filled] = base * p;
                probs[j] = base * (1.0 - p);
            }
            filled <<= 1;
        }
        debug_assert_eq!(filled, len);
        DensePosterior {
            n_subjects: n,
            probs,
        }
    }

    /// Build from a raw mass vector (length must be `2^n`).
    pub fn from_probs(n: usize, probs: Vec<f64>) -> Self {
        assert_eq!(probs.len(), crate::num_states(n), "length must be 2^n");
        DensePosterior {
            n_subjects: n,
            probs,
        }
    }

    /// Cohort size `N`.
    #[inline]
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Number of states (`2^N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always false: a lattice has at least the empty state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mass of one state.
    #[inline]
    pub fn get(&self, s: State) -> f64 {
        self.probs[s.index()]
    }

    /// Borrow the raw mass vector (state index = slot index).
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mutably borrow the raw mass vector (for the parallel kernels).
    #[inline]
    pub fn probs_mut(&mut self) -> &mut [f64] {
        &mut self.probs
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Normalize to total mass 1; returns the normalizing constant `Z`.
    /// Returns `None` (leaving the vector untouched) when the total is zero,
    /// negative, or not finite — the degenerate case a caller must handle
    /// (e.g. an impossible observation under a truncated sparse posterior).
    pub fn try_normalize(&mut self) -> Option<f64> {
        let z = self.total();
        if !(z.is_finite() && z > 0.0) {
            return None;
        }
        let inv = 1.0 / z;
        for p in &mut self.probs {
            *p *= inv;
        }
        Some(z)
    }

    /// Normalize to total mass 1; returns `Z`.
    ///
    /// # Panics
    /// Panics on degenerate total mass; see [`Self::try_normalize`].
    pub fn normalize(&mut self) -> f64 {
        self.try_normalize()
            .expect("posterior mass is zero or non-finite; observation impossible under prior")
    }

    /// Multiply every state's mass by `table[|s ∩ pool|]`.
    ///
    /// `table` must have `pool.rank() + 1` entries: the likelihood of the
    /// observed outcome given `k` positives in the pool.
    pub fn mul_likelihood(&mut self, pool: State, table: &[f64]) {
        assert!(
            table.len() > pool.rank() as usize,
            "likelihood table too short: need {} entries",
            pool.rank() + 1
        );
        let mask = pool.bits();
        for (idx, p) in self.probs.iter_mut().enumerate() {
            let k = (idx as u64 & mask).count_ones() as usize;
            *p *= table[k];
        }
    }

    /// Fused multiply + total: one traversal, returns the new total mass
    /// (the Bayesian evidence of the observation). This is the fusion of
    /// Spark stages the SBGT framework performs to halve lattice traffic.
    pub fn mul_likelihood_fused(&mut self, pool: State, table: &[f64]) -> f64 {
        assert!(table.len() > pool.rank() as usize);
        let mask = pool.bits();
        let mut total = 0.0;
        for (idx, p) in self.probs.iter_mut().enumerate() {
            let k = (idx as u64 & mask).count_ones() as usize;
            *p *= table[k];
            total += *p;
        }
        total
    }

    /// Posterior marginal `P(subject i positive)` for every subject, plus
    /// normalization by the current total, in a single traversal.
    ///
    /// ```
    /// use sbgt_lattice::DensePosterior;
    /// let prior = DensePosterior::from_risks(&[0.25, 0.5]);
    /// let m = prior.marginals();
    /// assert!((m[0] - 0.25).abs() < 1e-12 && (m[1] - 0.5).abs() < 1e-12);
    /// ```
    ///
    /// Returns the zero vector for a posterior with zero total mass.
    pub fn marginals(&self) -> Vec<f64> {
        let n = self.n_subjects;
        let mut acc = vec![0.0f64; n];
        let mut total = 0.0f64;
        for (idx, &p) in self.probs.iter().enumerate() {
            total += p;
            let mut bits = idx as u64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                acc[b] += p;
                bits &= bits - 1;
            }
        }
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Mass of the pool-negative down-set `{s : s ∩ pool = ∅}`, relative to
    /// the current total (i.e. a probability when the posterior is
    /// normalized; otherwise raw mass — see [`Self::total`]).
    pub fn pool_negative_mass(&self, pool: State) -> f64 {
        let mask = pool.bits();
        self.probs
            .iter()
            .enumerate()
            .filter(|(idx, _)| *idx as u64 & mask == 0)
            .map(|(_, &p)| p)
            .sum()
    }

    /// Pool-negative masses of **all prefix pools** of a subject ordering in
    /// one traversal.
    ///
    /// For `order = [o_0, .., o_{m-1}]`, prefix pool `A_k = {o_0, .., o_{k-1}}`
    /// (so `A_0 = ∅`). Returns `masses[k] = Σ_{s ∩ A_k = ∅} π(s)` for
    /// `k = 0..=m`.
    ///
    /// Method: for each state, find `f(s)` = smallest `k` such that `o_k`
    /// is positive in `s` (`m` if none is); then `s` contributes to exactly
    /// the prefixes `k ≤ f(s)`, so a histogram over `f` plus one suffix-sum
    /// yields every prefix mass. One pass instead of `m` passes — the
    /// test-selection speedup of the framework comes from here.
    ///
    /// # Panics
    /// Panics if `order` contains a duplicate or an index `>= n_subjects`.
    pub fn prefix_negative_masses(&self, order: &[usize]) -> Vec<f64> {
        let m = order.len();
        let mut pos_of = vec![u32::MAX; self.n_subjects];
        for (k, &subj) in order.iter().enumerate() {
            assert!(subj < self.n_subjects, "subject {subj} out of range");
            assert!(
                pos_of[subj] == u32::MAX,
                "duplicate subject {subj} in order"
            );
            pos_of[subj] = k as u32;
        }
        let tables = first_pos_tables(&pos_of, m);
        let mut hist = vec![0.0f64; m + 1];
        for (idx, &p) in self.probs.iter().enumerate() {
            let first = first_pos(&tables, idx as u64);
            hist[first as usize] += p;
        }
        // masses[k] = sum of hist[k..=m]
        let mut masses = vec![0.0f64; m + 1];
        let mut running = 0.0;
        for k in (0..=m).rev() {
            running += hist[k];
            masses[k] = running;
        }
        masses
    }

    /// Shannon entropy (nats) of the normalized posterior. Zero-mass states
    /// contribute zero. Returns 0 for a degenerate (zero-total) posterior.
    pub fn entropy(&self) -> f64 {
        let z = self.total();
        if !(z.is_finite() && z > 0.0) {
            return 0.0;
        }
        let mut sum_plogp = 0.0;
        for &p in &self.probs {
            if p > 0.0 {
                sum_plogp += p * p.ln();
            }
        }
        z.ln() - sum_plogp / z
    }

    /// Maximum a-posteriori state and its normalized probability.
    pub fn map_state(&self) -> (State, f64) {
        let z = self.total();
        let (idx, &p) = self
            .probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("non-empty lattice");
        let prob = if z > 0.0 { p / z } else { 0.0 };
        (State(idx as u64), prob)
    }

    /// The `k` highest-mass states with their normalized probabilities,
    /// descending (ties broken by state index, ascending).
    pub fn top_k(&self, k: usize) -> Vec<(State, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry(f64, u64);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Primary: mass ascending (so the heap root is the smallest
                // kept entry); secondary: index descending, so that equal
                // masses prefer keeping the smaller index.
                self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
            }
        }

        if k == 0 {
            return Vec::with_capacity(0);
        }
        let z = self.total();
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
        for (idx, &p) in self.probs.iter().enumerate() {
            heap.push(Reverse(Entry(p, idx as u64)));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<(State, f64)> = heap
            .into_iter()
            .map(|Reverse(Entry(p, idx))| (State(idx), if z > 0.0 { p / z } else { 0.0 }))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.bits().cmp(&b.0.bits())));
        out
    }

    /// Expected number of positive subjects under the normalized posterior.
    pub fn expected_positives(&self) -> f64 {
        self.marginals().iter().sum()
    }

    /// Probability (normalized) that the number of positives is exactly `k`.
    pub fn rank_distribution(&self) -> Vec<f64> {
        let mut hist = vec![0.0; self.n_subjects + 1];
        let mut total = 0.0;
        for (idx, &p) in self.probs.iter().enumerate() {
            hist[(idx as u64).count_ones() as usize] += p;
            total += p;
        }
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::all_states;

    const TOL: f64 = 1e-12;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn uniform_total_is_one() {
        let d = DensePosterior::new_uniform(6);
        assert_close(d.total(), 1.0);
        assert_eq!(d.len(), 64);
    }

    #[test]
    fn from_risks_matches_direct_product() {
        let risks = [0.1, 0.35, 0.02, 0.5];
        let d = DensePosterior::from_risks(&risks);
        for s in all_states(risks.len()) {
            let mut expected = 1.0;
            for (i, &p) in risks.iter().enumerate() {
                expected *= if s.contains(i) { p } else { 1.0 - p };
            }
            assert!((d.get(s) - expected).abs() < TOL, "state {s}");
        }
        assert_close(d.total(), 1.0);
    }

    #[test]
    fn from_risks_extreme_probabilities() {
        let d = DensePosterior::from_risks(&[0.0, 1.0]);
        // Only the state {1} has mass.
        assert_close(d.get(State::from_subjects([1])), 1.0);
        assert_close(d.get(State::EMPTY), 0.0);
        assert_close(d.get(State::from_subjects([0])), 0.0);
        assert_close(d.get(State::from_subjects([0, 1])), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn from_risks_validates() {
        let _ = DensePosterior::from_risks(&[0.5, 1.5]);
    }

    #[test]
    fn marginals_match_risks_for_prior() {
        let risks = [0.05, 0.2, 0.6, 0.01, 0.33];
        let d = DensePosterior::from_risks(&risks);
        let m = d.marginals();
        for (a, b) in m.iter().zip(risks.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn marginals_of_zero_posterior_are_zero() {
        let d = DensePosterior::from_probs(2, vec![0.0; 4]);
        assert_eq!(d.marginals(), vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_and_degenerate() {
        let mut d = DensePosterior::from_probs(1, vec![3.0, 1.0]);
        let z = d.normalize();
        assert_close(z, 4.0);
        assert_close(d.get(State::EMPTY), 0.75);

        let mut zero = DensePosterior::from_probs(1, vec![0.0, 0.0]);
        assert!(zero.try_normalize().is_none());
        let mut nan = DensePosterior::from_probs(1, vec![f64::NAN, 1.0]);
        assert!(nan.try_normalize().is_none());
    }

    #[test]
    #[should_panic(expected = "observation impossible")]
    fn normalize_panics_on_zero_mass() {
        let mut zero = DensePosterior::from_probs(1, vec![0.0, 0.0]);
        let _ = zero.normalize();
    }

    #[test]
    fn mul_likelihood_indexes_by_intersection() {
        let mut d = DensePosterior::new_uniform(3);
        let pool = State::from_subjects([0, 2]);
        // table[k]: distinguishable per k
        let table = [1.0, 10.0, 100.0];
        d.mul_likelihood(pool, &table);
        let base = 1.0 / 8.0;
        assert_close(d.get(State::EMPTY), base);
        assert_close(d.get(State::from_subjects([1])), base);
        assert_close(d.get(State::from_subjects([0])), 10.0 * base);
        assert_close(d.get(State::from_subjects([2, 1])), 10.0 * base);
        assert_close(d.get(State::from_subjects([0, 2])), 100.0 * base);
    }

    #[test]
    fn fused_equals_separate() {
        let risks = [0.1, 0.2, 0.3, 0.4, 0.25];
        let pool = State::from_subjects([1, 3, 4]);
        let table = [0.95, 0.3, 0.2, 0.1];
        let mut a = DensePosterior::from_risks(&risks);
        let mut b = a.clone();
        a.mul_likelihood(pool, &table);
        let total = b.mul_likelihood_fused(pool, &table);
        assert_eq!(a.probs(), b.probs());
        assert_close(total, a.total());
    }

    #[test]
    #[should_panic(expected = "likelihood table too short")]
    fn mul_likelihood_table_length_checked() {
        let mut d = DensePosterior::new_uniform(3);
        d.mul_likelihood(State::from_subjects([0, 1]), &[1.0, 2.0]);
    }

    #[test]
    fn pool_negative_mass_matches_enumeration() {
        let risks = [0.3, 0.1, 0.25, 0.4];
        let d = DensePosterior::from_risks(&risks);
        let pool = State::from_subjects([1, 2]);
        let expected: f64 = all_states(4)
            .filter(|s| !s.intersects(pool))
            .map(|s| d.get(s))
            .sum();
        assert_close(d.pool_negative_mass(pool), expected);
        // For an independent prior, mass = ∏ (1-p_i) over pool members.
        assert_close(expected, 0.9 * 0.75);
    }

    #[test]
    fn prefix_masses_match_per_pool_scans() {
        let risks = [0.3, 0.1, 0.25, 0.4, 0.15];
        let d = DensePosterior::from_risks(&risks);
        let order = [3usize, 0, 4, 1, 2];
        let masses = d.prefix_negative_masses(&order);
        assert_eq!(masses.len(), 6);
        for k in 0..=order.len() {
            let pool = State::from_subjects(order[..k].iter().copied());
            assert!(
                (masses[k] - d.pool_negative_mass(pool)).abs() < 1e-9,
                "prefix {k}"
            );
        }
        assert_close(masses[0], d.total());
    }

    #[test]
    fn prefix_masses_partial_order() {
        // Order over a strict subset of subjects.
        let d = DensePosterior::from_risks(&[0.5, 0.5, 0.5]);
        let masses = d.prefix_negative_masses(&[1]);
        assert_eq!(masses.len(), 2);
        assert_close(masses[0], 1.0);
        assert_close(masses[1], 0.5);
    }

    #[test]
    #[should_panic(expected = "duplicate subject")]
    fn prefix_masses_rejects_duplicates() {
        let d = DensePosterior::new_uniform(3);
        let _ = d.prefix_negative_masses(&[1, 1]);
    }

    #[test]
    fn entropy_uniform_is_n_log2() {
        let d = DensePosterior::new_uniform(5);
        assert_close(d.entropy(), 32f64.ln());
        // Scaling the masses must not change the entropy.
        let scaled = DensePosterior::from_probs(5, d.probs().iter().map(|p| p * 7.0).collect());
        assert_close(scaled.entropy(), 32f64.ln());
    }

    #[test]
    fn entropy_point_mass_is_zero() {
        let mut probs = vec![0.0; 8];
        probs[3] = 2.5;
        let d = DensePosterior::from_probs(3, probs);
        assert_close(d.entropy(), 0.0);
    }

    #[test]
    fn map_state_and_top_k() {
        let mut probs = vec![0.0; 8];
        probs[5] = 0.5;
        probs[2] = 0.3;
        probs[7] = 0.2;
        let d = DensePosterior::from_probs(3, probs);
        let (s, p) = d.map_state();
        assert_eq!(s, State(5));
        assert_close(p, 0.5);
        let top = d.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, State(5));
        assert_eq!(top[1].0, State(2));
        assert_close(top[0].1, 0.5);
        assert!(d.top_k(0).is_empty());
        // k larger than the lattice is fine.
        assert_eq!(d.top_k(100).len(), 8);
    }

    #[test]
    fn top_k_tie_break_prefers_small_index() {
        let d = DensePosterior::from_probs(2, vec![0.25; 4]);
        let top = d.top_k(2);
        assert_eq!(top[0].0, State(0));
        assert_eq!(top[1].0, State(1));
    }

    #[test]
    fn expected_positives_matches_rank_distribution() {
        let risks = [0.2, 0.5, 0.1];
        let d = DensePosterior::from_risks(&risks);
        let expected: f64 = risks.iter().sum();
        assert_close(d.expected_positives(), expected);
        let rd = d.rank_distribution();
        assert_eq!(rd.len(), 4);
        assert_close(rd.iter().sum::<f64>(), 1.0);
        let mean_rank: f64 = rd.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert_close(mean_rank, expected);
    }

    #[test]
    fn from_fn_builds_by_state() {
        let d = DensePosterior::from_fn(3, |s| s.rank() as f64);
        assert_eq!(d.get(State::from_subjects([0, 1, 2])), 3.0);
        assert_eq!(d.get(State::EMPTY), 0.0);
    }
}
