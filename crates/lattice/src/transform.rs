//! Zeta and Möbius transforms on the Boolean lattice (subset-sum DP).
//!
//! The *zeta transform* of a mass vector `f` is
//! `ζf(t) = Σ_{s ⊆ t} f(s)` — the cumulative mass of every principal
//! down-set — computed for **all** `2^N` sets simultaneously in
//! `Θ(N · 2^N)` by the Yates/SOS dynamic program. The *Möbius transform*
//! inverts it.
//!
//! Why this matters here: the pool-negative mass of pool `A` is
//! `m(A) = Σ_{s ∩ A = ∅} π(s) = ζπ(complement(A))`. One zeta transform
//! therefore prices **every possible pool at once**, turning the exhaustive
//! Bayesian-halving search from `Θ(4^N)` (one `Θ(2^N)` scan per subset)
//! into `Θ(N · 2^N)` — the lattice-algebra speedup that makes globally
//! optimal selection feasible wherever the posterior fits in memory.
//! [`crate::kernels`]-style chunk parallelism applies per DP level.

use rayon::prelude::*;

use crate::dense::DensePosterior;

/// In-place zeta transform: `f[t] ← Σ_{s ⊆ t} f[s]`.
///
/// # Panics
/// Panics if `f.len()` is not `2^n`.
pub fn zeta_in_place(f: &mut [f64], n: usize) {
    assert_eq!(f.len(), crate::num_states(n), "length must be 2^n");
    for i in 0..n {
        let bit = 1usize << i;
        // Standard SOS DP level: every set containing subject i absorbs
        // the mass of the same set without i.
        for t in 0..f.len() {
            if t & bit != 0 {
                f[t] += f[t ^ bit];
            }
        }
    }
}

/// In-place Möbius transform (inverse of [`zeta_in_place`]):
/// `f[t] ← Σ_{s ⊆ t} (−1)^{|t\s|} f[s]`.
pub fn mobius_in_place(f: &mut [f64], n: usize) {
    assert_eq!(f.len(), crate::num_states(n), "length must be 2^n");
    for i in 0..n {
        let bit = 1usize << i;
        for t in 0..f.len() {
            if t & bit != 0 {
                f[t] -= f[t ^ bit];
            }
        }
    }
}

/// Parallel zeta transform: each DP level is a chunk-parallel sweep.
///
/// Within level `i`, slot `t` (with bit `i` set) reads `t ^ bit` and writes
/// `t`; splitting the array into aligned blocks of `2^(i+1)` keeps every
/// read and write inside one task's range, so levels parallelize without
/// synchronization. Levels themselves are sequential (each depends on the
/// previous), mirroring how a Spark implementation would run `N` narrow
/// stages.
pub fn zeta_in_place_par(f: &mut [f64], n: usize, min_block_per_task: usize) {
    assert_eq!(f.len(), crate::num_states(n), "length must be 2^n");
    for i in 0..n {
        let bit = 1usize << i;
        let block = bit << 1;
        if f.len() / block >= 2 && f.len() >= min_block_per_task.max(2) {
            // Round the task size up to a whole number of blocks so no DP
            // block straddles two tasks (the level would race / go out of
            // bounds otherwise). `f.len()` is a power of two, so the final
            // ragged chunk is still a multiple of `block`.
            let chunk_size = min_block_per_task.max(block).div_ceil(block) * block;
            f.par_chunks_mut(chunk_size).for_each(|chunk| {
                let mut base = 0;
                while base < chunk.len() {
                    for off in 0..bit {
                        chunk[base + bit + off] += chunk[base + off];
                    }
                    base += block;
                }
            });
        } else {
            for t in 0..f.len() {
                if t & bit != 0 {
                    f[t] += f[t ^ bit];
                }
            }
        }
    }
}

/// Pool-negative masses of **every** pool of a cohort in `Θ(N · 2^N)`:
/// `out[pool] = Σ_{s ∩ pool = ∅} π(s)`.
///
/// One zeta transform prices all `2^N` candidate pools simultaneously;
/// `out[pool] = ζπ(complement(pool))`.
pub fn all_pool_negative_masses(posterior: &DensePosterior) -> Vec<f64> {
    let n = posterior.n_subjects();
    let mut zeta = posterior.probs().to_vec();
    zeta_in_place(&mut zeta, n);
    let full = crate::num_states(n) - 1;
    (0..=full).map(|pool| zeta[pool ^ full]).collect()
}

/// Parallel variant of [`all_pool_negative_masses`].
pub fn all_pool_negative_masses_par(posterior: &DensePosterior, min_block: usize) -> Vec<f64> {
    let n = posterior.n_subjects();
    let mut zeta = posterior.probs().to_vec();
    zeta_in_place_par(&mut zeta, n, min_block);
    let full = crate::num_states(n) - 1;
    let zeta = &zeta;
    (0..=full)
        .into_par_iter()
        .map(|pool| zeta[pool ^ full])
        .collect()
}

/// Up-set (superset) masses of every set in `Θ(N · 2^N)`:
/// `out[t] = Σ_{s ⊇ t} π(s)` — e.g. `out[{i}]` is subject `i`'s marginal
/// times the total, and `out[t]` the probability that *all* of `t` is
/// positive (joint infection probability of a contact cluster).
pub fn up_set_masses(posterior: &DensePosterior) -> Vec<f64> {
    let n = posterior.n_subjects();
    let len = posterior.len();
    // Superset-sum = subset-sum on the complemented index.
    let full = len - 1;
    let mut g = vec![0.0f64; len];
    for (idx, &p) in posterior.probs().iter().enumerate() {
        g[idx ^ full] = p;
    }
    zeta_in_place(&mut g, n);
    let mut out = vec![0.0f64; len];
    for (idx, slot) in out.iter_mut().enumerate() {
        *slot = g[idx ^ full];
    }
    out
}

/// Reconstruct a mass vector from its down-set cumulative form — round-trip
/// helper used to validate lattice-model manipulations.
pub fn mobius_of_zeta(mut zeta: Vec<f64>, n: usize) -> Vec<f64> {
    mobius_in_place(&mut zeta, n);
    zeta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::all_states;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    fn example(n: usize) -> DensePosterior {
        let risks: Vec<f64> = (0..n).map(|i| 0.03 + 0.07 * i as f64 / n as f64).collect();
        DensePosterior::from_risks(&risks)
    }

    #[test]
    fn zeta_matches_naive() {
        let d = example(6);
        let mut f = d.probs().to_vec();
        zeta_in_place(&mut f, 6);
        for t in all_states(6) {
            let naive: f64 = all_states(6)
                .filter(|s| s.is_subset_of(t))
                .map(|s| d.get(s))
                .sum();
            assert!(close(f[t.index()], naive), "t={t}");
        }
    }

    #[test]
    fn mobius_inverts_zeta() {
        let d = example(7);
        let mut f = d.probs().to_vec();
        zeta_in_place(&mut f, 7);
        mobius_in_place(&mut f, 7);
        for (a, b) in f.iter().zip(d.probs()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn parallel_zeta_matches_serial() {
        let d = example(9);
        let mut serial = d.probs().to_vec();
        zeta_in_place(&mut serial, 9);
        for min_block in [2usize, 8, 12, 64, 100, 1024] {
            let mut parallel = d.probs().to_vec();
            zeta_in_place_par(&mut parallel, 9, min_block);
            for (a, b) in serial.iter().zip(&parallel) {
                assert!(close(*a, *b), "min_block={min_block}");
            }
        }
    }

    #[test]
    fn all_pool_masses_match_per_pool_scans() {
        let d = example(7);
        let all = all_pool_negative_masses(&d);
        assert_eq!(all.len(), 128);
        for pool in all_states(7) {
            assert!(
                close(all[pool.index()], d.pool_negative_mass(pool)),
                "pool={pool}"
            );
        }
        // The empty pool's negative mass is the total.
        assert!(close(all[0], d.total()));
    }

    #[test]
    fn all_pool_masses_par_matches_serial() {
        let d = example(8);
        let a = all_pool_negative_masses(&d);
        let b = all_pool_negative_masses_par(&d, 16);
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn up_set_masses_give_marginals_and_joints() {
        let risks = [0.2, 0.35, 0.1, 0.05];
        let d = DensePosterior::from_risks(&risks);
        let up = up_set_masses(&d);
        // Singletons: marginals (prior is normalized).
        for (i, &p) in risks.iter().enumerate() {
            assert!(close(up[1 << i], p), "subject {i}");
        }
        // Pairs: product under independence.
        assert!(close(up[0b11], 0.2 * 0.35));
        // Empty set: total mass.
        assert!(close(up[0], 1.0));
        // Full set: all-positive probability.
        assert!(close(up[0b1111], risks.iter().product()));
    }

    #[test]
    fn roundtrip_helper() {
        let d = example(5);
        let mut z = d.probs().to_vec();
        zeta_in_place(&mut z, 5);
        let back = mobius_of_zeta(z, 5);
        for (a, b) in back.iter().zip(d.probs()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    #[should_panic(expected = "length must be 2^n")]
    fn zeta_validates_length() {
        let mut f = vec![0.0; 6];
        zeta_in_place(&mut f, 3);
    }
}
