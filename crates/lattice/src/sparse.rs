//! Sparse (pruned) posterior representation.
//!
//! After a handful of informative pooled tests, posterior mass concentrates
//! on a tiny fraction of the `2^N` states. HiBGT (HiPC '22) exploits this by
//! pruning states whose normalized mass falls below a threshold `ε`, turning
//! the exponential lattice into a working set that fits cache. This module
//! reproduces that representation; experiment E10 measures the
//! time/accuracy trade-off of the threshold.
//!
//! Entries are kept sorted by state index and unique, so dense ↔ sparse
//! conversions and merges are linear.

use crate::dense::DensePosterior;
use crate::state::State;

/// Pruned posterior: explicit `(state, mass)` entries, sorted by state
/// index, plus a record of the total mass discarded by pruning so callers
/// can bound the approximation error.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsePosterior {
    n_subjects: usize,
    entries: Vec<(State, f64)>,
    pruned_mass: f64,
}

impl SparsePosterior {
    /// Build from explicit entries. Entries are sorted and must contain no
    /// duplicate states.
    ///
    /// # Panics
    /// Panics on duplicate states or states out of range for `n`.
    pub fn from_entries(n: usize, mut entries: Vec<(State, f64)>) -> Self {
        let limit = crate::num_states(n) as u64;
        entries.sort_unstable_by_key(|(s, _)| s.bits());
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate state {}", w[0].0);
        }
        if let Some((s, _)) = entries.last() {
            assert!(s.bits() < limit, "state {s} out of range for n={n}");
        }
        SparsePosterior {
            n_subjects: n,
            entries,
            pruned_mass: 0.0,
        }
    }

    /// Rebuild from checkpointed parts: retained entries (validated and
    /// sorted exactly like [`Self::from_entries`]) plus the recorded pruned
    /// mass, so a snapshot restore reproduces the live posterior bit for
    /// bit — including the conservation invariant
    /// `total() + pruned_mass() == 1` a long-running session maintains.
    ///
    /// # Panics
    /// Panics on duplicate states or states out of range for `n`.
    pub fn from_parts(n: usize, entries: Vec<(State, f64)>, pruned_mass: f64) -> Self {
        let mut s = Self::from_entries(n, entries);
        s.pruned_mass = pruned_mass;
        s
    }

    /// Convert from dense, dropping states whose share of the total mass is
    /// `< epsilon`. `epsilon = 0.0` keeps every state with positive mass.
    pub fn from_dense(dense: &DensePosterior, epsilon: f64) -> Self {
        let total = dense.total();
        let cut = if total > 0.0 { epsilon * total } else { 0.0 };
        let mut entries = Vec::new();
        let mut pruned = 0.0;
        for (idx, &p) in dense.probs().iter().enumerate() {
            if p > cut && p > 0.0 {
                entries.push((State(idx as u64), p));
            } else {
                pruned += p;
            }
        }
        SparsePosterior {
            n_subjects: dense.n_subjects(),
            entries,
            pruned_mass: pruned,
        }
    }

    /// Expand to the dense representation (pruned states get zero mass).
    pub fn to_dense(&self) -> DensePosterior {
        let mut probs = vec![0.0; crate::num_states(self.n_subjects)];
        for &(s, p) in &self.entries {
            probs[s.index()] = p;
        }
        DensePosterior::from_probs(self.n_subjects, probs)
    }

    /// Cohort size `N`.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Number of retained states (the working-set size).
    pub fn support(&self) -> usize {
        self.entries.len()
    }

    /// Mass discarded by pruning since construction (unnormalized units of
    /// the posterior at the time of each prune).
    pub fn pruned_mass(&self) -> f64 {
        self.pruned_mass
    }

    /// Borrow the entries, sorted by state index.
    pub fn entries(&self) -> &[(State, f64)] {
        &self.entries
    }

    /// Mass of one state (zero when pruned).
    pub fn get(&self, s: State) -> f64 {
        match self
            .entries
            .binary_search_by_key(&s.bits(), |(t, _)| t.bits())
        {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Total retained mass.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, p)| p).sum()
    }

    /// Normalize retained mass to 1; returns `Z`, or `None` when degenerate.
    pub fn try_normalize(&mut self) -> Option<f64> {
        let z = self.total();
        if !(z.is_finite() && z > 0.0) {
            return None;
        }
        let inv = 1.0 / z;
        for (_, p) in &mut self.entries {
            *p *= inv;
        }
        Some(z)
    }

    /// Rescale the retained entries so `total() + pruned_mass() == 1` — the
    /// conservation invariant a long-running pruned session maintains
    /// between rounds. Unlike [`Self::try_normalize`], which forces the
    /// retained mass alone to 1 (and thereby silently inflates the pruned
    /// share back into the retained states), this keeps the pruned record in
    /// the *same units* as the retained vector across arbitrarily many
    /// update→prune cycles. Returns the retained mass before scaling, or
    /// `None` when degenerate (empty/zero/non-finite retained mass, or
    /// `pruned_mass >= 1`).
    pub fn renormalize_retained(&mut self) -> Option<f64> {
        let z = self.total();
        let target = 1.0 - self.pruned_mass;
        if !(z.is_finite() && z > 0.0) || target <= 0.0 {
            return None;
        }
        let scale = target / z;
        for (_, p) in &mut self.entries {
            *p *= scale;
        }
        Some(z)
    }

    /// Multiply each retained state's mass by `table[|s ∩ pool|]` and return
    /// the new total (fused pass, like the dense kernel).
    pub fn mul_likelihood_fused(&mut self, pool: State, table: &[f64]) -> f64 {
        assert!(
            table.len() > pool.rank() as usize,
            "likelihood table too short"
        );
        let mut total = 0.0;
        for (s, p) in &mut self.entries {
            *p *= table[s.positives_in(pool) as usize];
            total += *p;
        }
        total
    }

    /// Drop retained states whose share of the retained mass is `< epsilon`;
    /// returns the mass discarded by this call (also added to
    /// [`Self::pruned_mass`]).
    pub fn prune(&mut self, epsilon: f64) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        let cut = epsilon * total;
        let mut dropped = 0.0;
        self.entries.retain(|&(_, p)| {
            if p > cut {
                true
            } else {
                dropped += p;
                false
            }
        });
        self.pruned_mass += dropped;
        dropped
    }

    /// Posterior marginals over retained mass (normalized by retained total).
    pub fn marginals(&self) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_subjects];
        let mut total = 0.0;
        for &(s, p) in &self.entries {
            total += p;
            for b in s.subjects() {
                acc[b] += p;
            }
        }
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Mass of the pool-negative set among retained states.
    pub fn pool_negative_mass(&self, pool: State) -> f64 {
        self.entries
            .iter()
            .filter(|(s, _)| !s.intersects(pool))
            .map(|(_, p)| p)
            .sum()
    }

    /// Prefix pool-negative masses (see
    /// [`DensePosterior::prefix_negative_masses`]); same histogram method
    /// over the retained states only.
    pub fn prefix_negative_masses(&self, order: &[usize]) -> Vec<f64> {
        let m = order.len();
        let mut pos_of = vec![u32::MAX; self.n_subjects];
        for (k, &subj) in order.iter().enumerate() {
            assert!(subj < self.n_subjects, "subject {subj} out of range");
            assert!(
                pos_of[subj] == u32::MAX,
                "duplicate subject {subj} in order"
            );
            pos_of[subj] = k as u32;
        }
        let mut hist = vec![0.0f64; m + 1];
        for &(s, p) in &self.entries {
            let mut first = m as u32;
            for b in s.subjects() {
                let pos = pos_of[b];
                if pos < first {
                    first = pos;
                    if first == 0 {
                        break;
                    }
                }
            }
            hist[first as usize] += p;
        }
        let mut masses = vec![0.0f64; m + 1];
        let mut running = 0.0;
        for k in (0..=m).rev() {
            running += hist[k];
            masses[k] = running;
        }
        masses
    }

    /// Shannon entropy (nats) of the retained, normalized posterior.
    pub fn entropy(&self) -> f64 {
        let z = self.total();
        if !(z.is_finite() && z > 0.0) {
            return 0.0;
        }
        let mut sum_plogp = 0.0;
        for &(_, p) in &self.entries {
            if p > 0.0 {
                sum_plogp += p * p.ln();
            }
        }
        z.ln() - sum_plogp / z
    }

    /// MAP state among retained states and its normalized probability.
    /// `None` when the support is empty.
    pub fn map_state(&self) -> Option<(State, f64)> {
        let z = self.total();
        self.entries
            .iter()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|&(s, p)| (s, if z > 0.0 { p / z } else { 0.0 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    fn example_dense() -> DensePosterior {
        DensePosterior::from_risks(&[0.3, 0.05, 0.5, 0.12])
    }

    #[test]
    fn roundtrip_without_pruning() {
        let d = example_dense();
        let s = SparsePosterior::from_dense(&d, 0.0);
        let back = s.to_dense();
        for (a, b) in d.probs().iter().zip(back.probs()) {
            assert_close(*a, *b);
        }
        assert_eq!(s.pruned_mass(), 0.0);
    }

    #[test]
    fn pruning_drops_small_states() {
        let d = example_dense();
        let s = SparsePosterior::from_dense(&d, 0.01);
        assert!(s.support() < d.len());
        assert!(s.pruned_mass() > 0.0);
        // Retained + pruned = original total.
        assert_close(s.total() + s.pruned_mass(), d.total());
    }

    #[test]
    fn sparse_ops_agree_with_dense_when_unpruned() {
        let d = example_dense();
        let s = SparsePosterior::from_dense(&d, 0.0);
        assert_close(s.total(), d.total());
        assert_close(s.entropy(), d.entropy());
        let pool = State::from_subjects([0, 2]);
        assert_close(s.pool_negative_mass(pool), d.pool_negative_mass(pool));
        for (a, b) in s.marginals().iter().zip(d.marginals()) {
            assert_close(*a, b);
        }
        let order = [2usize, 0, 3, 1];
        for (a, b) in s
            .prefix_negative_masses(&order)
            .iter()
            .zip(d.prefix_negative_masses(&order))
        {
            assert_close(*a, b);
        }
        let (ms, mp) = s.map_state().unwrap();
        let (dms, dmp) = d.map_state();
        assert_eq!(ms, dms);
        assert_close(mp, dmp);
    }

    #[test]
    fn mul_likelihood_fused_matches_dense() {
        let mut d = example_dense();
        let mut s = SparsePosterior::from_dense(&d, 0.0);
        let pool = State::from_subjects([1, 2, 3]);
        let table = [0.97, 0.4, 0.25, 0.15];
        let td = d.mul_likelihood_fused(pool, &table);
        let ts = s.mul_likelihood_fused(pool, &table);
        assert_close(td, ts);
        for &(st, p) in s.entries() {
            assert_close(p, d.get(st));
        }
    }

    #[test]
    fn prune_returns_dropped_mass() {
        let d = example_dense();
        let mut s = SparsePosterior::from_dense(&d, 0.0);
        let before = s.total();
        let dropped = s.prune(0.02);
        assert!(dropped > 0.0);
        assert_close(s.total() + dropped, before);
        assert_close(s.pruned_mass(), dropped);
        // Second prune with same epsilon may drop more (threshold is
        // relative to the reduced total) but never goes negative.
        let dropped2 = s.prune(0.02);
        assert!(dropped2 >= 0.0);
    }

    #[test]
    fn get_on_pruned_state_is_zero() {
        let d = example_dense();
        let s = SparsePosterior::from_dense(&d, 0.05);
        let full = State::from_subjects([0, 1, 2, 3]);
        // The all-positive state has tiny prior mass under these risks.
        assert_eq!(s.get(full), 0.0);
    }

    #[test]
    fn normalize_degenerate() {
        let mut s = SparsePosterior::from_entries(3, vec![]);
        assert!(s.try_normalize().is_none());
        assert_eq!(s.map_state(), None);
        assert_eq!(s.entropy(), 0.0);
        assert_eq!(s.marginals(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate state")]
    fn from_entries_rejects_duplicates() {
        let _ = SparsePosterior::from_entries(2, vec![(State(1), 0.5), (State(1), 0.5)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_entries_rejects_out_of_range() {
        let _ = SparsePosterior::from_entries(2, vec![(State(7), 0.5)]);
    }

    #[test]
    fn from_parts_restores_pruned_mass_bit_exact() {
        let d = example_dense();
        let mut s = SparsePosterior::from_dense(&d, 0.0);
        s.prune(0.02);
        let restored =
            SparsePosterior::from_parts(s.n_subjects(), s.entries().to_vec(), s.pruned_mass());
        assert_eq!(restored, s);
    }

    #[test]
    fn from_entries_sorts() {
        let s = SparsePosterior::from_entries(3, vec![(State(5), 0.2), (State(1), 0.8)]);
        assert_eq!(s.entries()[0].0, State(1));
        assert_close(s.get(State(5)), 0.2);
    }
}
