//! Product-of-chains lattices: general classification models.
//!
//! The Boolean lattice (`2^N`) classifies each subject into two states.
//! The underlying framework of Tatsuoka et al. is more general: each
//! subject `i` may occupy one of `L_i` *ordered* levels (e.g. negative /
//! low viral load / high viral load), and the joint state space is the
//! product of chains `C_{L_0} × ... × C_{L_{N-1}}`, ordered
//! component-wise. The Boolean case is `L_i = 2` everywhere.
//!
//! Pooled tests generalize naturally: a pool's analyte content is the sum
//! of its members' levels, so a likelihood table indexed by *total pooled
//! level* (instead of positive count) drives the same multiply-and-reduce
//! kernels. States are mixed-radix integers, so the dense layout and
//! chunked traversals carry over unchanged.

use serde::{Deserialize, Serialize};

/// Shape of a product-of-chains lattice: subject `i` has `levels[i] ≥ 2`
/// ordered states `0 .. levels[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainShape {
    levels: Vec<u8>,
    /// Mixed-radix place values: `strides[i]` = product of `levels[..i]`.
    strides: Vec<usize>,
    len: usize,
}

impl ChainShape {
    /// Build a shape from per-subject level counts.
    ///
    /// # Panics
    /// Panics when empty, when any subject has fewer than 2 levels, or when
    /// the product of levels overflows `usize`.
    pub fn new(levels: &[u8]) -> Self {
        assert!(!levels.is_empty(), "need at least one subject");
        let mut strides = Vec::with_capacity(levels.len());
        let mut len: usize = 1;
        for (i, &l) in levels.iter().enumerate() {
            assert!(l >= 2, "subject {i} needs at least 2 levels");
            strides.push(len);
            len = len
                .checked_mul(l as usize)
                .expect("lattice size overflows usize");
        }
        ChainShape {
            levels: levels.to_vec(),
            strides,
            len,
        }
    }

    /// Uniform shape: `n` subjects with `l` levels each.
    pub fn uniform(n: usize, l: u8) -> Self {
        ChainShape::new(&vec![l; n])
    }

    /// Number of subjects.
    pub fn n_subjects(&self) -> usize {
        self.levels.len()
    }

    /// Level count of subject `i`.
    pub fn levels_of(&self, i: usize) -> u8 {
        self.levels[i]
    }

    /// Total number of joint states (product of level counts).
    pub fn num_states(&self) -> usize {
        self.len
    }

    /// Maximum possible total level over a pool of subject indices.
    pub fn max_pool_level(&self, pool: &[usize]) -> u32 {
        pool.iter().map(|&i| u32::from(self.levels[i]) - 1).sum()
    }

    /// Decode subject `i`'s level from a state index.
    #[inline]
    pub fn level(&self, state: usize, i: usize) -> u8 {
        ((state / self.strides[i]) % self.levels[i] as usize) as u8
    }

    /// Encode a full level assignment into a state index.
    ///
    /// # Panics
    /// Panics on length mismatch or an out-of-range level (debug).
    pub fn encode(&self, levels: &[u8]) -> usize {
        assert_eq!(levels.len(), self.levels.len());
        let mut idx = 0usize;
        for (i, &l) in levels.iter().enumerate() {
            debug_assert!(l < self.levels[i]);
            idx += self.strides[i] * l as usize;
        }
        idx
    }

    /// Decode a state index into a level assignment.
    pub fn decode(&self, state: usize) -> Vec<u8> {
        (0..self.n_subjects())
            .map(|i| self.level(state, i))
            .collect()
    }

    /// Total level a state places into a pool (the analyte content).
    pub fn pool_level(&self, state: usize, pool: &[usize]) -> u32 {
        pool.iter().map(|&i| u32::from(self.level(state, i))).sum()
    }

    /// Component-wise lattice order: `a ≤ b` iff every subject's level in
    /// `a` is ≤ its level in `b`.
    pub fn leq(&self, a: usize, b: usize) -> bool {
        (0..self.n_subjects()).all(|i| self.level(a, i) <= self.level(b, i))
    }
}

/// Dense posterior over a product-of-chains lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPosterior {
    shape: ChainShape,
    probs: Vec<f64>,
}

impl ChainPosterior {
    /// Independent prior: `priors[i][l]` is subject `i`'s prior probability
    /// of level `l` (each row must have `shape.levels_of(i)` entries
    /// summing to 1 within tolerance).
    pub fn from_priors(shape: ChainShape, priors: &[Vec<f64>]) -> Self {
        assert_eq!(priors.len(), shape.n_subjects());
        for (i, row) in priors.iter().enumerate() {
            assert_eq!(row.len(), shape.levels_of(i) as usize, "subject {i}");
            let total: f64 = row.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "subject {i} prior sums to {total}"
            );
            assert!(row.iter().all(|&p| p >= 0.0));
        }
        // Mixed-radix doubling: extend one subject at a time.
        let mut probs = vec![1.0f64];
        for row in priors {
            let mut next = Vec::with_capacity(probs.len() * row.len());
            for &p_level in row {
                next.extend(probs.iter().map(|&p| p * p_level));
            }
            // Mixed radix builds most-significant-last: reorder so that
            // subject 0 is the least significant digit, matching `encode`.
            // Extending least-significant-first means each new subject's
            // level varies slowest — i.e. iterate levels outermost, as
            // done above with `next` blocks of the old length.
            probs = next;
        }
        // The construction above appends each new subject as the *most*
        // significant digit, which is exactly `strides` order (subject 0
        // least significant), so the layout matches `encode`.
        ChainPosterior { shape, probs }
    }

    /// Uniform mass over all joint states.
    pub fn new_uniform(shape: ChainShape) -> Self {
        let len = shape.num_states();
        ChainPosterior {
            shape,
            probs: vec![1.0 / len as f64; len],
        }
    }

    /// The lattice shape.
    pub fn shape(&self) -> &ChainShape {
        &self.shape
    }

    /// Number of joint states.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mass of one state index.
    pub fn get(&self, state: usize) -> f64 {
        self.probs[state]
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Fused multiply + total: multiply each state by
    /// `table[pool_level(state)]` (the likelihood of the observed outcome
    /// given the pool's total analyte level) and return the new total.
    ///
    /// # Panics
    /// Panics when the table is shorter than `max_pool_level(pool) + 1`.
    pub fn mul_likelihood_fused(&mut self, pool: &[usize], table: &[f64]) -> f64 {
        let needed = self.shape.max_pool_level(pool) as usize + 1;
        assert!(table.len() >= needed, "table needs {needed} entries");
        let mut total = 0.0;
        for (state, p) in self.probs.iter_mut().enumerate() {
            let level = self.shape.pool_level(state, pool) as usize;
            *p *= table[level];
            total += *p;
        }
        total
    }

    /// Normalize; `None` when degenerate.
    pub fn try_normalize(&mut self) -> Option<f64> {
        let z = self.total();
        if !(z.is_finite() && z > 0.0) {
            return None;
        }
        let inv = 1.0 / z;
        for p in &mut self.probs {
            *p *= inv;
        }
        Some(z)
    }

    /// Per-subject level marginals: `out[i][l] = P(subject i at level l)`,
    /// normalized, in one traversal.
    pub fn level_marginals(&self) -> Vec<Vec<f64>> {
        let n = self.shape.n_subjects();
        let mut acc: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![0.0; self.shape.levels_of(i) as usize])
            .collect();
        let mut total = 0.0;
        for (state, &p) in self.probs.iter().enumerate() {
            total += p;
            for (i, row) in acc.iter_mut().enumerate() {
                row[self.shape.level(state, i) as usize] += p;
            }
        }
        if total > 0.0 {
            for row in &mut acc {
                for v in row {
                    *v /= total;
                }
            }
        }
        acc
    }

    /// `P(subject i at level ≥ 1)` — the "any positivity" marginal that
    /// reduces to the Boolean marginal when `L_i = 2`.
    pub fn positive_marginals(&self) -> Vec<f64> {
        self.level_marginals()
            .into_iter()
            .map(|row| row[1..].iter().sum())
            .collect()
    }

    /// MAP joint state and its normalized probability.
    pub fn map_state(&self) -> (usize, f64) {
        let z = self.total();
        let (idx, &p) = self
            .probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("non-empty lattice");
        (idx, if z > 0.0 { p / z } else { 0.0 })
    }

    /// Distribution of a pool's total level under the normalized
    /// posterior: `out[t] = P(pool content = t)`, for `t` up to the pool's
    /// maximum level. One traversal; this is both the predictive outcome
    /// driver and the halving objective for graded lattices
    /// (`out[0]` is the pool-zero/"all clear" mass the halving rule
    /// bisects on).
    pub fn pool_level_distribution(&self, pool: &[usize]) -> Vec<f64> {
        let max = self.shape.max_pool_level(pool) as usize;
        let mut hist = vec![0.0f64; max + 1];
        let mut total = 0.0;
        for (state, &p) in self.probs.iter().enumerate() {
            hist[self.shape.pool_level(state, pool) as usize] += p;
            total += p;
        }
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }

    /// Bayesian halving over prefix pools of `order` (subjects by
    /// ascending positive-marginal): the prefix whose pool-zero mass is
    /// nearest ½. Returns `(pool, zero_mass)`; `None` when `order` is
    /// empty or the posterior degenerate.
    pub fn select_halving_prefix(
        &self,
        order: &[usize],
        max_pool_size: usize,
    ) -> Option<(Vec<usize>, f64)> {
        let cap = max_pool_size.min(order.len());
        if cap == 0 {
            return None;
        }
        let total = self.total();
        if !(total.is_finite() && total > 0.0) {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for k in 1..=cap {
            let pool = &order[..k];
            let zero = self.pool_level_distribution(pool)[0];
            let d = (zero - 0.5).abs();
            let better = match best {
                None => true,
                Some((_, bd)) => d + 1e-12 < bd,
            };
            if better {
                best = Some((k, d));
            }
        }
        best.map(|(k, _)| {
            let pool = order[..k].to_vec();
            let zero = self.pool_level_distribution(&pool)[0];
            (pool, zero)
        })
    }

    /// Shannon entropy (nats).
    pub fn entropy(&self) -> f64 {
        let z = self.total();
        if !(z.is_finite() && z > 0.0) {
            return 0.0;
        }
        let mut sum_plogp = 0.0;
        for &p in &self.probs {
            if p > 0.0 {
                sum_plogp += p * p.ln();
            }
        }
        z.ln() - sum_plogp / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DensePosterior;
    use crate::state::State;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn shape_arithmetic() {
        let shape = ChainShape::new(&[2, 3, 2]);
        assert_eq!(shape.num_states(), 12);
        assert_eq!(shape.n_subjects(), 3);
        // encode/decode roundtrip for every state.
        for state in 0..12 {
            let levels = shape.decode(state);
            assert_eq!(shape.encode(&levels), state);
            for (i, &l) in levels.iter().enumerate() {
                assert_eq!(shape.level(state, i), l);
                assert!(l < shape.levels_of(i));
            }
        }
    }

    #[test]
    fn order_is_componentwise() {
        let shape = ChainShape::new(&[2, 3]);
        let a = shape.encode(&[0, 1]);
        let b = shape.encode(&[1, 2]);
        let c = shape.encode(&[1, 0]);
        assert!(shape.leq(a, b));
        assert!(!shape.leq(b, a));
        assert!(!shape.leq(a, c) && !shape.leq(c, a)); // incomparable
        assert!(shape.leq(0, a));
    }

    #[test]
    fn boolean_case_matches_dense_posterior() {
        // L = 2 everywhere reduces exactly to the Boolean machinery:
        // priors [1-p, p], table indexed by positive count.
        let risks = [0.1, 0.3, 0.2];
        let shape = ChainShape::uniform(3, 2);
        let priors: Vec<Vec<f64>> = risks.iter().map(|&p| vec![1.0 - p, p]).collect();
        let mut chains = ChainPosterior::from_priors(shape, &priors);
        let mut boolean = DensePosterior::from_risks(&risks);

        // Prior agreement state-by-state (indices coincide: level of
        // subject i is bit i).
        for state in 0..8usize {
            assert!(
                close(chains.get(state), boolean.get(State(state as u64))),
                "state {state}: {} vs {}",
                chains.get(state),
                boolean.get(State(state as u64))
            );
        }

        // Update agreement on pool {0, 2}.
        let table = [0.97, 0.4, 0.2];
        let zc = chains.mul_likelihood_fused(&[0, 2], &table);
        let zb = boolean.mul_likelihood_fused(State::from_subjects([0, 2]), &table);
        assert!(close(zc, zb));
        for (a, b) in chains.positive_marginals().iter().zip(boolean.marginals()) {
            assert!(close(*a, b));
        }
        assert!(close(chains.entropy(), boolean.entropy()));
    }

    #[test]
    fn three_level_prior_and_marginals() {
        // One subject, three levels.
        let shape = ChainShape::new(&[3]);
        let prior = vec![vec![0.7, 0.2, 0.1]];
        let post = ChainPosterior::from_priors(shape, &prior);
        let m = post.level_marginals();
        assert!(close(m[0][0], 0.7));
        assert!(close(m[0][1], 0.2));
        assert!(close(m[0][2], 0.1));
        assert!(close(post.positive_marginals()[0], 0.3));
        assert!(close(post.total(), 1.0));
    }

    #[test]
    fn independent_prior_factorizes() {
        let shape = ChainShape::new(&[3, 2]);
        let priors = vec![vec![0.5, 0.3, 0.2], vec![0.9, 0.1]];
        let post = ChainPosterior::from_priors(shape.clone(), &priors);
        for state in 0..shape.num_states() {
            let levels = shape.decode(state);
            let expected = priors[0][levels[0] as usize] * priors[1][levels[1] as usize];
            assert!(close(post.get(state), expected), "state {state}");
        }
    }

    #[test]
    fn viral_load_update_prefers_consistent_levels() {
        // Two subjects with 3 levels (neg/low/high). A pooled outcome whose
        // likelihood peaks at total level 2 should favor {low, low},
        // {high, neg} and {neg, high} over {neg, neg} and {high, high}.
        let shape = ChainShape::uniform(2, 3);
        let priors = vec![vec![1.0 / 3.0; 3]; 2];
        let mut post = ChainPosterior::from_priors(shape.clone(), &priors);
        // table[total_level] with a peak at 2 (max total level = 4).
        let table = [0.05, 0.2, 1.0, 0.2, 0.05];
        post.mul_likelihood_fused(&[0, 1], &table);
        post.try_normalize().unwrap();
        let best = shape.encode(&[1, 1]);
        let worst = shape.encode(&[0, 0]);
        assert!(post.get(best) > post.get(worst));
        let (map, _) = post.map_state();
        assert_eq!(shape.pool_level(map, &[0, 1]), 2);
    }

    #[test]
    fn mixed_shapes_update_and_entropy() {
        let shape = ChainShape::new(&[2, 4, 3]);
        let priors = vec![
            vec![0.8, 0.2],
            vec![0.4, 0.3, 0.2, 0.1],
            vec![0.6, 0.3, 0.1],
        ];
        let mut post = ChainPosterior::from_priors(shape.clone(), &priors);
        assert_eq!(post.len(), 24);
        assert!(close(post.total(), 1.0));
        let h_before = post.entropy();
        // An informative observation on pool {1, 2}: max level 3 + 2 = 5.
        let table = [1.0, 0.5, 0.25, 0.12, 0.06, 0.03];
        assert_eq!(shape.max_pool_level(&[1, 2]), 5);
        post.mul_likelihood_fused(&[1, 2], &table);
        post.try_normalize().unwrap();
        assert!(post.entropy() < h_before);
        // Level marginals stay distributions.
        for row in post.level_marginals() {
            assert!(close(row.iter().sum::<f64>(), 1.0));
        }
    }

    #[test]
    fn pool_level_distribution_is_a_distribution() {
        let shape = ChainShape::new(&[3, 2, 3]);
        let priors = vec![vec![0.6, 0.3, 0.1], vec![0.9, 0.1], vec![0.5, 0.3, 0.2]];
        let post = ChainPosterior::from_priors(shape.clone(), &priors);
        let dist = post.pool_level_distribution(&[0, 2]);
        assert_eq!(dist.len(), 5); // max level 2 + 2
        assert!(close(dist.iter().sum::<f64>(), 1.0));
        // P(content 0) = P(both at level 0) under independence.
        assert!(close(dist[0], 0.6 * 0.5));
        // P(content 4) = both at level 2.
        assert!(close(dist[4], 0.1 * 0.2));
    }

    #[test]
    fn chain_halving_picks_near_half_zero_mass() {
        // Subjects with P(level 0) = 0.8 each: prefixes have zero-mass
        // 0.8^k; k = 3 gives 0.512, closest to 1/2.
        let shape = ChainShape::uniform(6, 3);
        let priors = vec![vec![0.8, 0.15, 0.05]; 6];
        let post = ChainPosterior::from_priors(shape, &priors);
        let order: Vec<usize> = (0..6).collect();
        let (pool, zero) = post.select_halving_prefix(&order, 6).unwrap();
        assert_eq!(pool, vec![0, 1, 2]);
        assert!(close(zero, 0.8f64.powi(3)));
    }

    #[test]
    fn chain_halving_degenerate_cases() {
        let shape = ChainShape::uniform(2, 3);
        let post = ChainPosterior::new_uniform(shape);
        assert!(post.select_halving_prefix(&[], 4).is_none());
        assert!(post.select_halving_prefix(&[0, 1], 0).is_none());
    }

    #[test]
    fn uniform_entropy() {
        let shape = ChainShape::new(&[3, 3]);
        let post = ChainPosterior::new_uniform(shape);
        assert!(close(post.entropy(), 9f64.ln()));
    }

    #[test]
    #[should_panic(expected = "at least 2 levels")]
    fn shape_validates_levels() {
        let _ = ChainShape::new(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "table needs")]
    fn table_length_checked() {
        let shape = ChainShape::uniform(2, 3);
        let mut post = ChainPosterior::new_uniform(shape);
        let _ = post.mul_likelihood_fused(&[0, 1], &[1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "prior sums")]
    fn priors_must_normalize() {
        let shape = ChainShape::new(&[2]);
        let _ = ChainPosterior::from_priors(shape, &[vec![0.5, 0.6]]);
    }
}
