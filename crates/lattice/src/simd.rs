//! Runtime-dispatched SIMD kernels for the `Θ(2^N)` hot loops.
//!
//! Three kernels dominate every SBGT round: the blocked-popcount posterior
//! update, the fused update+marginals+histogram superstage, and the
//! branch-fused look-ahead accumulator. Each has a **blocked scalar
//! reference** here (the semantic definition) and an AVX2 variant that is
//! **bit-for-bit identical** to it; `cargo test` pins the equality on any
//! machine with AVX2 and the forced-scalar CI step validates the dispatcher
//! without it.
//!
//! ## Why bit-for-bit is achievable
//!
//! Per-element multiplies are exact in IEEE-754 (the same two operands give
//! the same product regardless of vector width), so only *reduction order*
//! can diverge. Every reduction here is therefore fixed to four accumulator
//! lanes indexed by the partition-local offset modulo 4 — exactly one
//! 4×f64 AVX2 register — with the final reduce `(l0 + l1) + (l2 + l3)`.
//! The scalar reference performs the same lane assignment, so the two
//! paths execute the same additions in the same order per lane. Masked
//! accumulations (the per-subject marginal lanes) add an explicit `+0.0`
//! for non-members in both variants, keeping the instruction-level
//! blend-and-add of the vector path structurally identical to the scalar
//! loop.
//!
//! ## AVX-512
//!
//! The dispatcher detects AVX-512F but deliberately runs the 256-bit
//! kernels on it: 8-lane accumulators would change the block-internal add
//! order and break the bit-for-bit contract against the 4-lane reference.
//! What AVX-512 buys here is the richer VL encodings, not width.
//!
//! Dispatch is detected once and cached ([`active`]); setting the
//! `SBGT_FORCE_SCALAR` environment variable (to anything but `0`) before
//! first use forces the scalar path, which is how CI validates the
//! dispatcher on machines without the vector units.

use std::sync::OnceLock;

use crate::branch::{low_byte_popcounts, LookaheadKernel};

/// Environment variable that forces scalar dispatch when set (non-`0`).
pub const FORCE_SCALAR_ENV: &str = "SBGT_FORCE_SCALAR";

/// The instruction set the kernels dispatch to, detected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Blocked scalar reference kernels.
    Scalar,
    /// 256-bit AVX2 kernels (4 × f64 lanes).
    Avx2,
    /// AVX-512F detected; runs the 256-bit kernels to preserve the 4-lane
    /// add order (see module docs).
    Avx512,
}

impl SimdLevel {
    /// Whether the vector kernels are active.
    pub fn is_simd(&self) -> bool {
        !matches!(self, SimdLevel::Scalar)
    }

    /// Human-readable dispatch name (for benches and logs).
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512(4-lane)",
        }
    }
}

/// The cached dispatch decision for this process.
pub fn active() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::env::var(FORCE_SCALAR_ENV).is_ok_and(|v| !v.is_empty() && v != "0") {
            return SimdLevel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Name of the active dispatch (for benches and logs).
pub fn active_name() -> &'static str {
    active().name()
}

#[inline]
fn reduce4(l: [f64; 4]) -> f64 {
    (l[0] + l[1]) + (l[2] + l[3])
}

// ---------------------------------------------------------------------------
// Kernel 1: blocked-popcount in-place update.
// ---------------------------------------------------------------------------

/// In-place posterior update over one contiguous block:
/// `probs[o] *= table[popcount((base + o) & mask)]`, returning the block's
/// new total mass. `probs[o]` holds the mass of global state `base + o`.
///
/// Blocked popcount: within each 256-aligned run of global indices the high
/// bits of the state are constant, so their popcount is hoisted and the low
/// byte indexes a 256-entry table. The sum uses 4 lanes keyed by `o & 3`.
pub fn mul_table_block(probs: &mut [f64], base: u64, mask: u64, table: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if active().is_simd() {
        // SAFETY: dispatch checked AVX2 availability.
        return unsafe { mul_table_block_avx2(probs, base, mask, table) };
    }
    mul_table_block_scalar(probs, base, mask, table)
}

/// Scalar reference of [`mul_table_block`] (public so equivalence tests can
/// pin the vector path against it bit-for-bit).
pub fn mul_table_block_scalar(probs: &mut [f64], base: u64, mask: u64, table: &[f64]) -> f64 {
    let lo = low_byte_popcounts(mask);
    let hi_mask = mask & !0xFF;
    let mut lanes = [0.0f64; 4];
    let len = probs.len();
    let mut off = 0usize;
    while off < len {
        let state = base + off as u64;
        let k_hi = (state & hi_mask).count_ones() as usize;
        let run = ((256 - (state & 0xFF)) as usize).min(len - off);
        for o in off..off + run {
            let b = ((base + o as u64) & 0xFF) as usize;
            let v = probs[o] * table[k_hi + lo[b] as usize];
            probs[o] = v;
            lanes[o & 3] += v;
        }
        off += run;
    }
    reduce4(lanes)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_table_block_avx2(probs: &mut [f64], base: u64, mask: u64, table: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let lo = low_byte_popcounts(mask);
    let hi_mask = mask & !0xFF;
    let mut lanes = [0.0f64; 4];
    let len = probs.len();
    let mut off = 0usize;
    while off < len {
        let state = base + off as u64;
        let k_hi = (state & hi_mask).count_ones() as usize;
        let run = ((256 - (state & 0xFF)) as usize).min(len - off);
        let end = off + run;
        // Scalar head up to the 4-alignment of the partition-local offset.
        // Each element lands in the same lane (`o & 3`) in the same order
        // as the scalar reference, so per-lane sums stay bit-identical.
        while off < end && off & 3 != 0 {
            let b = ((base + off as u64) & 0xFF) as usize;
            let v = probs[off] * table[k_hi + lo[b] as usize];
            probs[off] = v;
            lanes[off & 3] += v;
            off += 1;
        }
        if off + 4 <= end {
            let mut acc = _mm256_loadu_pd(lanes.as_ptr());
            while off + 4 <= end {
                let byte = ((base + off as u64) & 0xFF) as usize;
                let f = _mm256_set_pd(
                    table[k_hi + lo[byte + 3] as usize],
                    table[k_hi + lo[byte + 2] as usize],
                    table[k_hi + lo[byte + 1] as usize],
                    table[k_hi + lo[byte] as usize],
                );
                let p = _mm256_loadu_pd(probs.as_ptr().add(off));
                let v = _mm256_mul_pd(p, f);
                _mm256_storeu_pd(probs.as_mut_ptr().add(off), v);
                acc = _mm256_add_pd(acc, v);
                off += 4;
            }
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        }
        // Scalar tail of the run.
        while off < end {
            let b = ((base + off as u64) & 0xFF) as usize;
            let v = probs[off] * table[k_hi + lo[b] as usize];
            probs[off] = v;
            lanes[off & 3] += v;
            off += 1;
        }
    }
    reduce4(lanes)
}

/// Materializing twin of [`mul_table_block`]: reads `src`, returns the
/// updated block and its total, with arithmetic identical to the in-place
/// kernel (same products, same 4-lane sum).
pub fn mul_table_collect_block(
    src: &[f64],
    base: u64,
    mask: u64,
    table: &[f64],
) -> (Vec<f64>, f64) {
    let mut out = src.to_vec();
    let total = mul_table_block(&mut out, base, mask, table);
    (out, total)
}

/// Scalar reference of [`mul_table_collect_block`].
pub fn mul_table_collect_block_scalar(
    src: &[f64],
    base: u64,
    mask: u64,
    table: &[f64],
) -> (Vec<f64>, f64) {
    let mut out = src.to_vec();
    let total = mul_table_block_scalar(&mut out, base, mask, table);
    (out, total)
}

// ---------------------------------------------------------------------------
// Kernel 2: fused update + marginals + first-positive histogram superstage.
// ---------------------------------------------------------------------------

/// One-pass fused round superstage over a contiguous block: performs the
/// in-place update of [`mul_table_block`] and, in the same traversal,
/// accumulates the **unnormalized** per-subject marginal masses of the new
/// values into `marginals` and their first-positive histogram (layout of
/// [`LookaheadKernel::histograms`] with no committed pools, i.e.
/// `kernel.num_prefixes()` rows) into `hist`. Returns the block's new total.
///
/// Reduction layout (shared bit-for-bit by scalar and AVX2):
/// * the total uses 4 lanes keyed by `o & 3`;
/// * subjects 0..8 (the in-run-varying low byte) use one 4-lane quad per
///   subject, with an explicit `+0.0` for states not containing the
///   subject;
/// * subjects ≥ 8 are constant within a 256-aligned run, so the run's
///   4-lane total is reduced once per run and added to each such subject;
/// * histogram adds are scattered and stay scalar in both variants, in
///   ascending `o` order.
pub fn fused_update_block(
    probs: &mut [f64],
    base: u64,
    mask: u64,
    table: &[f64],
    kernel: &LookaheadKernel,
    marginals: &mut [f64],
    hist: &mut [f64],
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if active().is_simd() {
        // SAFETY: dispatch checked AVX2 availability.
        return unsafe {
            fused_update_block_avx2(probs, base, mask, table, kernel, marginals, hist)
        };
    }
    fused_update_block_scalar(probs, base, mask, table, kernel, marginals, hist)
}

/// Scalar reference of [`fused_update_block`].
pub fn fused_update_block_scalar(
    probs: &mut [f64],
    base: u64,
    mask: u64,
    table: &[f64],
    kernel: &LookaheadKernel,
    marginals: &mut [f64],
    hist: &mut [f64],
) -> f64 {
    debug_assert_eq!(hist.len(), kernel.num_prefixes());
    let lo = low_byte_popcounts(mask);
    let hi_mask = mask & !0xFF;
    let tables = kernel.first_tables();
    let m = (kernel.num_prefixes() - 1) as u32;
    let n = marginals.len();
    let n_lo = n.min(8);
    let mut sum_lanes = [0.0f64; 4];
    let mut macc = [[0.0f64; 4]; 8];
    let len = probs.len();
    let mut off = 0usize;
    while off < len {
        let state = base + off as u64;
        let k_hi = (state & hi_mask).count_ones() as usize;
        let hi_first = hi_first_pos(tables, state, m);
        let run = ((256 - (state & 0xFF)) as usize).min(len - off);
        let mut run_lanes = [0.0f64; 4];
        // Indexing by `o` (not an enumerated iterator) keeps the lane key
        // `o & 3` visibly tied to the global offset the AVX path uses.
        #[allow(clippy::needless_range_loop)]
        for o in off..off + run {
            let byte = ((base + o as u64) & 0xFF) as usize;
            let v = probs[o] * table[k_hi + lo[byte] as usize];
            probs[o] = v;
            let lane = o & 3;
            sum_lanes[lane] += v;
            run_lanes[lane] += v;
            for (b, quad) in macc.iter_mut().enumerate().take(n_lo) {
                // Explicit +0.0 for non-members keeps the add sequence
                // structurally identical to the vector blend-and-add.
                quad[lane] += if byte & (1 << b) != 0 { v } else { 0.0 };
            }
            hist[low_first_pos(tables, byte, hi_first) as usize] += v;
        }
        add_run_marginals(marginals, state, n, reduce4(run_lanes));
        off += run;
    }
    for (b, quad) in macc.iter().enumerate().take(n_lo) {
        marginals[b] += reduce4(*quad);
    }
    reduce4(sum_lanes)
}

/// First-positive position restricted to state bits ≥ 8 (constant within a
/// 256-aligned run); `m` when none apply.
#[inline]
fn hi_first_pos(tables: &[[u32; 256]], state: u64, m: u32) -> u32 {
    let mut best = m;
    for (l, t) in tables.iter().enumerate().skip(1) {
        let byte = ((state >> (8 * l)) & 0xFF) as usize;
        let v = t[byte];
        if v < best {
            best = v;
        }
    }
    best
}

/// First-positive position of a state given its low byte and the hoisted
/// high-bit minimum.
#[inline]
fn low_first_pos(tables: &[[u32; 256]], byte: usize, hi_first: u32) -> u32 {
    match tables.first() {
        Some(t) => t[byte].min(hi_first),
        None => hi_first,
    }
}

/// Add a run's reduced total to every subject ≥ 8 contained in the run's
/// (constant) high state bits.
#[inline]
fn add_run_marginals(marginals: &mut [f64], state: u64, n: usize, run_total: f64) {
    let mut bits = state & !0xFF;
    while bits != 0 {
        let j = bits.trailing_zeros() as usize;
        if j < n {
            marginals[j] += run_total;
        }
        bits &= bits - 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fused_update_block_avx2(
    probs: &mut [f64],
    base: u64,
    mask: u64,
    table: &[f64],
    kernel: &LookaheadKernel,
    marginals: &mut [f64],
    hist: &mut [f64],
) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(hist.len(), kernel.num_prefixes());
    let lo = low_byte_popcounts(mask);
    let hi_mask = mask & !0xFF;
    let tables = kernel.first_tables();
    let m = (kernel.num_prefixes() - 1) as u32;
    let n = marginals.len();
    let n_lo = n.min(8);
    let mut sum_lanes = [0.0f64; 4];
    let mut macc = [[0.0f64; 4]; 8];
    let len = probs.len();
    let mut off = 0usize;
    while off < len {
        let state = base + off as u64;
        let k_hi = (state & hi_mask).count_ones() as usize;
        let hi_first = hi_first_pos(tables, state, m);
        let run = ((256 - (state & 0xFF)) as usize).min(len - off);
        let end = off + run;
        let mut run_lanes = [0.0f64; 4];
        // Scalar head to 4-alignment — identical code to the reference.
        while off < end && off & 3 != 0 {
            let byte = ((base + off as u64) & 0xFF) as usize;
            let v = probs[off] * table[k_hi + lo[byte] as usize];
            probs[off] = v;
            let lane = off & 3;
            sum_lanes[lane] += v;
            run_lanes[lane] += v;
            for (b, quad) in macc.iter_mut().enumerate().take(n_lo) {
                quad[lane] += if byte & (1 << b) != 0 { v } else { 0.0 };
            }
            hist[low_first_pos(tables, byte, hi_first) as usize] += v;
            off += 1;
        }
        if off + 4 <= end {
            let mut sum_acc = _mm256_loadu_pd(sum_lanes.as_ptr());
            let mut run_acc = _mm256_loadu_pd(run_lanes.as_ptr());
            let mut macc_v = [_mm256_setzero_pd(); 8];
            for (b, quad) in macc.iter().enumerate().take(n_lo) {
                macc_v[b] = _mm256_loadu_pd(quad.as_ptr());
            }
            let byte0 = ((base + off as u64) & 0xFF) as i64;
            let mut bytes_v = _mm256_set_epi64x(byte0 + 3, byte0 + 2, byte0 + 1, byte0);
            let four = _mm256_set1_epi64x(4);
            let mut tmp = [0.0f64; 4];
            while off + 4 <= end {
                let byte = ((base + off as u64) & 0xFF) as usize;
                let f = _mm256_set_pd(
                    table[k_hi + lo[byte + 3] as usize],
                    table[k_hi + lo[byte + 2] as usize],
                    table[k_hi + lo[byte + 1] as usize],
                    table[k_hi + lo[byte] as usize],
                );
                let p = _mm256_loadu_pd(probs.as_ptr().add(off));
                let v = _mm256_mul_pd(p, f);
                _mm256_storeu_pd(probs.as_mut_ptr().add(off), v);
                sum_acc = _mm256_add_pd(sum_acc, v);
                run_acc = _mm256_add_pd(run_acc, v);
                for (b, acc) in macc_v.iter_mut().enumerate().take(n_lo) {
                    let bit = _mm256_set1_epi64x(1 << b);
                    let sel = _mm256_cmpeq_epi64(_mm256_and_si256(bytes_v, bit), bit);
                    // Blend-and-add: lanes whose state lacks the subject
                    // contribute an exact +0.0, as in the scalar reference.
                    let masked = _mm256_and_pd(v, _mm256_castsi256_pd(sel));
                    *acc = _mm256_add_pd(*acc, masked);
                }
                // Histogram adds stay scalar (scattered target), ascending.
                _mm256_storeu_pd(tmp.as_mut_ptr(), v);
                for (i, &tv) in tmp.iter().enumerate() {
                    hist[low_first_pos(tables, byte + i, hi_first) as usize] += tv;
                }
                bytes_v = _mm256_add_epi64(bytes_v, four);
                off += 4;
            }
            _mm256_storeu_pd(sum_lanes.as_mut_ptr(), sum_acc);
            _mm256_storeu_pd(run_lanes.as_mut_ptr(), run_acc);
            for (b, quad) in macc.iter_mut().enumerate().take(n_lo) {
                _mm256_storeu_pd(quad.as_mut_ptr(), macc_v[b]);
            }
        }
        // Scalar tail of the run.
        while off < end {
            let byte = ((base + off as u64) & 0xFF) as usize;
            let v = probs[off] * table[k_hi + lo[byte] as usize];
            probs[off] = v;
            let lane = off & 3;
            sum_lanes[lane] += v;
            run_lanes[lane] += v;
            for (b, quad) in macc.iter_mut().enumerate().take(n_lo) {
                quad[lane] += if byte & (1 << b) != 0 { v } else { 0.0 };
            }
            hist[low_first_pos(tables, byte, hi_first) as usize] += v;
            off += 1;
        }
        add_run_marginals(marginals, state, n, reduce4(run_lanes));
    }
    for (b, quad) in macc.iter().enumerate().take(n_lo) {
        marginals[b] += reduce4(*quad);
    }
    reduce4(sum_lanes)
}

// ---------------------------------------------------------------------------
// Kernel 3: branch-fused look-ahead accumulator primitives.
// ---------------------------------------------------------------------------

/// One doubling step of the look-ahead branch products, in place:
/// `prod[2b+1] = prod[b] * pos; prod[2b] = prod[b] * neg` for
/// `b = cur-1 .. 0`. Per-element multiplies only — bit-for-bit across
/// dispatch levels by construction.
pub fn lookahead_double_block(prod: &mut [f64], cur: usize, neg: f64, pos: f64) {
    #[cfg(target_arch = "x86_64")]
    if cur >= 4 && active().is_simd() {
        // SAFETY: dispatch checked AVX2 availability.
        unsafe { lookahead_double_block_avx2(prod, cur, neg, pos) };
        return;
    }
    lookahead_double_block_scalar(prod, cur, neg, pos)
}

/// Scalar reference of [`lookahead_double_block`].
pub fn lookahead_double_block_scalar(prod: &mut [f64], cur: usize, neg: f64, pos: f64) {
    debug_assert!(prod.len() >= 2 * cur);
    // Doubling in reverse keeps reads ahead of writes.
    for b in (0..cur).rev() {
        let w = prod[b];
        prod[2 * b + 1] = w * pos;
        prod[2 * b] = w * neg;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lookahead_double_block_avx2(prod: &mut [f64], cur: usize, neg: f64, pos: f64) {
    use std::arch::x86_64::*;
    debug_assert!(prod.len() >= 2 * cur && cur.is_multiple_of(4));
    let f = _mm256_set_pd(pos, neg, pos, neg);
    // Chunk q reads prod[4q..4q+4] and writes prod[8q..8q+8]; processing
    // high chunks first keeps every read ahead of its clobbering write.
    for q in (0..cur / 4).rev() {
        let w = _mm256_loadu_pd(prod.as_ptr().add(4 * q));
        // [w0,w0,w1,w1] and [w2,w2,w3,w3]
        let dup01 = _mm256_permute4x64_pd(w, 0b01_01_00_00);
        let dup23 = _mm256_permute4x64_pd(w, 0b11_11_10_10);
        _mm256_storeu_pd(prod.as_mut_ptr().add(8 * q), _mm256_mul_pd(dup01, f));
        _mm256_storeu_pd(prod.as_mut_ptr().add(8 * q + 4), _mm256_mul_pd(dup23, f));
    }
}

/// Elementwise `dst[i] += src[i]` (the histogram-row accumulate of the
/// look-ahead kernel). Independent adds — bit-for-bit across dispatch
/// levels by construction.
pub fn add_assign_block(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if src.len() >= 4 && active().is_simd() {
        // SAFETY: dispatch checked AVX2 availability.
        unsafe { add_assign_block_avx2(dst, src) };
        return;
    }
    add_assign_block_scalar(dst, src)
}

/// Scalar reference of [`add_assign_block`].
pub fn add_assign_block_scalar(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_block_avx2(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::*;
    let len = dst.len();
    let mut i = 0usize;
    while i + 4 <= len {
        let d = _mm256_loadu_pd(dst.as_ptr().add(i));
        let s = _mm256_loadu_pd(src.as_ptr().add(i));
        _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(d, s));
        i += 4;
    }
    while i < len {
        dst[i] += src[i];
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DensePosterior;
    use crate::state::State;

    /// Deterministic pseudo-random masses (no RNG dependency needed).
    fn masses(len: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn table_for(mask: u64) -> Vec<f64> {
        let r = mask.count_ones() as usize;
        (0..=r).map(|k| 0.9 - 0.07 * k as f64).collect()
    }

    #[test]
    fn dispatch_is_cached_and_named() {
        let first = active();
        assert_eq!(first, active());
        assert!(!active_name().is_empty());
    }

    #[test]
    fn mul_table_block_matches_naive_dense_update() {
        let n = 10;
        let mask = 0b10_0110_1001u64;
        let table = table_for(mask);
        let mut d = DensePosterior::from_probs(n, masses(1 << n, 7));
        let mut blocked = d.probs().to_vec();
        let z_naive = d.mul_likelihood_fused(State(mask), &table);
        let z_block = mul_table_block(&mut blocked, 0, mask, &table);
        assert!((z_naive - z_block).abs() < 1e-12 * (1.0 + z_naive.abs()));
        // Per-element products are exact: values match bit-for-bit even
        // against the naive order (only the sum order differs).
        for (a, b) in d.probs().iter().zip(&blocked) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dispatched_update_is_bit_identical_to_scalar() {
        // Misaligned bases and ragged lengths exercise head/tail handling.
        for (base, len, seed) in [
            (0u64, 1024usize, 3u64),
            (52, 517, 9),
            (255, 258, 11),
            (3, 7, 5),
        ] {
            let mask = 0b1_1010_0110_0101u64;
            let table = table_for(mask);
            let src = masses(len, seed);
            let mut a = src.clone();
            let mut b = src.clone();
            let za = mul_table_block(&mut a, base, mask, &table);
            let zb = mul_table_block_scalar(&mut b, base, mask, &table);
            assert_eq!(za.to_bits(), zb.to_bits(), "base {base} len {len}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            let (ca, ta) = mul_table_collect_block(&src, base, mask, &table);
            let (cb, tb) = mul_table_collect_block_scalar(&src, base, mask, &table);
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(ta.to_bits(), za.to_bits(), "collect twin matches in-place");
            for (x, y) in ca.iter().zip(&cb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn fused_block_matches_separate_kernels() {
        let n = 11;
        let mask = 0b110_0101_1010u64;
        let table = table_for(mask);
        let order: Vec<usize> = [4usize, 9, 0, 2, 7, 10, 1].to_vec();
        let kernel = LookaheadKernel::new(n, &order);
        let src = masses(1 << n, 21);

        let mut fused = src.clone();
        let mut marg = vec![0.0f64; n];
        let mut hist = vec![0.0f64; kernel.num_prefixes()];
        let sum = fused_update_block(&mut fused, 0, mask, &table, &kernel, &mut marg, &mut hist);

        // Semantics vs the naive dense kernels (tolerance: order differs).
        let mut d = DensePosterior::from_probs(n, src.clone());
        let z = d.mul_likelihood_fused(State(mask), &table);
        assert!((sum - z).abs() < 1e-12 * (1.0 + z.abs()));
        for (a, b) in fused.iter().zip(d.probs()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let want_marg: Vec<f64> = d.marginals().iter().map(|p| p * z).collect();
        for (a, b) in marg.iter().zip(&want_marg) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
        let naive_hist = kernel.histograms(d.probs(), 0, &[]);
        for (a, b) in hist.iter().zip(&naive_hist) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn dispatched_fused_block_is_bit_identical_to_scalar() {
        let n = 12;
        let mask = 0b1010_0110_0101u64;
        let table = table_for(mask);
        let order: Vec<usize> = (0..n).rev().collect();
        let kernel = LookaheadKernel::new(n, &order);
        // Partition-style slices with misaligned bases.
        for (base, len, seed) in [(0u64, 1 << 12, 3u64), (103, 771, 13), (250, 12, 17)] {
            let src = masses(len, seed);
            let mut pa = src.clone();
            let mut pb = src.clone();
            let mut ma = vec![0.0f64; n];
            let mut mb = vec![0.0f64; n];
            let mut ha = vec![0.0f64; kernel.num_prefixes()];
            let mut hb = vec![0.0f64; kernel.num_prefixes()];
            let sa = fused_update_block(&mut pa, base, mask, &table, &kernel, &mut ma, &mut ha);
            let sb =
                fused_update_block_scalar(&mut pb, base, mask, &table, &kernel, &mut mb, &mut hb);
            assert_eq!(sa.to_bits(), sb.to_bits(), "base {base}");
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in ma.iter().zip(&mb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in ha.iter().zip(&hb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn lookahead_primitives_are_bit_identical_to_scalar() {
        for cur in [1usize, 2, 4, 8, 16] {
            let mut a = masses(2 * cur, cur as u64 + 1);
            let mut b = a.clone();
            lookahead_double_block(&mut a, cur, 0.3, 0.7);
            lookahead_double_block_scalar(&mut b, cur, 0.3, 0.7);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "cur {cur}");
            }
        }
        for len in [1usize, 3, 4, 7, 32] {
            let src = masses(len, 5);
            let mut a = masses(len, 6);
            let mut b = a.clone();
            add_assign_block(&mut a, &src);
            add_assign_block_scalar(&mut b, &src);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn fused_block_handles_degenerate_shapes() {
        // n = 0: one state, empty order.
        let kernel = LookaheadKernel::new(0, &[]);
        let mut probs = vec![0.5f64];
        let mut marg: Vec<f64> = vec![];
        let mut hist = vec![0.0f64; 1];
        let sum = fused_update_block(&mut probs, 0, 0, &[0.8], &kernel, &mut marg, &mut hist);
        assert_eq!(sum, 0.4);
        assert_eq!(hist[0], 0.4);
    }
}
