//! Property-based tests for the lattice substrate: serial reference kernels
//! vs. parallel kernels vs. sparse representation, plus order-theoretic
//! invariants of the state type.

use proptest::prelude::*;

use sbgt_lattice::iter::{all_states, states_of_rank, subsets_of};
use sbgt_lattice::kernels::{
    par_entropy, par_marginals, par_mul_likelihood_fused, par_pool_negative_mass,
    par_prefix_negative_masses, ParConfig,
};
use sbgt_lattice::{DensePosterior, SparsePosterior, State};

const CFG: ParConfig = ParConfig {
    chunk_len: 37, // deliberately odd to exercise ragged chunk boundaries
    threshold: 0,
};

fn risks_strategy(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.999, 1..=max_n)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prior_total_mass_is_one(risks in risks_strategy(10)) {
        let d = DensePosterior::from_risks(&risks);
        prop_assert!(close(d.total(), 1.0));
    }

    #[test]
    fn prior_marginals_equal_risks(risks in risks_strategy(10)) {
        let d = DensePosterior::from_risks(&risks);
        let m = d.marginals();
        for (a, b) in m.iter().zip(&risks) {
            prop_assert!(close(*a, *b));
        }
    }

    #[test]
    fn parallel_kernels_agree_with_serial(
        risks in risks_strategy(9),
        pool_bits in any::<u64>(),
        outcome_scale in 0.01f64..1.0,
    ) {
        let n = risks.len();
        let pool = State(pool_bits & State::full(n).bits());
        let table: Vec<f64> = (0..=pool.rank() as usize)
            .map(|k| outcome_scale * (k as f64 + 0.5) / (pool.rank() as f64 + 1.0))
            .collect();

        let mut serial = DensePosterior::from_risks(&risks);
        let mut parallel = serial.clone();

        let ts = serial.mul_likelihood_fused(pool, &table);
        let tp = par_mul_likelihood_fused(&mut parallel, pool, &table, CFG);
        prop_assert!(close(ts, tp));
        for (a, b) in serial.probs().iter().zip(parallel.probs()) {
            prop_assert!(close(*a, *b));
        }

        prop_assert!(close(serial.entropy(), par_entropy(&parallel, CFG)));
        prop_assert!(close(
            serial.pool_negative_mass(pool),
            par_pool_negative_mass(&parallel, pool, CFG)
        ));
        for (a, b) in serial.marginals().iter().zip(par_marginals(&parallel, CFG)) {
            prop_assert!(close(*a, b));
        }
    }

    #[test]
    fn prefix_masses_agree_and_decrease(
        risks in risks_strategy(9),
        seed in any::<u64>(),
    ) {
        let n = risks.len();
        let d = DensePosterior::from_risks(&risks);
        // Pseudo-random permutation of subjects from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let serial = d.prefix_negative_masses(&order);
        let parallel = par_prefix_negative_masses(&d, &order, CFG);
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert!(close(*a, *b));
        }
        // Monotonicity: growing the pool can only shrink the negative set.
        for w in serial.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        // Agreement with per-pool scans.
        for k in 0..=n {
            let pool = State::from_subjects(order[..k].iter().copied());
            prop_assert!(close(serial[k], d.pool_negative_mass(pool)));
        }
    }

    #[test]
    fn sparse_unpruned_matches_dense_after_updates(
        risks in risks_strategy(8),
        pool_bits in any::<u64>(),
    ) {
        let n = risks.len();
        let pool = State(pool_bits & State::full(n).bits());
        let table: Vec<f64> = (0..=pool.rank() as usize).map(|k| 0.9 / (k + 1) as f64).collect();

        let mut dense = DensePosterior::from_risks(&risks);
        let mut sparse = SparsePosterior::from_dense(&dense, 0.0);
        let td = dense.mul_likelihood_fused(pool, &table);
        let ts = sparse.mul_likelihood_fused(pool, &table);
        prop_assert!(close(td, ts));
        for (a, b) in dense.marginals().iter().zip(sparse.marginals()) {
            prop_assert!(close(*a, b));
        }
    }

    #[test]
    fn pruning_error_is_bounded(risks in risks_strategy(8), eps in 1e-6f64..1e-2) {
        let dense = DensePosterior::from_risks(&risks);
        let sparse = SparsePosterior::from_dense(&dense, eps);
        // Total discarded mass is at most eps * total * #states.
        let bound = eps * dense.total() * dense.len() as f64;
        prop_assert!(sparse.pruned_mass() <= bound + 1e-12);
        prop_assert!(close(sparse.total() + sparse.pruned_mass(), dense.total()));
    }

    #[test]
    fn normalization_preserves_ratios(risks in risks_strategy(8)) {
        let mut d = DensePosterior::from_risks(&risks);
        let before0 = d.get(State::EMPTY);
        let before_last = d.get(State::full(risks.len()));
        let z = d.normalize();
        prop_assert!(close(z, 1.0)); // prior already normalized
        prop_assert!(close(d.get(State::EMPTY), before0));
        prop_assert!(close(d.get(State::full(risks.len())), before_last));
    }

    #[test]
    fn subset_iter_size(mask_bits in 0u64..256) {
        let mask = State(mask_bits);
        let count = subsets_of(mask).count();
        prop_assert_eq!(count, 1usize << mask.rank());
    }

    #[test]
    fn state_order_properties(a in 0u64..1024, b in 0u64..1024) {
        let (a, b) = (State(a), State(b));
        // meet is the greatest lower bound, join the least upper bound.
        prop_assert!(a.meet(b).is_subset_of(a));
        prop_assert!(a.meet(b).is_subset_of(b));
        prop_assert!(a.is_subset_of(a.join(b)));
        prop_assert!(b.is_subset_of(a.join(b)));
        // Absorption laws.
        prop_assert_eq!(a.meet(a.join(b)), a);
        prop_assert_eq!(a.join(a.meet(b)), a);
        // Rank is strictly monotone on strict inclusion.
        if a.is_subset_of(b) && a != b {
            prop_assert!(a.rank() < b.rank());
        }
    }

    #[test]
    fn rank_iteration_partitions_lattice(n in 1usize..10) {
        let total: usize = (0..=n).map(|k| states_of_rank(n, k).count()).sum();
        prop_assert_eq!(total, 1usize << n);
        prop_assert_eq!(all_states(n).count(), 1usize << n);
    }
}

// --- SIMD kernels: dispatched vs scalar reference, bit-for-bit ---

use sbgt_lattice::simd::{
    add_assign_block, add_assign_block_scalar, fused_update_block, fused_update_block_scalar,
    lookahead_double_block, lookahead_double_block_scalar, mul_table_block, mul_table_block_scalar,
};
use sbgt_lattice::LookaheadKernel;

/// A likelihood-like table for a pool of `rank` bits, parameterized so
/// proptest explores different value profiles.
fn sim_table(rank: u32, scale: f64) -> Vec<f64> {
    (0..=rank as usize)
        .map(|k| scale * (k as f64 + 0.5) / (rank as f64 + 1.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The runtime-dispatched update kernel is bit-for-bit the scalar
    /// reference over arbitrary partition slices (ragged length, misaligned
    /// base) — the SIMD contract the sharded engine relies on.
    #[test]
    fn simd_mul_table_block_is_bit_identical_to_scalar(
        probs in prop::collection::vec(0.0f64..1.0, 1..700),
        base in 0u64..4096,
        mask_bits in any::<u64>(),
        scale in 0.01f64..1.0,
    ) {
        let mask = mask_bits & 0xFFF;
        let table = sim_table(mask.count_ones(), scale);
        let mut a = probs.clone();
        let mut b = probs;
        let za = mul_table_block(&mut a, base, mask, &table);
        let zb = mul_table_block_scalar(&mut b, base, mask, &table);
        prop_assert_eq!(za.to_bits(), zb.to_bits());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The fused update+marginals+histogram superstage is bit-for-bit the
    /// scalar reference in every output (posterior, total, marginal masses,
    /// first-positive histogram).
    #[test]
    fn simd_fused_update_block_is_bit_identical_to_scalar(
        probs in prop::collection::vec(0.0f64..1.0, 1..600),
        base in 0u64..2048,
        mask_bits in any::<u64>(),
        n in 1usize..12,
        order_seed in any::<u64>(),
    ) {
        let mask = mask_bits & ((1u64 << n) - 1);
        let table = sim_table(mask.count_ones(), 0.9);
        // Pseudo-random candidate ordering over a subset of subjects.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = order_seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        order.truncate(1 + (order_seed as usize % n));
        let kernel = LookaheadKernel::new(n, &order);

        let mut pa = probs.clone();
        let mut pb = probs;
        let mut ma = vec![0.0f64; n];
        let mut mb = vec![0.0f64; n];
        let mut ha = vec![0.0f64; kernel.num_prefixes()];
        let mut hb = vec![0.0f64; kernel.num_prefixes()];
        let sa = fused_update_block(&mut pa, base, mask, &table, &kernel, &mut ma, &mut ha);
        let sb = fused_update_block_scalar(&mut pb, base, mask, &table, &kernel, &mut mb, &mut hb);
        prop_assert_eq!(sa.to_bits(), sb.to_bits());
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in ma.iter().zip(&mb) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in ha.iter().zip(&hb) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The look-ahead branch-product primitives are bit-for-bit the scalar
    /// reference for every doubling width and accumulate length.
    #[test]
    fn simd_lookahead_primitives_are_bit_identical_to_scalar(
        weights in prop::collection::vec(0.0f64..1.0, 1..65),
        neg in 0.0f64..1.0,
        pos in 0.0f64..1.0,
        src in prop::collection::vec(0.0f64..1.0, 1..65),
    ) {
        // Doubling: prod must hold 2*cur slots. Real callers grow the
        // product table by doubling from 1, so `cur` is always a power of
        // two — the AVX path's alignment contract. Mirror that here.
        let cur = (weights.len().div_ceil(2).max(1)).next_power_of_two();
        let mut a = weights.clone();
        a.resize(2 * cur, 0.0);
        let mut b = a.clone();
        lookahead_double_block(&mut a, cur, neg, pos);
        lookahead_double_block_scalar(&mut b, cur, neg, pos);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let mut da = weights.iter().map(|w| 1.0 - w).collect::<Vec<_>>();
        da.resize(src.len(), 0.25);
        let mut db = da.clone();
        let src = &src[..da.len().min(src.len())];
        add_assign_block(&mut da[..src.len()], src);
        add_assign_block_scalar(&mut db[..src.len()], src);
        for (x, y) in da.iter().zip(&db) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

// --- extension modules: transforms, log domain, product-of-chains ---

use sbgt_lattice::logdomain::LogPosterior;
use sbgt_lattice::transform::{
    all_pool_negative_masses, mobius_in_place, up_set_masses, zeta_in_place,
};
use sbgt_lattice::{ChainPosterior, ChainShape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Möbius inverts zeta on arbitrary mass vectors.
    #[test]
    fn mobius_inverts_zeta_on_arbitrary_vectors(
        probs in prop::collection::vec(0.0f64..10.0, 32..=32),
    ) {
        let n = 5;
        let mut f = probs.clone();
        zeta_in_place(&mut f, n);
        mobius_in_place(&mut f, n);
        for (a, b) in f.iter().zip(&probs) {
            prop_assert!(close(*a, *b));
        }
    }

    /// All-pool masses from the transform agree with per-pool scans, and
    /// up-set masses respect inclusion monotonicity.
    #[test]
    fn transform_masses_agree_and_are_monotone(risks in risks_strategy(7)) {
        let d = DensePosterior::from_risks(&risks);
        let n = risks.len();
        let all = all_pool_negative_masses(&d);
        for pool_bits in 0u64..(1 << n) {
            prop_assert!(close(
                all[pool_bits as usize],
                d.pool_negative_mass(State(pool_bits))
            ));
        }
        let up = up_set_masses(&d);
        // t ⊆ u  ⇒  up-set of t ⊇ up-set of u  ⇒  mass(t) >= mass(u).
        for t in 0usize..(1 << n) {
            for bit in 0..n {
                if t & (1 << bit) == 0 {
                    let u = t | (1 << bit);
                    prop_assert!(up[t] >= up[u] - 1e-12);
                }
            }
        }
    }

    /// Log-domain updates track linear-domain updates for random tables.
    #[test]
    fn log_domain_tracks_linear(
        risks in risks_strategy(7),
        pool_bits in 1u64..128,
        table_seed in 1u64..1000,
    ) {
        let n = risks.len();
        let mask = pool_bits & ((1u64 << n) - 1);
        prop_assume!(mask != 0);
        let pool = State(mask);
        // Deterministic pseudo-random positive table.
        let table: Vec<f64> = (0..=pool.rank())
            .map(|k| {
                let x = (table_seed.wrapping_mul(k as u64 + 1)).wrapping_mul(2654435761) % 1000;
                0.01 + x as f64 / 1000.0
            })
            .collect();
        let mut lin = DensePosterior::from_risks(&risks);
        let mut log = LogPosterior::from_risks(&risks);
        let z_lin = lin.mul_likelihood_fused(pool, &table);
        lin.try_normalize().unwrap();
        let z_log = log.update(pool, &table).unwrap();
        prop_assert!(close(z_lin.ln(), z_log));
        for (a, b) in lin.marginals().iter().zip(log.marginals()) {
            prop_assert!(close(*a, b));
        }
    }

    /// Chain lattices with binary levels agree with the Boolean lattice on
    /// priors, updates, and marginals.
    #[test]
    fn chain_binary_levels_match_boolean(risks in risks_strategy(6), pool_bits in 1u64..64) {
        let n = risks.len();
        let mask = pool_bits & ((1u64 << n) - 1);
        prop_assume!(mask != 0);
        let pool = State(mask);
        let pool_subjects: Vec<usize> = pool.subjects().collect();
        let shape = ChainShape::uniform(n, 2);
        let priors: Vec<Vec<f64>> = risks.iter().map(|&p| vec![1.0 - p, p]).collect();
        let mut chain = ChainPosterior::from_priors(shape, &priors);
        let mut boolean = DensePosterior::from_risks(&risks);
        let table: Vec<f64> = (0..=pool.rank()).map(|k| 0.9 / (k as f64 + 1.0)).collect();
        let zc = chain.mul_likelihood_fused(&pool_subjects, &table);
        let zb = boolean.mul_likelihood_fused(pool, &table);
        prop_assert!(close(zc, zb));
        for (a, b) in chain.positive_marginals().iter().zip(boolean.marginals()) {
            prop_assert!(close(*a, b));
        }
        prop_assert!(close(chain.entropy(), boolean.entropy()));
    }

    /// Chain level-marginals are distributions and encode/decode is a
    /// bijection.
    #[test]
    fn chain_shape_bijection_and_marginal_axioms(
        levels in prop::collection::vec(2u8..4, 1..5),
    ) {
        let shape = ChainShape::new(&levels);
        let post = ChainPosterior::new_uniform(shape.clone());
        for state in 0..shape.num_states() {
            prop_assert_eq!(shape.encode(&shape.decode(state)), state);
        }
        for (i, row) in post.level_marginals().iter().enumerate() {
            prop_assert_eq!(row.len(), shape.levels_of(i) as usize);
            prop_assert!(close(row.iter().sum::<f64>(), 1.0));
            // Uniform joint ⇒ uniform per-subject marginals.
            for &v in row {
                prop_assert!(close(v, 1.0 / shape.levels_of(i) as f64));
            }
        }
    }
}
