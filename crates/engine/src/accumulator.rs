//! Accumulators: commutative write-only aggregates updated from tasks.
//!
//! SBGT uses accumulators for normalization constants and mass sums computed
//! alongside a map pass (fusing the "multiply by likelihood" and "sum for
//! normalization" stages into one traversal — a material win over a naive
//! two-pass framework). Floating-point accumulation uses a compare-exchange
//! loop over the bit pattern; the result is order-dependent at the ULP level
//! exactly like any parallel reduction, which the numerical tests account
//! for with tolerances.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `f64` sum accumulator usable concurrently from many tasks.
#[derive(Debug, Default)]
pub struct SumAccumulator {
    bits: AtomicU64,
}

impl SumAccumulator {
    /// New accumulator starting at 0.0.
    pub fn new() -> Self {
        SumAccumulator {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Add `delta` to the accumulator.
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(current) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value. Only meaningful after all writers have finished (i.e.
    /// past a job barrier).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Reset to 0.0.
    pub fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Release);
    }
}

/// A `u64` counting accumulator.
#[derive(Debug, Default)]
pub struct CountAccumulator {
    count: AtomicU64,
}

impl CountAccumulator {
    /// New counter starting at 0.
    pub fn new() -> Self {
        CountAccumulator {
            count: AtomicU64::new(0),
        }
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count (meaningful past a job barrier).
    pub fn value(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Reset to 0.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sum_accumulates_exact_halves() {
        // Powers of two sum exactly in f64 regardless of order.
        let acc = Arc::new(SumAccumulator::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let acc = Arc::clone(&acc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        acc.add(0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acc.value(), 4000.0);
    }

    #[test]
    fn sum_reset() {
        let acc = SumAccumulator::new();
        acc.add(1.5);
        acc.reset();
        assert_eq!(acc.value(), 0.0);
    }

    #[test]
    fn count_accumulates() {
        let acc = Arc::new(CountAccumulator::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let acc = Arc::clone(&acc);
                std::thread::spawn(move || {
                    for _ in 0..2500 {
                        acc.add(2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acc.value(), 20_000);
        acc.reset();
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn negative_deltas() {
        let acc = SumAccumulator::new();
        acc.add(10.0);
        acc.add(-4.0);
        assert!((acc.value() - 6.0).abs() < 1e-12);
    }
}
