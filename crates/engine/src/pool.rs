//! Executor thread pool.
//!
//! A fixed-size pool of worker threads fed by a crossbeam MPMC channel.
//! Jobs are batches of independent tasks; [`ThreadPool::run_tasks`] submits a
//! batch and blocks until every task has completed (a stage barrier, in
//! Spark terms). Task panics are caught on the worker, reported back through
//! the result channel, and do **not** kill the worker thread, so a pool
//! survives failed jobs — mirroring executor fault containment.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};

use crate::error::{panic_message, EngineError, Result};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Result of one task: its value plus the time the task body took on the
/// worker (excluding queueing delay).
pub struct TaskResult<T> {
    /// The task's return value.
    pub value: T,
    /// Wall-clock duration of the task body on its worker thread.
    pub duration: Duration,
}

/// A fixed-size executor pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    busy: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least 1). `name` prefixes the
    /// worker thread names (`{name}-{i}`), which makes profiler output and
    /// panic backtraces attributable.
    pub fn new(threads: usize, name: &str) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let busy = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let busy = Arc::clone(&busy);
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        busy.fetch_add(1, Ordering::Relaxed);
                        job();
                        busy.fetch_sub(1, Ordering::Relaxed);
                    }
                })
                .expect("failed to spawn executor thread");
            workers.push(handle);
        }
        ThreadPool {
            sender: Some(sender),
            workers,
            threads,
            busy,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of workers currently executing a task (approximate; intended
    /// for diagnostics only).
    pub fn busy_workers(&self) -> usize {
        self.busy.load(Ordering::Relaxed)
    }

    /// Submit one fire-and-forget job to the pool without waiting for it.
    /// The stage scheduler uses this to resubmit failed attempts and to
    /// launch speculative duplicates; results travel over channels owned by
    /// the caller.
    pub fn spawn<F>(&self, job: F) -> Result<()>
    where
        F: FnOnce() + Send + 'static,
    {
        let sender = self.sender.as_ref().ok_or(EngineError::PoolShutDown)?;
        sender
            .send(Box::new(job))
            .map_err(|_| EngineError::PoolShutDown)
    }

    /// Submit a batch of independent tasks and block until all complete.
    ///
    /// Results are returned in submission order. If any task panics, the
    /// remaining results are still drained (so the pool is left clean) and
    /// the first panic, by task index, is returned as
    /// [`EngineError::TaskPanicked`].
    pub fn run_tasks<T, F>(&self, tasks: Vec<F>) -> Result<Vec<TaskResult<T>>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::with_capacity(0));
        }
        let sender = self.sender.as_ref().ok_or(EngineError::PoolShutDown)?;
        let (result_tx, result_rx) = unbounded::<(usize, std::thread::Result<TaskResult<T>>)>();

        for (idx, task) in tasks.into_iter().enumerate() {
            let tx = result_tx.clone();
            let job: Job = Box::new(move || {
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(task)).map(|value| TaskResult {
                    value,
                    duration: started.elapsed(),
                });
                // The receiver may have hung up if the caller bailed early;
                // dropping the result is the correct behaviour then.
                let _ = tx.send((idx, outcome));
            });
            sender.send(job).map_err(|_| EngineError::PoolShutDown)?;
        }
        drop(result_tx);

        let mut slots: Vec<Option<TaskResult<T>>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<(usize, String)> = None;
        for _ in 0..n {
            let (idx, outcome) = result_rx.recv().map_err(|_| EngineError::PoolShutDown)?;
            match outcome {
                Ok(res) => slots[idx] = Some(res),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    match &first_panic {
                        Some((existing, _)) if *existing <= idx => {}
                        _ => first_panic = Some((idx, msg)),
                    }
                }
            }
        }
        if let Some((task, message)) = first_panic {
            return Err(EngineError::TaskPanicked {
                stage: String::new(),
                task,
                attempts: 1,
                message,
            });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all tasks accounted for"))
            .collect())
    }

    /// Convenience: run `n` tasks produced by an indexed factory.
    pub fn run_indexed<T, F>(
        &self,
        n: usize,
        factory: impl Fn(usize) -> F,
    ) -> Result<Vec<TaskResult<T>>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_tasks((0..n).map(factory).collect())
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the injector so workers drain and exit, then join them.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_tasks_in_order() {
        let pool = ThreadPool::new(4, "t");
        let results = pool
            .run_tasks((0..100).map(|i| move || i * 3).collect::<Vec<_>>())
            .unwrap();
        let values: Vec<_> = results.into_iter().map(|r| r.value).collect();
        assert_eq!(values, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_ok() {
        let pool = ThreadPool::new(2, "t");
        let results: Vec<TaskResult<i32>> = pool.run_tasks(Vec::<fn() -> i32>::new()).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0, "t");
        assert_eq!(pool.threads(), 1);
        let r = pool.run_tasks(vec![|| 7]).unwrap();
        assert_eq!(r[0].value, 7);
    }

    #[test]
    fn panic_reports_first_task_index() {
        let pool = ThreadPool::new(2, "t");
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 0),
            Box::new(|| panic!("first")),
            Box::new(|| panic!("second")),
        ];
        match pool.run_tasks(tasks) {
            Err(EngineError::TaskPanicked { task, message, .. }) => {
                assert_eq!(task, 1);
                assert_eq!(message, "first");
            }
            Err(other) => panic!("unexpected error: {other:?}"),
            Ok(_) => panic!("expected panic error"),
        }
    }

    #[test]
    fn pool_survives_panics() {
        let pool = ThreadPool::new(2, "t");
        let bad: Vec<Box<dyn FnOnce() -> i32 + Send>> = (0..8)
            .map(|_| Box::new(|| -> i32 { panic!("x") }) as _)
            .collect();
        assert!(pool.run_tasks(bad).is_err());
        let good = pool.run_tasks(vec![|| 1, || 2]).unwrap();
        assert_eq!(good.len(), 2);
    }

    #[test]
    fn tasks_actually_run_concurrently_shared_state() {
        let pool = ThreadPool::new(4, "t");
        let counter = Arc::new(AtomicU64::new(0));
        let tasks: Vec<_> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_tasks(tasks).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn run_indexed_matches_manual() {
        let pool = ThreadPool::new(3, "t");
        let r = pool.run_indexed(5, |i| move || i + 10).unwrap();
        let v: Vec<_> = r.into_iter().map(|t| t.value).collect();
        assert_eq!(v, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = ThreadPool::new(2, "t");
        let (tx, rx) = unbounded::<u32>();
        for i in 0..5u32 {
            let tx = tx.clone();
            pool.spawn(move || {
                let _ = tx.send(i * 2);
            })
            .unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn durations_are_recorded() {
        let pool = ThreadPool::new(1, "t");
        let r = pool
            .run_tasks(vec![|| {
                std::thread::sleep(Duration::from_millis(5));
            }])
            .unwrap();
        assert!(r[0].duration >= Duration::from_millis(4));
    }
}
