//! Job/task metrics — the in-process analogue of the Spark stage UI.
//!
//! The benchmark harness uses these timings to report the per-operation
//! breakdown tables (experiment E9) and to verify that work is actually
//! distributed across tasks rather than serialized on the driver.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use parking_lot::Mutex;

use crate::obs::hist::LogHistogram;

/// Timing of one task within a job.
#[derive(Debug, Clone)]
pub struct TaskMetrics {
    /// Task index within its job.
    pub index: usize,
    /// Wall-clock duration of the task body on its executor.
    pub duration: Duration,
}

/// How a stage touched its partitions — the axis the E9 breakdown uses to
/// distinguish allocation-free rounds from materializing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StageVariant {
    /// Classic `Dataset → Dataset` transform: tasks read shared partitions
    /// and materialize new output vectors.
    #[default]
    Immutable,
    /// In-place stage: `unique` partitions were mutated through their sole
    /// `Arc` handle without copying; `cow` partitions were copied first
    /// because their handles were shared (copy-on-write fallback).
    InPlace {
        /// Partitions mutated without a copy.
        unique: usize,
        /// Partitions that had to be cloned before mutation.
        cow: usize,
    },
    /// Branch-fused look-ahead selection stage: tasks read shared
    /// partitions and emit per-partition branch histograms — no partition
    /// is written and nothing posterior-sized is allocated.
    Lookahead {
        /// Outcome branches scored by the stage (`2^j` after `j` committed
        /// pools).
        branches: usize,
    },
    /// Sparse-mode round: the posterior has switched to the pruned
    /// representation and the whole round ran over its retained support
    /// instead of sharded `2^N` partitions.
    Sparse {
        /// Retained support (states with mass) at the end of the round.
        support: usize,
    },
    /// Approximate-backend stage (`sbgt-approx`): the marginal read-out ran
    /// over the specimen↔pool factor graph — nothing `2^N`-sized exists.
    Approx {
        /// Observed-test factors in the graph when the stage ran.
        factors: usize,
    },
}

impl StageVariant {
    /// Whether any partition of the stage avoided a copy.
    pub fn is_in_place(&self) -> bool {
        matches!(self, StageVariant::InPlace { .. })
    }
}

impl std::fmt::Display for StageVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageVariant::Immutable => write!(f, "immutable"),
            StageVariant::InPlace { unique, cow } => {
                write!(f, "in-place {unique}u/{cow}c")
            }
            StageVariant::Lookahead { branches } => {
                write!(f, "lookahead {branches}b")
            }
            StageVariant::Approx { factors } => {
                write!(f, "approx {factors}f")
            }
            StageVariant::Sparse { support } => {
                write!(f, "sparse {support}s")
            }
        }
    }
}

/// Fault-containment counters of one job: what the chaos layer injected
/// and what the recovery machinery did about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Injected task panics ([`crate::Fault::Panic`]).
    pub injected_panics: usize,
    /// Injected straggler delays ([`crate::Fault::Delay`]).
    pub injected_delays: usize,
    /// Injected poisoned results ([`crate::Fault::Poison`]).
    pub injected_poisons: usize,
    /// Failed attempts that were re-submitted under the retry policy.
    pub retries: usize,
    /// Speculative duplicates launched for stragglers.
    pub speculative_launched: usize,
    /// Tasks whose speculative duplicate finished before the original.
    pub speculative_wins: usize,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn injected_total(&self) -> usize {
        self.injected_panics + self.injected_delays + self.injected_poisons
    }

    /// Whether nothing fault-related happened (the common case; quiet jobs
    /// render without a chaos segment in the timeline).
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Accumulate another job's counters into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected_panics += other.injected_panics;
        self.injected_delays += other.injected_delays;
        self.injected_poisons += other.injected_poisons;
        self.retries += other.retries;
        self.speculative_launched += other.speculative_launched;
        self.speculative_wins += other.speculative_wins;
    }
}

/// Timing summary of one job (a batch of tasks with a barrier).
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Job name as passed to [`crate::Engine::run_job`].
    pub name: String,
    /// Per-task timings (empty when the job failed).
    pub tasks: Vec<TaskMetrics>,
    /// End-to-end wall time including scheduling.
    pub wall: Duration,
    /// Whether every task completed without panicking.
    pub succeeded: bool,
    /// How the stage touched its partitions (in-place vs immutable).
    pub variant: StageVariant,
    /// Injected faults, retries, and speculative duplicates of this job.
    pub faults: FaultStats,
}

impl JobMetrics {
    /// Sum of task durations (total executor CPU-ish time).
    pub fn total_task_time(&self) -> Duration {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Longest single task (the stage's critical path).
    pub fn max_task_time(&self) -> Duration {
        self.tasks
            .iter()
            .map(|t| t.duration)
            .max()
            .unwrap_or_default()
    }

    /// Ratio of total task time to (wall * tasks) — a crude utilization
    /// figure in [0, 1] when tasks outnumber threads.
    pub fn skew(&self) -> f64 {
        let max = self.max_task_time().as_secs_f64();
        let total = self.total_task_time().as_secs_f64();
        if total <= 0.0 || self.tasks.is_empty() {
            return 0.0;
        }
        max * self.tasks.len() as f64 / total
    }
}

/// Service-level counters — what the surveillance layer above the engine
/// did with its traffic. Lives next to the job metrics so one registry
/// snapshot (and one timeline render) covers both the stage view and the
/// queueing view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Specimens admitted past the ingress queue's admission control
    /// (shed specimens are counted in [`Self::shed`] instead, so offered
    /// traffic is `submitted + shed`).
    pub submitted: u64,
    /// Specimens rejected by admission control (typed load-shedding),
    /// all reasons combined.
    pub shed: u64,
    /// Sheds caused by a breached per-tenant latency SLO (a subset of
    /// [`Self::shed`]).
    pub shed_slo: u64,
    /// Sheds refused because the service is draining for shard handoff
    /// (a subset of [`Self::shed`]).
    pub shed_draining: u64,
    /// Cohort batches closed (size- or deadline-triggered).
    pub batches: u64,
    /// Cohort sessions opened.
    pub cohorts_opened: u64,
    /// Cohort sessions driven to a final report.
    pub cohorts_completed: u64,
    /// BHA rounds executed across all cohorts.
    pub rounds: u64,
    /// Rounds killed by a fault and re-run from a checkpoint.
    pub recovered_rounds: u64,
    /// Session checkpoints taken.
    pub checkpoints: u64,
    /// Sessions restored from a checkpoint.
    pub restores: u64,
    /// High-water mark of the ingress queue depth.
    pub queue_peak: u64,
    /// Plan-cache replays: select steps answered from a memoized decision
    /// tree instead of running live look-ahead.
    pub plan_hits: u64,
    /// Plan-cache misses: select steps that fell off the tree and ran live.
    pub plan_misses: u64,
    /// Tree extensions recorded after a miss (a miss whose history was
    /// detached from the tree, or whose stage was uncacheably wide,
    /// extends nothing).
    pub plan_extends: u64,
    /// Memoized select steps evicted by the per-tree LRU node budget.
    pub plan_evictions: u64,
    /// Streaming histogram of per-round wall-clock latencies, in
    /// microseconds. Fixed ~2 KB regardless of round count — the stats
    /// stay O(1) in rounds for a service running for days (previously an
    /// unbounded `Vec<u64>` growing one entry per round).
    round_latency: LogHistogram,
    /// Per-tenant lane stats (rounds + latency histogram), keyed by lab
    /// tenant id. Only tenants that actually ran rounds appear, so an
    /// untagged single-tenant service carries exactly one lane (tenant 0)
    /// and pre-tenant deployments render unchanged when quiet.
    tenants: BTreeMap<u32, TenantStats>,
}

/// Rounds per SLO error-budget window. Two windows (current + previous)
/// are consulted, so the burn rate looks back over at most
/// `2 * BURN_WINDOW_ROUNDS` rounds and old breaches age out instead of
/// poisoning the rate forever.
pub const BURN_WINDOW_ROUNDS: u64 = 256;

/// Error budget: the fraction of rounds allowed over the SLO target
/// before the budget is spent. With a p99-style SLO, 1% of rounds may
/// breach; `burn rate = observed breach fraction / budget`, so 1.0 means
/// "spending exactly on budget" and >1.0 means the budget runs out early.
pub const BURN_BUDGET: f64 = 0.01;

/// Rolling two-window breach counter behind [`TenantStats::burn_rate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BurnWindow {
    cur_rounds: u64,
    cur_over: u64,
    prev_rounds: u64,
    prev_over: u64,
}

impl BurnWindow {
    fn record(&mut self, over: bool) {
        if self.cur_rounds >= BURN_WINDOW_ROUNDS {
            self.prev_rounds = self.cur_rounds;
            self.prev_over = self.cur_over;
            self.cur_rounds = 0;
            self.cur_over = 0;
        }
        self.cur_rounds += 1;
        self.cur_over += u64::from(over);
    }

    fn observed(&self) -> (u64, u64) {
        (
            self.cur_over + self.prev_over,
            self.cur_rounds + self.prev_rounds,
        )
    }

    fn burn_rate(&self) -> Option<f64> {
        let (over, rounds) = self.observed();
        if rounds == 0 {
            return None;
        }
        Some(over as f64 / rounds as f64 / BURN_BUDGET)
    }
}

/// One tenant's service lane: how many engine rounds its cohorts consumed
/// and the streaming latency histogram behind its SLO check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Engine rounds run for this tenant's cohorts.
    pub rounds: u64,
    /// Per-round wall-clock latency, microseconds (same log-bucket layout
    /// as the global round histogram).
    pub latency: LogHistogram,
    /// Rolling error-budget windows; only fed when the tenant has an SLO.
    burn: BurnWindow,
}

impl TenantStats {
    /// SLO error-budget burn rate over the rolling window: the observed
    /// over-SLO round fraction divided by the [`BURN_BUDGET`] (1%). 1.0 is
    /// exactly on budget, >1.0 burns the budget early. `None` until a
    /// round has been recorded against an SLO.
    pub fn burn_rate(&self) -> Option<f64> {
        self.burn.burn_rate()
    }

    /// `(over-SLO rounds, total rounds)` inside the rolling burn window.
    pub fn burn_window(&self) -> (u64, u64) {
        self.burn.observed()
    }
}

impl ServiceStats {
    /// Record one completed round's wall-clock latency.
    pub fn record_round(&mut self, latency: Duration) {
        self.rounds += 1;
        self.round_latency.record(latency.as_micros() as u64);
    }

    /// Record one completed round against a tenant's lane (in addition to
    /// [`Self::record_round`], which aggregates across tenants). When the
    /// tenant has a latency SLO, the round also feeds its rolling
    /// error-budget window (see [`TenantStats::burn_rate`]).
    pub fn record_tenant_round(&mut self, tenant: u32, latency: Duration, slo: Option<Duration>) {
        let lane = self.tenants.entry(tenant).or_default();
        lane.rounds += 1;
        lane.latency.record(latency.as_micros() as u64);
        if let Some(slo) = slo {
            lane.burn.record(latency > slo);
        }
    }

    /// One tenant's SLO burn rate; `None` for unknown tenants or tenants
    /// without an SLO-fed window.
    pub fn tenant_burn_rate(&self, tenant: u32) -> Option<f64> {
        self.tenants.get(&tenant)?.burn_rate()
    }

    /// Per-tenant lanes, keyed by tenant id (empty until a tenant-tagged
    /// round completes).
    pub fn tenants(&self) -> &BTreeMap<u32, TenantStats> {
        &self.tenants
    }

    /// One tenant's round-latency percentile (`p` in `[0, 1]`). `None`
    /// before that tenant has completed a round.
    pub fn tenant_latency_percentile(&self, tenant: u32, p: f64) -> Option<Duration> {
        self.tenants
            .get(&tenant)?
            .latency
            .quantile(p)
            .map(Duration::from_micros)
    }

    /// Raise the queue-depth high-water mark.
    pub fn observe_queue_depth(&mut self, depth: usize) {
        self.queue_peak = self.queue_peak.max(depth as u64);
    }

    /// Round-latency percentile (`p` in `[0, 1]`, nearest-rank). `None`
    /// before any round has completed.
    ///
    /// Answered from the streaming histogram in O(buckets) — no clone,
    /// no sort — with at most 12.5% relative error (exact at the tracked
    /// min/max; see [`LogHistogram::quantile`]).
    pub fn round_latency_percentile(&self, p: f64) -> Option<Duration> {
        self.round_latency.quantile(p).map(Duration::from_micros)
    }

    /// The round-latency histogram itself (microsecond samples) — what
    /// the Prometheus exporter renders as bucketed series.
    pub fn round_latency_histogram(&self) -> &LogHistogram {
        &self.round_latency
    }

    /// Whether no service activity has been recorded (the common case for
    /// engines not driven through `sbgt-service`; quiet stats render no
    /// service section in the timeline).
    pub fn is_quiet(&self) -> bool {
        *self == ServiceStats::default()
    }
}

/// Convergence counters of the loopy-BP approximate backend: how many
/// relaxations ran, how many sweeps each needed, and the final
/// max-residual each settled at (recorded in nano-units so the log-bucket
/// histogram has integer resolution). Quiet for exact-posterior engines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BpStats {
    /// Relaxations run (one per marginal refresh).
    pub relaxations: u64,
    /// Sweeps per relaxation before the residual converged (or the sweep
    /// cap was hit).
    pub sweeps: LogHistogram,
    /// Final max-residual per relaxation, in nano-units
    /// (`residual * 1e9` rounded down).
    pub residual_nanos: LogHistogram,
}

impl BpStats {
    /// Whether no relaxation has been recorded.
    pub fn is_quiet(&self) -> bool {
        self.relaxations == 0
    }
}

/// Default number of per-job records retained by a registry. Older jobs
/// are evicted FIFO; the per-stage-name aggregates ([`StageAgg`]), fault
/// totals, and broadcast counter are maintained incrementally at record
/// time, so everything except the per-task detail of evicted jobs
/// survives eviction. This caps registry memory at O(retention) for an
/// engine running for days (previously the job vector grew forever).
pub const DEFAULT_JOB_RETENTION: usize = 4096;

/// Running aggregate of every job that ever ran under one stage name —
/// the eviction-proof view behind [`MetricsRegistry::wall_time_for`] and
/// the Prometheus exporter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageAgg {
    /// Stage/job name.
    pub name: String,
    /// Jobs recorded under this name (succeeded or failed).
    pub jobs: u64,
    /// Jobs that failed.
    pub failed_jobs: u64,
    /// Task completions across all jobs.
    pub tasks: u64,
    /// Summed job wall time.
    pub wall: Duration,
    /// Summed per-task executor time.
    pub task_time: Duration,
    /// Jobs whose final variant was in-place.
    pub in_place_jobs: u64,
}

/// Per-name accumulator (name lives in the map key).
#[derive(Debug, Clone, Default)]
struct StageAggCore {
    jobs: u64,
    failed_jobs: u64,
    tasks: u64,
    wall: Duration,
    task_time: Duration,
    in_place_jobs: u64,
}

/// Registry of all jobs an engine has run.
///
/// Holds the last [`DEFAULT_JOB_RETENTION`] jobs in full per-task detail
/// plus incremental aggregates (per-stage-name totals, fault totals)
/// covering every job ever recorded.
#[derive(Debug)]
pub struct MetricsRegistry {
    jobs: Mutex<VecDeque<JobMetrics>>,
    retention: usize,
    aggs: Mutex<BTreeMap<String, StageAggCore>>,
    faults: Mutex<FaultStats>,
    broadcasts: std::sync::atomic::AtomicU64,
    service: Mutex<ServiceStats>,
    bp: Mutex<BpStats>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::with_retention(DEFAULT_JOB_RETENTION)
    }
}

impl MetricsRegistry {
    /// Empty registry with the default job retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry retaining the last `retention` jobs in full detail
    /// (clamped to at least 1; aggregates always cover everything).
    pub fn with_retention(retention: usize) -> Self {
        MetricsRegistry {
            jobs: Mutex::new(VecDeque::new()),
            retention: retention.max(1),
            aggs: Mutex::new(BTreeMap::new()),
            faults: Mutex::new(FaultStats::default()),
            broadcasts: std::sync::atomic::AtomicU64::new(0),
            service: Mutex::new(ServiceStats::default()),
            bp: Mutex::new(BpStats::default()),
        }
    }

    /// Record a completed (or failed) job.
    pub fn record_job(&self, metrics: JobMetrics) {
        {
            let mut aggs = self.aggs.lock();
            let agg = aggs.entry(metrics.name.clone()).or_default();
            agg.jobs += 1;
            if !metrics.succeeded {
                agg.failed_jobs += 1;
            }
            agg.tasks += metrics.tasks.len() as u64;
            agg.wall += metrics.wall;
            agg.task_time += metrics.total_task_time();
            if metrics.variant.is_in_place() {
                agg.in_place_jobs += 1;
            }
        }
        self.faults.lock().absorb(&metrics.faults);
        let mut jobs = self.jobs.lock();
        if jobs.len() >= self.retention {
            jobs.pop_front();
        }
        jobs.push_back(metrics);
    }

    /// Re-tag the most recently recorded job's [`StageVariant`]. Used by
    /// in-place dataset stages: partition uniqueness is only known after the
    /// tasks have run, so the stage annotates its job post hoc.
    pub fn annotate_last_job(&self, variant: StageVariant) {
        let mut jobs = self.jobs.lock();
        if let Some(last) = jobs.back_mut() {
            // Keep the aggregate's in-place count consistent with the
            // re-tag.
            if last.variant.is_in_place() != variant.is_in_place() {
                let mut aggs = self.aggs.lock();
                let agg = aggs.entry(last.name.clone()).or_default();
                if variant.is_in_place() {
                    agg.in_place_jobs += 1;
                } else {
                    agg.in_place_jobs = agg.in_place_jobs.saturating_sub(1);
                }
            }
            last.variant = variant;
        }
    }

    /// Jobs ever recorded with an in-place variant (any uniqueness mix);
    /// maintained incrementally, so eviction does not lower it.
    pub fn in_place_job_count(&self) -> usize {
        self.aggs
            .lock()
            .values()
            .map(|a| a.in_place_jobs as usize)
            .sum()
    }

    /// Sum of all jobs' fault counters — the campaign-level view a chaos
    /// test asserts against (nonzero retries, speculative wins, ...).
    /// Maintained incrementally at record time, covering evicted jobs.
    pub fn fault_totals(&self) -> FaultStats {
        *self.faults.lock()
    }

    /// Record a broadcast creation.
    pub fn record_broadcast(&self) {
        self.broadcasts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Number of broadcasts created.
    pub fn broadcast_count(&self) -> u64 {
        self.broadcasts.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshot of the retained jobs (the newest
    /// [`DEFAULT_JOB_RETENTION`] unless configured otherwise), in
    /// completion order.
    pub fn jobs(&self) -> Vec<JobMetrics> {
        self.jobs.lock().iter().cloned().collect()
    }

    /// Per-stage-name aggregates over every job ever recorded, sorted by
    /// name.
    pub fn stage_aggregates(&self) -> Vec<StageAgg> {
        self.aggs
            .lock()
            .iter()
            .map(|(name, core)| StageAgg {
                name: name.clone(),
                jobs: core.jobs,
                failed_jobs: core.failed_jobs,
                tasks: core.tasks,
                wall: core.wall,
                task_time: core.task_time,
                in_place_jobs: core.in_place_jobs,
            })
            .collect()
    }

    /// Total wall time of jobs whose name starts with `prefix`, over
    /// every job ever recorded (aggregate-backed, eviction-proof).
    pub fn wall_time_for(&self, prefix: &str) -> Duration {
        self.aggs
            .lock()
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, core)| core.wall)
            .sum()
    }

    /// Number of retained jobs (see [`DEFAULT_JOB_RETENTION`]).
    pub fn job_count(&self) -> usize {
        self.jobs.lock().len()
    }

    /// Mutate the service-level counters under the registry lock.
    pub fn update_service(&self, f: impl FnOnce(&mut ServiceStats)) {
        f(&mut self.service.lock());
    }

    /// Snapshot of the service-level counters.
    pub fn service_stats(&self) -> ServiceStats {
        self.service.lock().clone()
    }

    /// One tenant's round-latency percentile, read under the lock without
    /// cloning the whole stats block — this sits on the admission-control
    /// fast path, where an SLO check runs per submission.
    pub fn tenant_latency_percentile(&self, tenant: u32, p: f64) -> Option<Duration> {
        self.service.lock().tenant_latency_percentile(tenant, p)
    }

    /// One tenant's SLO burn rate, read under the lock without cloning
    /// the whole stats block (the shed path reads it when alerting).
    pub fn tenant_burn_rate(&self, tenant: u32) -> Option<f64> {
        self.service.lock().tenant_burn_rate(tenant)
    }

    /// Record one loopy-BP relaxation's convergence figures.
    pub fn record_bp_relaxation(&self, sweeps: u64, residual_nanos: u64) {
        let mut bp = self.bp.lock();
        bp.relaxations += 1;
        bp.sweeps.record(sweeps);
        bp.residual_nanos.record(residual_nanos);
    }

    /// Snapshot of the BP convergence counters.
    pub fn bp_stats(&self) -> BpStats {
        self.bp.lock().clone()
    }

    /// Drop all recorded jobs and aggregates (between benchmark phases).
    pub fn clear(&self) {
        self.jobs.lock().clear();
        self.aggs.lock().clear();
        *self.faults.lock() = FaultStats::default();
        self.broadcasts
            .store(0, std::sync::atomic::Ordering::Relaxed);
        *self.service.lock() = ServiceStats::default();
        *self.bp.lock() = BpStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, task_ms: &[u64], wall_ms: u64) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            tasks: task_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| TaskMetrics {
                    index: i,
                    duration: Duration::from_millis(ms),
                })
                .collect(),
            wall: Duration::from_millis(wall_ms),
            succeeded: true,
            variant: StageVariant::default(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn totals_and_max() {
        let j = job("x", &[10, 20, 30], 35);
        assert_eq!(j.total_task_time(), Duration::from_millis(60));
        assert_eq!(j.max_task_time(), Duration::from_millis(30));
    }

    #[test]
    fn skew_balanced_is_one() {
        let j = job("x", &[10, 10, 10, 10], 40);
        assert!((j.skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_empty_is_zero() {
        let j = job("x", &[], 40);
        assert_eq!(j.skew(), 0.0);
    }

    #[test]
    fn registry_filters_by_prefix() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("update:0", &[5], 5));
        reg.record_job(job("update:1", &[7], 7));
        reg.record_job(job("select:0", &[100], 100));
        assert_eq!(reg.wall_time_for("update"), Duration::from_millis(12));
        assert_eq!(reg.job_count(), 3);
        reg.clear();
        assert_eq!(reg.job_count(), 0);
    }

    #[test]
    fn annotate_last_job_retags_variant() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("update", &[5], 5));
        reg.record_job(job("update", &[7], 7));
        reg.annotate_last_job(StageVariant::InPlace { unique: 3, cow: 1 });
        let jobs = reg.jobs();
        assert_eq!(jobs[0].variant, StageVariant::Immutable);
        assert_eq!(jobs[1].variant, StageVariant::InPlace { unique: 3, cow: 1 });
        assert!(jobs[1].variant.is_in_place());
        assert_eq!(reg.in_place_job_count(), 1);
        assert_eq!(jobs[1].variant.to_string(), "in-place 3u/1c");
        assert_eq!(jobs[0].variant.to_string(), "immutable");
        // Annotating an empty registry is a no-op, not a panic.
        reg.clear();
        reg.annotate_last_job(StageVariant::Immutable);
        assert_eq!(reg.job_count(), 0);
    }

    #[test]
    fn lookahead_variant_renders_branch_count() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("lookahead:select", &[4, 4], 4));
        reg.annotate_last_job(StageVariant::Lookahead { branches: 8 });
        let jobs = reg.jobs();
        assert_eq!(jobs[0].variant, StageVariant::Lookahead { branches: 8 });
        assert_eq!(jobs[0].variant.to_string(), "lookahead 8b");
        // A read-only selection stage is not an in-place stage.
        assert!(!jobs[0].variant.is_in_place());
        assert_eq!(reg.in_place_job_count(), 0);
    }

    #[test]
    fn fault_totals_accumulate_across_jobs() {
        let reg = MetricsRegistry::new();
        let mut a = job("update", &[5], 5);
        a.faults = FaultStats {
            injected_panics: 1,
            injected_delays: 2,
            injected_poisons: 0,
            retries: 1,
            speculative_launched: 2,
            speculative_wins: 1,
        };
        let mut b = job("update", &[7], 7);
        b.faults.retries = 3;
        reg.record_job(a);
        reg.record_job(b);
        reg.record_job(job("quiet", &[1], 1));
        let totals = reg.fault_totals();
        assert_eq!(totals.injected_total(), 3);
        assert_eq!(totals.retries, 4);
        assert_eq!(totals.speculative_launched, 2);
        assert_eq!(totals.speculative_wins, 1);
        assert!(!totals.is_quiet());
        assert!(reg.jobs()[2].faults.is_quiet());
    }

    #[test]
    fn service_stats_percentiles_and_quiet() {
        let mut s = ServiceStats::default();
        assert!(s.is_quiet());
        assert_eq!(s.round_latency_percentile(0.5), None);
        for ms in [10u64, 20, 30, 40] {
            s.record_round(Duration::from_millis(ms));
        }
        s.observe_queue_depth(7);
        s.observe_queue_depth(3);
        assert!(!s.is_quiet());
        assert_eq!(s.rounds, 4);
        assert_eq!(s.queue_peak, 7);
        // Histogram quantiles: within one sub-bucket (12.5%) of the exact
        // order statistic, exact at the tracked extremes.
        assert_eq!(
            s.round_latency_percentile(0.5),
            Some(Duration::from_micros(20_479))
        );
        assert_eq!(
            s.round_latency_percentile(0.99),
            Some(Duration::from_millis(40))
        );
        assert_eq!(
            s.round_latency_percentile(0.0),
            Some(Duration::from_micros(10_239))
        );
        assert_eq!(s.round_latency_histogram().count(), 4);
        assert_eq!(s.round_latency_histogram().max(), Some(40_000));
    }

    #[test]
    fn service_stats_memory_is_constant_in_rounds() {
        // The histogram replaces the per-round Vec: size_of the stats is
        // the whole footprint apart from one fixed bucket array.
        let mut s = ServiceStats::default();
        for i in 0..50_000u64 {
            s.record_round(Duration::from_micros(i % 9_000 + 1));
        }
        assert_eq!(s.rounds, 50_000);
        assert_eq!(s.round_latency_histogram().count(), 50_000);
        assert!(s.round_latency_percentile(0.99).is_some());
    }

    #[test]
    fn retention_evicts_detail_but_keeps_aggregates() {
        let reg = MetricsRegistry::with_retention(4);
        for i in 0..6 {
            let mut j = job(if i % 2 == 0 { "update" } else { "select" }, &[10], 10);
            j.faults.retries = 1;
            reg.record_job(j);
        }
        // Only the newest 4 jobs keep per-task detail...
        assert_eq!(reg.job_count(), 4);
        assert_eq!(reg.jobs().len(), 4);
        // ...but the aggregate view still covers all 6.
        assert_eq!(reg.wall_time_for("update"), Duration::from_millis(30));
        assert_eq!(reg.wall_time_for("select"), Duration::from_millis(30));
        assert_eq!(reg.fault_totals().retries, 6);
        let aggs = reg.stage_aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].name, "select");
        assert_eq!(aggs[0].jobs, 3);
        assert_eq!(aggs[1].name, "update");
        assert_eq!(aggs[1].tasks, 3);
        assert_eq!(aggs[1].wall, Duration::from_millis(30));
    }

    #[test]
    fn annotate_keeps_in_place_aggregate_consistent() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("update", &[5], 5));
        reg.annotate_last_job(StageVariant::InPlace { unique: 1, cow: 0 });
        assert_eq!(reg.in_place_job_count(), 1);
        // Re-tagging back and forth cannot drift the counter.
        reg.annotate_last_job(StageVariant::InPlace { unique: 0, cow: 1 });
        assert_eq!(reg.in_place_job_count(), 1);
        reg.annotate_last_job(StageVariant::Immutable);
        assert_eq!(reg.in_place_job_count(), 0);
        reg.annotate_last_job(StageVariant::Lookahead { branches: 2 });
        assert_eq!(reg.in_place_job_count(), 0);
        let aggs = reg.stage_aggregates();
        assert_eq!(aggs[0].in_place_jobs, 0);
        reg.clear();
        assert!(reg.stage_aggregates().is_empty());
        assert_eq!(reg.in_place_job_count(), 0);
    }

    #[test]
    fn registry_tracks_and_clears_service_stats() {
        let reg = MetricsRegistry::new();
        assert!(reg.service_stats().is_quiet());
        reg.update_service(|s| {
            s.submitted = 10;
            s.shed = 2;
            s.record_round(Duration::from_millis(5));
        });
        let snap = reg.service_stats();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.rounds, 1);
        reg.clear();
        assert!(reg.service_stats().is_quiet());
    }

    #[test]
    fn burn_rate_tracks_the_rolling_budget() {
        let mut s = ServiceStats::default();
        let slo = Some(Duration::from_millis(10));
        // No SLO supplied: lane exists, no burn window.
        s.record_tenant_round(7, Duration::from_millis(50), None);
        assert_eq!(s.tenant_burn_rate(7), None);
        // 100 rounds, 1 breach: breach fraction 1% == budget -> burn 1.0.
        for i in 0..100u64 {
            let latency = if i == 0 { 50 } else { 5 };
            s.record_tenant_round(0, Duration::from_millis(latency), slo);
        }
        let burn = s.tenant_burn_rate(0).unwrap();
        assert!((burn - 1.0).abs() < 1e-9, "burn {burn}");
        assert_eq!(s.tenants()[&0].burn_window(), (1, 100));
        // All-breaching traffic saturates at 1/budget.
        for _ in 0..100 {
            s.record_tenant_round(1, Duration::from_millis(50), slo);
        }
        assert!((s.tenant_burn_rate(1).unwrap() - 100.0).abs() < 1e-9);
        // Unknown tenant: no answer.
        assert_eq!(s.tenant_burn_rate(99), None);
    }

    #[test]
    fn burn_window_rotation_ages_out_old_breaches() {
        let mut s = ServiceStats::default();
        let slo = Some(Duration::from_millis(10));
        // Fill one full window with breaches...
        for _ in 0..BURN_WINDOW_ROUNDS {
            s.record_tenant_round(0, Duration::from_millis(50), slo);
        }
        assert!((s.tenant_burn_rate(0).unwrap() - 100.0).abs() < 1e-9);
        // ...then two full windows of healthy rounds: the breach window has
        // rotated out entirely and the rate returns to 0.
        for _ in 0..2 * BURN_WINDOW_ROUNDS {
            s.record_tenant_round(0, Duration::from_millis(1), slo);
        }
        assert_eq!(s.tenant_burn_rate(0), Some(0.0));
        let (over, rounds) = s.tenants()[&0].burn_window();
        assert_eq!(over, 0);
        assert!(rounds <= 2 * BURN_WINDOW_ROUNDS);
    }

    #[test]
    fn exactly_on_slo_is_not_a_breach() {
        let mut s = ServiceStats::default();
        let slo = Some(Duration::from_millis(10));
        s.record_tenant_round(0, Duration::from_millis(10), slo);
        assert_eq!(s.tenant_burn_rate(0), Some(0.0));
    }

    #[test]
    fn bp_stats_accumulate_and_clear() {
        let reg = MetricsRegistry::new();
        assert!(reg.bp_stats().is_quiet());
        reg.record_bp_relaxation(12, 500);
        reg.record_bp_relaxation(3, 1_000_000);
        let bp = reg.bp_stats();
        assert_eq!(bp.relaxations, 2);
        assert_eq!(bp.sweeps.count(), 2);
        assert_eq!(bp.sweeps.max(), Some(12));
        assert_eq!(bp.residual_nanos.min(), Some(500));
        assert!(!bp.is_quiet());
        reg.clear();
        assert!(reg.bp_stats().is_quiet());
    }

    #[test]
    fn registry_counts_broadcasts() {
        let reg = MetricsRegistry::new();
        reg.record_broadcast();
        reg.record_broadcast();
        assert_eq!(reg.broadcast_count(), 2);
        reg.clear();
        assert_eq!(reg.broadcast_count(), 0);
    }
}
