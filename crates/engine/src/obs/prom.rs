//! Prometheus text exposition — `MetricsRegistry::render_prometheus`.
//!
//! Renders a point-in-time scrape of everything the registry aggregates:
//! per-stage-name job/task counters and wall/task seconds, fault and
//! recovery counters, broadcast count, every service counter (submitted,
//! shed, batches, cohorts, rounds, checkpoints, restores), the queue
//! high-water gauge, and the round-latency histogram as cumulative
//! `_bucket{le=...}` series with `_sum`/`_count`. The format is the
//! standard text exposition (version 0.0.4), so the output can be served
//! to a real Prometheus scraper byte-for-byte.
//!
//! No external serializer exists in this workspace, so the renderer is
//! hand-rolled and [`parse_prometheus`] — a strict little line-format
//! parser — round-trips it in tests and in the self-validating
//! `examples/trace.rs`.

use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

impl MetricsRegistry {
    /// Render the registry as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let aggs = self.stage_aggregates();
        family(
            &mut out,
            "sbgt_stage_jobs_total",
            "counter",
            "Jobs run, by stage name.",
        );
        for a in &aggs {
            sample_u64(&mut out, "sbgt_stage_jobs_total", &a.name, a.jobs);
        }
        family(
            &mut out,
            "sbgt_stage_failed_jobs_total",
            "counter",
            "Jobs that failed after exhausting retries, by stage name.",
        );
        for a in &aggs {
            sample_u64(
                &mut out,
                "sbgt_stage_failed_jobs_total",
                &a.name,
                a.failed_jobs,
            );
        }
        family(
            &mut out,
            "sbgt_stage_tasks_total",
            "counter",
            "Task completions, by stage name.",
        );
        for a in &aggs {
            sample_u64(&mut out, "sbgt_stage_tasks_total", &a.name, a.tasks);
        }
        family(
            &mut out,
            "sbgt_stage_wall_seconds_total",
            "counter",
            "Summed job wall-clock seconds, by stage name.",
        );
        for a in &aggs {
            sample_f64(
                &mut out,
                "sbgt_stage_wall_seconds_total",
                Some(("stage", &a.name)),
                a.wall.as_secs_f64(),
            );
        }
        family(
            &mut out,
            "sbgt_stage_task_seconds_total",
            "counter",
            "Summed per-task executor seconds, by stage name.",
        );
        for a in &aggs {
            sample_f64(
                &mut out,
                "sbgt_stage_task_seconds_total",
                Some(("stage", &a.name)),
                a.task_time.as_secs_f64(),
            );
        }

        family(
            &mut out,
            "sbgt_broadcasts_total",
            "counter",
            "Broadcast variables created.",
        );
        sample_f64(
            &mut out,
            "sbgt_broadcasts_total",
            None,
            self.broadcast_count() as f64,
        );

        let faults = self.fault_totals();
        family(
            &mut out,
            "sbgt_faults_injected_total",
            "counter",
            "Faults injected by the chaos layer, by kind.",
        );
        for (kind, count) in [
            ("panic", faults.injected_panics),
            ("delay", faults.injected_delays),
            ("poison", faults.injected_poisons),
        ] {
            let _ = writeln!(out, "sbgt_faults_injected_total{{kind=\"{kind}\"}} {count}");
        }
        for (name, help, value) in [
            (
                "sbgt_task_retries_total",
                "Failed attempts re-submitted under the retry policy.",
                faults.retries,
            ),
            (
                "sbgt_speculative_launched_total",
                "Speculative duplicates launched for stragglers.",
                faults.speculative_launched,
            ),
            (
                "sbgt_speculative_wins_total",
                "Tasks whose speculative duplicate finished first.",
                faults.speculative_wins,
            ),
        ] {
            family(&mut out, name, "counter", help);
            sample_f64(&mut out, name, None, value as f64);
        }

        let service = self.service_stats();
        for (name, help, value) in [
            (
                "sbgt_service_specimens_submitted_total",
                "Specimens admitted past the ingress queue's admission control.",
                service.submitted,
            ),
            (
                "sbgt_service_specimens_shed_total",
                "Specimens rejected by admission control.",
                service.shed,
            ),
            (
                "sbgt_service_specimens_shed_slo_total",
                "Specimens shed because a tenant's latency SLO was breached.",
                service.shed_slo,
            ),
            (
                "sbgt_service_specimens_shed_draining_total",
                "Specimens refused while the service drained for handoff.",
                service.shed_draining,
            ),
            (
                "sbgt_service_batches_total",
                "Cohort batches sealed (size- or deadline-triggered).",
                service.batches,
            ),
            (
                "sbgt_service_cohorts_opened_total",
                "Cohort sessions opened.",
                service.cohorts_opened,
            ),
            (
                "sbgt_service_cohorts_completed_total",
                "Cohort sessions driven to a final report.",
                service.cohorts_completed,
            ),
            (
                "sbgt_service_rounds_total",
                "BHA rounds executed across all cohorts.",
                service.rounds,
            ),
            (
                "sbgt_service_recovered_rounds_total",
                "Rounds killed by a fault and re-run from a checkpoint.",
                service.recovered_rounds,
            ),
            (
                "sbgt_service_checkpoints_total",
                "Session checkpoints taken.",
                service.checkpoints,
            ),
            (
                "sbgt_service_restores_total",
                "Sessions restored from a checkpoint.",
                service.restores,
            ),
            (
                "sbgt_service_plan_hits_total",
                "Select steps replayed from a memoized plan-cache tree.",
                service.plan_hits,
            ),
            (
                "sbgt_service_plan_misses_total",
                "Select steps that fell off the plan tree and ran live.",
                service.plan_misses,
            ),
            (
                "sbgt_service_plan_extends_total",
                "Plan-tree extensions recorded after cache misses.",
                service.plan_extends,
            ),
            (
                "sbgt_service_plan_evictions_total",
                "Memoized select steps evicted by the per-tree LRU budget.",
                service.plan_evictions,
            ),
        ] {
            family(&mut out, name, "counter", help);
            sample_f64(&mut out, name, None, value as f64);
        }
        family(
            &mut out,
            "sbgt_service_queue_depth_peak",
            "gauge",
            "High-water mark of the ingress queue depth.",
        );
        sample_f64(
            &mut out,
            "sbgt_service_queue_depth_peak",
            None,
            service.queue_peak as f64,
        );

        let hist = service.round_latency_histogram();
        family(
            &mut out,
            "sbgt_round_latency_seconds",
            "histogram",
            "Per-round wall-clock latency.",
        );
        for (upper_us, cumulative) in hist.cumulative_buckets() {
            let _ = writeln!(
                out,
                "sbgt_round_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                format_f64(upper_us as f64 / 1e6)
            );
        }
        let _ = writeln!(
            out,
            "sbgt_round_latency_seconds_bucket{{le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(
            out,
            "sbgt_round_latency_seconds_sum {}",
            format_f64(hist.sum() as f64 / 1e6)
        );
        let _ = writeln!(out, "sbgt_round_latency_seconds_count {}", hist.count());

        // Per-tenant lanes: rounds counter plus a latency histogram per
        // tenant label — the QoS scheduler's fairness and each tenant's
        // SLO headroom, scrapeable side by side.
        let tenants = service.tenants();
        if !tenants.is_empty() {
            family(
                &mut out,
                "sbgt_tenant_rounds_total",
                "counter",
                "Engine rounds run, by lab tenant.",
            );
            for (tenant, lane) in tenants {
                let _ = writeln!(
                    out,
                    "sbgt_tenant_rounds_total{{tenant=\"{tenant}\"}} {}",
                    lane.rounds
                );
            }
            family(
                &mut out,
                "sbgt_tenant_round_latency_seconds",
                "histogram",
                "Per-round wall-clock latency, by lab tenant.",
            );
            for (tenant, lane) in tenants {
                for (upper_us, cumulative) in lane.latency.cumulative_buckets() {
                    let _ = writeln!(
                        out,
                        "sbgt_tenant_round_latency_seconds_bucket{{tenant=\"{tenant}\",le=\"{}\"}} {cumulative}",
                        format_f64(upper_us as f64 / 1e6)
                    );
                }
                let _ = writeln!(
                    out,
                    "sbgt_tenant_round_latency_seconds_bucket{{tenant=\"{tenant}\",le=\"+Inf\"}} {}",
                    lane.latency.count()
                );
                let _ = writeln!(
                    out,
                    "sbgt_tenant_round_latency_seconds_sum{{tenant=\"{tenant}\"}} {}",
                    format_f64(lane.latency.sum() as f64 / 1e6)
                );
                let _ = writeln!(
                    out,
                    "sbgt_tenant_round_latency_seconds_count{{tenant=\"{tenant}\"}} {}",
                    lane.latency.count()
                );
            }
        }

        out
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample_u64(out: &mut String, name: &str, stage: &str, value: u64) {
    let _ = writeln!(out, "{name}{{stage=\"{}\"}} {value}", escape_label(stage));
}

fn sample_f64(out: &mut String, name: &str, label: Option<(&str, &str)>, value: f64) {
    match label {
        Some((k, v)) => {
            let _ = writeln!(
                out,
                "{name}{{{k}=\"{}\"}} {}",
                escape_label(v),
                format_f64(value)
            );
        }
        None => {
            let _ = writeln!(out, "{name} {}", format_f64(value));
        }
    }
}

/// Label-value escaping per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip-ish float formatting: plain decimal, trailing
/// zeros trimmed, integers without a decimal point.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.9}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    trimmed.to_string()
}

/// One parsed sample line of a text-exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text-exposition document into its sample lines
/// (comments and blank lines are skipped; malformed lines are errors).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {}: no value: {raw}", lineno + 1)),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name '{name}'", lineno + 1));
        }
        let (labels, value_text) = if let Some(stripped) = rest.strip_prefix('{') {
            let close = find_label_close(stripped)
                .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
            let labels = parse_labels(&stripped[..close], lineno + 1)?;
            (labels, stripped[close + 1..].trim())
        } else {
            (Vec::new(), rest.trim())
        };
        if value_text.is_empty() {
            return Err(format!("line {}: missing value", lineno + 1));
        }
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad value '{v}'", lineno + 1))?,
        };
        samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Index of the closing `}` of a label block, honoring quoted strings.
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_labels(block: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = block.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // key
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(format!("line {lineno}: label without '='"));
        }
        let key = block[key_start..i].trim().to_string();
        i += 1; // '='
        if bytes.get(i) != Some(&b'"') {
            return Err(format!("line {lineno}: label value not quoted"));
        }
        i += 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err(format!("line {lineno}: unterminated label value")),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("line {lineno}: bad label escape")),
                    }
                    i += 2;
                }
                Some(_) => {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                        i += 1;
                    }
                    value.push_str(&block[start..i]);
                }
            }
        }
        labels.push((key, value));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultStats, JobMetrics, StageVariant, TaskMetrics};
    use std::time::Duration;

    fn job(name: &str, task_ms: &[u64], wall_ms: u64) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            tasks: task_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| TaskMetrics {
                    index: i,
                    duration: Duration::from_millis(ms),
                })
                .collect(),
            wall: Duration::from_millis(wall_ms),
            succeeded: true,
            variant: StageVariant::default(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn parser_handles_labels_and_escapes() {
        let doc = "\
# HELP x_total docs\n\
# TYPE x_total counter\n\
x_total{stage=\"fused-round:in-place\",extra=\"a\\\"b\\\\c\"} 42\n\
y_gauge 1.5\n\
z_bucket{le=\"+Inf\"} 7\n";
        let samples = parse_prometheus(doc).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "x_total");
        assert_eq!(samples[0].label("stage"), Some("fused-round:in-place"));
        assert_eq!(samples[0].label("extra"), Some("a\"b\\c"));
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].name, "y_gauge");
        assert!(samples[1].labels.is_empty());
        assert_eq!(samples[1].value, 1.5);
        assert_eq!(samples[2].label("le"), Some("+Inf"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value",
            "bad name 1",
            "x{unterminated=\"v 1",
            "x{key} 1",
            "x notanumber",
        ] {
            assert!(parse_prometheus(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_round_trips_through_parser() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("fused-round:in-place", &[3, 4], 5));
        reg.record_job(job("lookahead:select", &[2], 2));
        let mut failed = job("fused-round:in-place", &[], 9);
        failed.succeeded = false;
        failed.faults.injected_panics = 2;
        failed.faults.retries = 1;
        reg.record_job(failed);
        reg.record_broadcast();
        reg.update_service(|s| {
            s.submitted = 100;
            s.shed = 3;
            s.cohorts_opened = 8;
            s.observe_queue_depth(12);
            for ms in [1u64, 2, 3, 4, 100] {
                s.record_round(Duration::from_millis(ms));
            }
        });

        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        let get = |name: &str| -> Vec<&PromSample> {
            samples.iter().filter(|s| s.name == name).collect()
        };

        let jobs = get("sbgt_stage_jobs_total");
        assert_eq!(jobs.len(), 2);
        let fused = jobs
            .iter()
            .find(|s| s.label("stage") == Some("fused-round:in-place"))
            .unwrap();
        assert_eq!(fused.value, 2.0);
        let failed = get("sbgt_stage_failed_jobs_total");
        assert!(failed
            .iter()
            .any(|s| s.label("stage") == Some("fused-round:in-place") && s.value == 1.0));
        assert_eq!(get("sbgt_stage_tasks_total").len(), 2);

        let panics = get("sbgt_faults_injected_total");
        assert!(panics
            .iter()
            .any(|s| s.label("kind") == Some("panic") && s.value == 2.0));
        assert_eq!(get("sbgt_task_retries_total")[0].value, 1.0);
        assert_eq!(get("sbgt_broadcasts_total")[0].value, 1.0);
        assert_eq!(
            get("sbgt_service_specimens_submitted_total")[0].value,
            100.0
        );
        assert_eq!(get("sbgt_service_specimens_shed_total")[0].value, 3.0);
        assert_eq!(get("sbgt_service_queue_depth_peak")[0].value, 12.0);
        assert_eq!(get("sbgt_service_rounds_total")[0].value, 5.0);
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let reg = MetricsRegistry::new();
        reg.update_service(|s| {
            for us in [500u64, 1_500, 1_500, 80_000, 2_000_000] {
                s.record_round(Duration::from_micros(us));
            }
        });
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "sbgt_round_latency_seconds_bucket")
            .collect();
        let count = samples
            .iter()
            .find(|s| s.name == "sbgt_round_latency_seconds_count")
            .unwrap()
            .value;
        let sum = samples
            .iter()
            .find(|s| s.name == "sbgt_round_latency_seconds_sum")
            .unwrap()
            .value;
        assert_eq!(count, 5.0);
        assert!((sum - 2.0835).abs() < 1e-9);
        // Cumulative buckets are non-decreasing in le order and the +Inf
        // bucket equals _count.
        let inf = buckets.last().unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, count);
        let mut last = 0.0;
        for b in &buckets {
            assert!(b.value >= last, "bucket counts must be cumulative");
            last = b.value;
        }
        // le boundaries themselves are ascending.
        let les: Vec<f64> = buckets
            .iter()
            .filter_map(|b| b.label("le"))
            .map(|le| {
                if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                }
            })
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_registry_renders_a_valid_scrape() {
        let reg = MetricsRegistry::new();
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        // No stage series yet, but the service block and an empty
        // histogram (+Inf bucket 0) are present and well-formed.
        assert!(samples.iter().all(|s| s.value == 0.0));
        let inf = samples
            .iter()
            .find(|s| s.name == "sbgt_round_latency_seconds_bucket")
            .unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, 0.0);
    }
}
