//! Prometheus text exposition — `MetricsRegistry::render_prometheus`.
//!
//! Renders a point-in-time scrape of everything the registry aggregates:
//! per-stage-name job/task counters and wall/task seconds, fault and
//! recovery counters, broadcast count, every service counter (submitted,
//! shed, batches, cohorts, rounds, checkpoints, restores), the queue
//! high-water gauge, and the round-latency histogram as cumulative
//! `_bucket{le=...}` series with `_sum`/`_count`. The format is the
//! standard text exposition (version 0.0.4), so the output can be served
//! to a real Prometheus scraper byte-for-byte.
//!
//! No external serializer exists in this workspace, so the renderer is
//! hand-rolled and [`parse_prometheus`] — a strict little line-format
//! parser — round-trips it in tests and in the self-validating
//! `examples/trace.rs`.

use std::fmt::Write as _;

use super::span::SpanRecorder;
use crate::metrics::MetricsRegistry;

impl MetricsRegistry {
    /// Render the registry as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_with_obs(None)
    }

    /// Like [`Self::render_prometheus`], additionally exposing the span
    /// recorder's ring health when one is supplied: retained events, lane
    /// count, and — the part that is otherwise silently invisible —
    /// ring-wrap drop counters, total and per lane. Lane labels are thread
    /// names, so they go through the exposition escaper.
    pub fn render_prometheus_with_obs(&self, recorder: Option<&SpanRecorder>) -> String {
        let mut out = String::new();

        let aggs = self.stage_aggregates();
        family(
            &mut out,
            "sbgt_stage_jobs_total",
            "counter",
            "Jobs run, by stage name.",
        );
        for a in &aggs {
            sample_u64(&mut out, "sbgt_stage_jobs_total", &a.name, a.jobs);
        }
        family(
            &mut out,
            "sbgt_stage_failed_jobs_total",
            "counter",
            "Jobs that failed after exhausting retries, by stage name.",
        );
        for a in &aggs {
            sample_u64(
                &mut out,
                "sbgt_stage_failed_jobs_total",
                &a.name,
                a.failed_jobs,
            );
        }
        family(
            &mut out,
            "sbgt_stage_tasks_total",
            "counter",
            "Task completions, by stage name.",
        );
        for a in &aggs {
            sample_u64(&mut out, "sbgt_stage_tasks_total", &a.name, a.tasks);
        }
        family(
            &mut out,
            "sbgt_stage_wall_seconds_total",
            "counter",
            "Summed job wall-clock seconds, by stage name.",
        );
        for a in &aggs {
            sample_f64(
                &mut out,
                "sbgt_stage_wall_seconds_total",
                Some(("stage", &a.name)),
                a.wall.as_secs_f64(),
            );
        }
        family(
            &mut out,
            "sbgt_stage_task_seconds_total",
            "counter",
            "Summed per-task executor seconds, by stage name.",
        );
        for a in &aggs {
            sample_f64(
                &mut out,
                "sbgt_stage_task_seconds_total",
                Some(("stage", &a.name)),
                a.task_time.as_secs_f64(),
            );
        }

        family(
            &mut out,
            "sbgt_broadcasts_total",
            "counter",
            "Broadcast variables created.",
        );
        sample_f64(
            &mut out,
            "sbgt_broadcasts_total",
            None,
            self.broadcast_count() as f64,
        );

        let faults = self.fault_totals();
        family(
            &mut out,
            "sbgt_faults_injected_total",
            "counter",
            "Faults injected by the chaos layer, by kind.",
        );
        for (kind, count) in [
            ("panic", faults.injected_panics),
            ("delay", faults.injected_delays),
            ("poison", faults.injected_poisons),
        ] {
            let _ = writeln!(out, "sbgt_faults_injected_total{{kind=\"{kind}\"}} {count}");
        }
        for (name, help, value) in [
            (
                "sbgt_task_retries_total",
                "Failed attempts re-submitted under the retry policy.",
                faults.retries,
            ),
            (
                "sbgt_speculative_launched_total",
                "Speculative duplicates launched for stragglers.",
                faults.speculative_launched,
            ),
            (
                "sbgt_speculative_wins_total",
                "Tasks whose speculative duplicate finished first.",
                faults.speculative_wins,
            ),
        ] {
            family(&mut out, name, "counter", help);
            sample_f64(&mut out, name, None, value as f64);
        }

        let service = self.service_stats();
        for (name, help, value) in [
            (
                "sbgt_service_specimens_submitted_total",
                "Specimens admitted past the ingress queue's admission control.",
                service.submitted,
            ),
            (
                "sbgt_service_specimens_shed_total",
                "Specimens rejected by admission control.",
                service.shed,
            ),
            (
                "sbgt_service_specimens_shed_slo_total",
                "Specimens shed because a tenant's latency SLO was breached.",
                service.shed_slo,
            ),
            (
                "sbgt_service_specimens_shed_draining_total",
                "Specimens refused while the service drained for handoff.",
                service.shed_draining,
            ),
            (
                "sbgt_service_batches_total",
                "Cohort batches sealed (size- or deadline-triggered).",
                service.batches,
            ),
            (
                "sbgt_service_cohorts_opened_total",
                "Cohort sessions opened.",
                service.cohorts_opened,
            ),
            (
                "sbgt_service_cohorts_completed_total",
                "Cohort sessions driven to a final report.",
                service.cohorts_completed,
            ),
            (
                "sbgt_service_rounds_total",
                "BHA rounds executed across all cohorts.",
                service.rounds,
            ),
            (
                "sbgt_service_recovered_rounds_total",
                "Rounds killed by a fault and re-run from a checkpoint.",
                service.recovered_rounds,
            ),
            (
                "sbgt_service_checkpoints_total",
                "Session checkpoints taken.",
                service.checkpoints,
            ),
            (
                "sbgt_service_restores_total",
                "Sessions restored from a checkpoint.",
                service.restores,
            ),
            (
                "sbgt_service_plan_hits_total",
                "Select steps replayed from a memoized plan-cache tree.",
                service.plan_hits,
            ),
            (
                "sbgt_service_plan_misses_total",
                "Select steps that fell off the plan tree and ran live.",
                service.plan_misses,
            ),
            (
                "sbgt_service_plan_extends_total",
                "Plan-tree extensions recorded after cache misses.",
                service.plan_extends,
            ),
            (
                "sbgt_service_plan_evictions_total",
                "Memoized select steps evicted by the per-tree LRU budget.",
                service.plan_evictions,
            ),
        ] {
            family(&mut out, name, "counter", help);
            sample_f64(&mut out, name, None, value as f64);
        }
        family(
            &mut out,
            "sbgt_service_queue_depth_peak",
            "gauge",
            "High-water mark of the ingress queue depth.",
        );
        sample_f64(
            &mut out,
            "sbgt_service_queue_depth_peak",
            None,
            service.queue_peak as f64,
        );

        let hist = service.round_latency_histogram();
        family(
            &mut out,
            "sbgt_round_latency_seconds",
            "histogram",
            "Per-round wall-clock latency.",
        );
        for (upper_us, cumulative) in hist.cumulative_buckets() {
            let _ = writeln!(
                out,
                "sbgt_round_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                format_f64(upper_us as f64 / 1e6)
            );
        }
        let _ = writeln!(
            out,
            "sbgt_round_latency_seconds_bucket{{le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(
            out,
            "sbgt_round_latency_seconds_sum {}",
            format_f64(hist.sum() as f64 / 1e6)
        );
        let _ = writeln!(out, "sbgt_round_latency_seconds_count {}", hist.count());

        // Per-tenant lanes: rounds counter plus a latency histogram per
        // tenant label — the QoS scheduler's fairness and each tenant's
        // SLO headroom, scrapeable side by side.
        let tenants = service.tenants();
        if !tenants.is_empty() {
            family(
                &mut out,
                "sbgt_tenant_rounds_total",
                "counter",
                "Engine rounds run, by lab tenant.",
            );
            for (tenant, lane) in tenants {
                let _ = writeln!(
                    out,
                    "sbgt_tenant_rounds_total{{tenant=\"{tenant}\"}} {}",
                    lane.rounds
                );
            }
            family(
                &mut out,
                "sbgt_tenant_round_latency_seconds",
                "histogram",
                "Per-round wall-clock latency, by lab tenant.",
            );
            for (tenant, lane) in tenants {
                for (upper_us, cumulative) in lane.latency.cumulative_buckets() {
                    let _ = writeln!(
                        out,
                        "sbgt_tenant_round_latency_seconds_bucket{{tenant=\"{tenant}\",le=\"{}\"}} {cumulative}",
                        format_f64(upper_us as f64 / 1e6)
                    );
                }
                let _ = writeln!(
                    out,
                    "sbgt_tenant_round_latency_seconds_bucket{{tenant=\"{tenant}\",le=\"+Inf\"}} {}",
                    lane.latency.count()
                );
                let _ = writeln!(
                    out,
                    "sbgt_tenant_round_latency_seconds_sum{{tenant=\"{tenant}\"}} {}",
                    format_f64(lane.latency.sum() as f64 / 1e6)
                );
                let _ = writeln!(
                    out,
                    "sbgt_tenant_round_latency_seconds_count{{tenant=\"{tenant}\"}} {}",
                    lane.latency.count()
                );
            }
            // SLO error-budget burn: only tenants with an SLO-fed burn
            // window render, so SLO-less deployments scrape
            // byte-identical to before.
            if tenants.values().any(|lane| lane.burn_rate().is_some()) {
                family(
                    &mut out,
                    "sbgt_tenant_slo_burn_rate",
                    "gauge",
                    "SLO error-budget burn rate over the rolling window \
                     (1.0 = exactly on budget, >1.0 burns early).",
                );
                for (tenant, lane) in tenants {
                    if let Some(burn) = lane.burn_rate() {
                        let _ = writeln!(
                            out,
                            "sbgt_tenant_slo_burn_rate{{tenant=\"{tenant}\"}} {}",
                            format_f64(burn)
                        );
                    }
                }
            }
        }

        // BP convergence: only rendered once a relaxation ran, so scrapes
        // of exact-posterior deployments stay byte-identical to before.
        let bp = self.bp_stats();
        if bp.relaxations > 0 {
            family(
                &mut out,
                "sbgt_bp_relaxations_total",
                "counter",
                "Loopy-BP relaxations run (one per marginal refresh).",
            );
            sample_f64(
                &mut out,
                "sbgt_bp_relaxations_total",
                None,
                bp.relaxations as f64,
            );
            histogram_family(
                &mut out,
                "sbgt_bp_sweeps",
                "Sweeps per BP relaxation before the residual converged.",
                None,
                &bp.sweeps,
                1.0,
            );
            histogram_family(
                &mut out,
                "sbgt_bp_residual_nanos",
                "Final max-residual per BP relaxation, in nano-units.",
                None,
                &bp.residual_nanos,
                1.0,
            );
        }

        if let Some(rec) = recorder {
            let snap = rec.snapshot();
            family(
                &mut out,
                "sbgt_obs_events",
                "gauge",
                "Span-ring events currently retained across all lanes.",
            );
            sample_f64(
                &mut out,
                "sbgt_obs_events",
                None,
                snap.total_events() as f64,
            );
            family(
                &mut out,
                "sbgt_obs_lanes",
                "gauge",
                "Registered span-ring lanes (one per recording thread).",
            );
            sample_f64(&mut out, "sbgt_obs_lanes", None, snap.lanes.len() as f64);
            family(
                &mut out,
                "sbgt_obs_dropped_events_total",
                "counter",
                "Events overwritten by span-ring wrap-around, all lanes.",
            );
            sample_f64(
                &mut out,
                "sbgt_obs_dropped_events_total",
                None,
                snap.total_dropped() as f64,
            );
            if !snap.lanes.is_empty() {
                family(
                    &mut out,
                    "sbgt_obs_lane_dropped_total",
                    "counter",
                    "Events overwritten by ring wrap-around, by lane (thread) name.",
                );
                for lane in &snap.lanes {
                    sample_f64(
                        &mut out,
                        "sbgt_obs_lane_dropped_total",
                        Some(("lane", &lane.name)),
                        lane.dropped as f64,
                    );
                }
            }
        }

        out
    }
}

/// Render a full histogram family (`_bucket`/`_sum`/`_count` plus HELP and
/// TYPE lines) with an optional fixed label on every series. Bucket bounds
/// are divided by `scale` (1e6 turns microseconds into seconds).
pub(crate) fn histogram_family(
    out: &mut String,
    name: &str,
    help: &str,
    label: Option<(&str, &str)>,
    hist: &super::hist::LogHistogram,
    scale: f64,
) {
    family(out, name, "histogram", help);
    let lead = match label {
        Some((k, v)) => format!("{k}=\"{}\",", escape_label_value(v)),
        None => String::new(),
    };
    for (upper, cumulative) in hist.cumulative_buckets() {
        let _ = writeln!(
            out,
            "{name}_bucket{{{lead}le=\"{}\"}} {cumulative}",
            format_f64(upper as f64 / scale)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{lead}le=\"+Inf\"}} {}", hist.count());
    let tail = match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label_value(v)),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "{name}_sum{tail} {}",
        format_f64(hist.sum() as f64 / scale)
    );
    let _ = writeln!(out, "{name}_count{tail} {}", hist.count());
}

/// Render parsed samples back to exposition sample lines (no HELP/TYPE),
/// escaping every label value. With [`parse_prometheus`] this is the
/// re-labeling primitive the fleet scraper uses to prefix shard labels.
pub fn render_prom_samples(samples: &[PromSample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&s.name);
        if !s.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
            }
            out.push('}');
        }
        if s.value == f64::INFINITY {
            out.push_str(" +Inf\n");
        } else if s.value == f64::NEG_INFINITY {
            out.push_str(" -Inf\n");
        } else if s.value.is_nan() {
            out.push_str(" NaN\n");
        } else {
            let _ = writeln!(out, " {}", format_f64(s.value));
        }
    }
    out
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample_u64(out: &mut String, name: &str, stage: &str, value: u64) {
    let _ = writeln!(
        out,
        "{name}{{stage=\"{}\"}} {value}",
        escape_label_value(stage)
    );
}

fn sample_f64(out: &mut String, name: &str, label: Option<(&str, &str)>, value: f64) {
    match label {
        Some((k, v)) => {
            let _ = writeln!(
                out,
                "{name}{{{k}=\"{}\"}} {}",
                escape_label_value(v),
                format_f64(value)
            );
        }
        None => {
            let _ = writeln!(out, "{name} {}", format_f64(value));
        }
    }
}

/// Label-value escaping per the exposition format: `\`, `"`, and newline
/// become `\\`, `\"`, and `\n`. [`parse_prometheus`] reverses exactly
/// these, so any label value — tenant names, thread names — survives a
/// render→parse cycle (property-tested below).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip-ish float formatting: plain decimal, trailing
/// zeros trimmed, integers without a decimal point.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.9}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    trimmed.to_string()
}

/// One parsed sample line of a text-exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text-exposition document into its sample lines
/// (comments and blank lines are skipped; malformed lines are errors).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {}: no value: {raw}", lineno + 1)),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name '{name}'", lineno + 1));
        }
        let (labels, value_text) = if let Some(stripped) = rest.strip_prefix('{') {
            let close = find_label_close(stripped)
                .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
            let labels = parse_labels(&stripped[..close], lineno + 1)?;
            (labels, stripped[close + 1..].trim())
        } else {
            (Vec::new(), rest.trim())
        };
        if value_text.is_empty() {
            return Err(format!("line {}: missing value", lineno + 1));
        }
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad value '{v}'", lineno + 1))?,
        };
        samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Index of the closing `}` of a label block, honoring quoted strings.
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_labels(block: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = block.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // key
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(format!("line {lineno}: label without '='"));
        }
        let key = block[key_start..i].trim().to_string();
        i += 1; // '='
        if bytes.get(i) != Some(&b'"') {
            return Err(format!("line {lineno}: label value not quoted"));
        }
        i += 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err(format!("line {lineno}: unterminated label value")),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("line {lineno}: bad label escape")),
                    }
                    i += 2;
                }
                Some(_) => {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                        i += 1;
                    }
                    value.push_str(&block[start..i]);
                }
            }
        }
        labels.push((key, value));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultStats, JobMetrics, StageVariant, TaskMetrics};
    use std::time::Duration;

    fn job(name: &str, task_ms: &[u64], wall_ms: u64) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            tasks: task_ms
                .iter()
                .enumerate()
                .map(|(i, &ms)| TaskMetrics {
                    index: i,
                    duration: Duration::from_millis(ms),
                })
                .collect(),
            wall: Duration::from_millis(wall_ms),
            succeeded: true,
            variant: StageVariant::default(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn parser_handles_labels_and_escapes() {
        let doc = "\
# HELP x_total docs\n\
# TYPE x_total counter\n\
x_total{stage=\"fused-round:in-place\",extra=\"a\\\"b\\\\c\"} 42\n\
y_gauge 1.5\n\
z_bucket{le=\"+Inf\"} 7\n";
        let samples = parse_prometheus(doc).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "x_total");
        assert_eq!(samples[0].label("stage"), Some("fused-round:in-place"));
        assert_eq!(samples[0].label("extra"), Some("a\"b\\c"));
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].name, "y_gauge");
        assert!(samples[1].labels.is_empty());
        assert_eq!(samples[1].value, 1.5);
        assert_eq!(samples[2].label("le"), Some("+Inf"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value",
            "bad name 1",
            "x{unterminated=\"v 1",
            "x{key} 1",
            "x notanumber",
        ] {
            assert!(parse_prometheus(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_round_trips_through_parser() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("fused-round:in-place", &[3, 4], 5));
        reg.record_job(job("lookahead:select", &[2], 2));
        let mut failed = job("fused-round:in-place", &[], 9);
        failed.succeeded = false;
        failed.faults.injected_panics = 2;
        failed.faults.retries = 1;
        reg.record_job(failed);
        reg.record_broadcast();
        reg.update_service(|s| {
            s.submitted = 100;
            s.shed = 3;
            s.cohorts_opened = 8;
            s.observe_queue_depth(12);
            for ms in [1u64, 2, 3, 4, 100] {
                s.record_round(Duration::from_millis(ms));
            }
        });

        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        let get = |name: &str| -> Vec<&PromSample> {
            samples.iter().filter(|s| s.name == name).collect()
        };

        let jobs = get("sbgt_stage_jobs_total");
        assert_eq!(jobs.len(), 2);
        let fused = jobs
            .iter()
            .find(|s| s.label("stage") == Some("fused-round:in-place"))
            .unwrap();
        assert_eq!(fused.value, 2.0);
        let failed = get("sbgt_stage_failed_jobs_total");
        assert!(failed
            .iter()
            .any(|s| s.label("stage") == Some("fused-round:in-place") && s.value == 1.0));
        assert_eq!(get("sbgt_stage_tasks_total").len(), 2);

        let panics = get("sbgt_faults_injected_total");
        assert!(panics
            .iter()
            .any(|s| s.label("kind") == Some("panic") && s.value == 2.0));
        assert_eq!(get("sbgt_task_retries_total")[0].value, 1.0);
        assert_eq!(get("sbgt_broadcasts_total")[0].value, 1.0);
        assert_eq!(
            get("sbgt_service_specimens_submitted_total")[0].value,
            100.0
        );
        assert_eq!(get("sbgt_service_specimens_shed_total")[0].value, 3.0);
        assert_eq!(get("sbgt_service_queue_depth_peak")[0].value, 12.0);
        assert_eq!(get("sbgt_service_rounds_total")[0].value, 5.0);
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let reg = MetricsRegistry::new();
        reg.update_service(|s| {
            for us in [500u64, 1_500, 1_500, 80_000, 2_000_000] {
                s.record_round(Duration::from_micros(us));
            }
        });
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "sbgt_round_latency_seconds_bucket")
            .collect();
        let count = samples
            .iter()
            .find(|s| s.name == "sbgt_round_latency_seconds_count")
            .unwrap()
            .value;
        let sum = samples
            .iter()
            .find(|s| s.name == "sbgt_round_latency_seconds_sum")
            .unwrap()
            .value;
        assert_eq!(count, 5.0);
        assert!((sum - 2.0835).abs() < 1e-9);
        // Cumulative buckets are non-decreasing in le order and the +Inf
        // bucket equals _count.
        let inf = buckets.last().unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, count);
        let mut last = 0.0;
        for b in &buckets {
            assert!(b.value >= last, "bucket counts must be cumulative");
            last = b.value;
        }
        // le boundaries themselves are ascending.
        let les: Vec<f64> = buckets
            .iter()
            .filter_map(|b| b.label("le"))
            .map(|le| {
                if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                }
            })
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slo_burn_gauge_renders_only_for_slo_fed_tenants() {
        let reg = MetricsRegistry::new();
        reg.update_service(|s| {
            // Tenant 0: SLO 10ms, 1 of 4 rounds over -> burn 25x.
            let slo = Some(Duration::from_millis(10));
            s.record_tenant_round(0, Duration::from_millis(2), slo);
            s.record_tenant_round(0, Duration::from_millis(2), slo);
            s.record_tenant_round(0, Duration::from_millis(2), slo);
            s.record_tenant_round(0, Duration::from_millis(50), slo);
            // Tenant 1: no SLO -> no burn window, no gauge sample.
            s.record_tenant_round(1, Duration::from_millis(2), None);
        });
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        let burns: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "sbgt_tenant_slo_burn_rate")
            .collect();
        assert_eq!(burns.len(), 1);
        assert_eq!(burns[0].label("tenant"), Some("0"));
        assert!((burns[0].value - 25.0).abs() < 1e-9, "{}", burns[0].value);

        // No SLO-fed tenant anywhere: the family is absent entirely, so
        // SLO-less deployments scrape byte-identical to before.
        let reg = MetricsRegistry::new();
        reg.update_service(|s| {
            s.record_tenant_round(0, Duration::from_millis(2), None);
        });
        assert!(!reg
            .render_prometheus()
            .contains("sbgt_tenant_slo_burn_rate"));
    }

    #[test]
    fn empty_registry_renders_a_valid_scrape() {
        let reg = MetricsRegistry::new();
        let text = reg.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        // No stage series yet, but the service block and an empty
        // histogram (+Inf bucket 0) are present and well-formed.
        assert!(samples.iter().all(|s| s.value == 0.0));
        let inf = samples
            .iter()
            .find(|s| s.name == "sbgt_round_latency_seconds_bucket")
            .unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, 0.0);
    }

    #[test]
    fn obs_drop_counters_reach_the_scrape() {
        use crate::obs::config::ObsConfig;
        use crate::obs::span::{SpanKind, SpanMeta, SpanRecorder};
        let reg = MetricsRegistry::new();
        let rec = SpanRecorder::new(ObsConfig::full().with_lane_capacity(16));
        let name = rec.intern("e");
        for i in 0..40u64 {
            rec.record_span(SpanKind::Phase, name, i, i + 1, SpanMeta::default());
        }
        let text = reg.render_prometheus_with_obs(Some(&rec));
        let samples = parse_prometheus(&text).unwrap();
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap().value;
        assert_eq!(get("sbgt_obs_events"), 16.0);
        assert_eq!(get("sbgt_obs_lanes"), 1.0);
        assert_eq!(get("sbgt_obs_dropped_events_total"), 24.0);
        let lane = samples
            .iter()
            .find(|s| s.name == "sbgt_obs_lane_dropped_total")
            .unwrap();
        assert!(lane.label("lane").is_some());
        assert_eq!(lane.value, 24.0);
        // Without a recorder the obs families are absent entirely.
        assert!(!reg.render_prometheus().contains("sbgt_obs_"));
    }

    #[test]
    fn hostile_lane_names_survive_the_scrape_round_trip() {
        use crate::obs::config::ObsConfig;
        use crate::obs::span::{SpanKind, SpanMeta, SpanRecorder};
        let nasty = "lane\\with\"quotes\nand newline";
        let reg = MetricsRegistry::new();
        let rec = SpanRecorder::new(ObsConfig::full().with_lane_capacity(16));
        let name = rec.intern("e");
        let done = std::sync::Arc::new(std::sync::Barrier::new(2));
        let rec2 = std::sync::Arc::new(rec);
        {
            let rec = std::sync::Arc::clone(&rec2);
            let done = std::sync::Arc::clone(&done);
            std::thread::Builder::new()
                .name(nasty.to_string())
                .spawn(move || {
                    rec.record_span(SpanKind::Phase, name, 0, 1, SpanMeta::default());
                    done.wait();
                })
                .unwrap();
        }
        done.wait();
        let text = reg.render_prometheus_with_obs(Some(&rec2));
        let samples = parse_prometheus(&text).unwrap();
        let lane = samples
            .iter()
            .find(|s| s.name == "sbgt_obs_lane_dropped_total")
            .unwrap();
        assert_eq!(lane.label("lane"), Some(nasty));
    }

    #[test]
    fn sample_rerender_round_trips() {
        let samples = vec![
            PromSample {
                name: "a_total".into(),
                labels: vec![("k".into(), "plain".into())],
                value: 42.0,
            },
            PromSample {
                name: "b_bucket".into(),
                labels: vec![("shard".into(), "3".into()), ("le".into(), "+Inf".into())],
                value: f64::INFINITY,
            },
            PromSample {
                name: "c".into(),
                labels: vec![],
                value: 0.001953125,
            },
        ];
        let text = render_prom_samples(&samples);
        let back = parse_prometheus(&text).unwrap();
        assert_eq!(back, samples);
    }

    mod escaping_props {
        use super::*;
        use proptest::prelude::*;

        fn label_value() -> impl Strategy<Value = String> {
            // Bias toward the three escaped characters plus printable noise.
            prop::collection::vec(
                prop_oneof![
                    Just('\\'),
                    Just('"'),
                    Just('\n'),
                    Just(','),
                    Just('}'),
                    Just('{'),
                    Just('='),
                    (0x20u32..0x7f).prop_map(|c| char::from_u32(c).unwrap()),
                    (0xa0u32..0x2ff).prop_map(|c| char::from_u32(c).unwrap()),
                ],
                0..24,
            )
            .prop_map(|chars| chars.into_iter().collect())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn label_values_survive_render_parse(values in prop::collection::vec(label_value(), 1..4)) {
                let samples: Vec<PromSample> = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| PromSample {
                        name: format!("m{i}_total"),
                        labels: vec![("lane".into(), v.clone()), ("idx".into(), i.to_string())],
                        value: i as f64,
                    })
                    .collect();
                let text = render_prom_samples(&samples);
                let back = parse_prometheus(&text).unwrap();
                prop_assert_eq!(back, samples);
            }

            #[test]
            fn escaper_is_injective_on_the_escaped_chars(v in label_value()) {
                let escaped = escape_label_value(&v);
                // Escaped text never contains a raw quote or newline, so it
                // can always be embedded between quotes on one line.
                prop_assert!(!escaped.contains('\n'));
                let mut prev_backslash = false;
                for c in escaped.chars() {
                    if c == '"' {
                        prop_assert!(prev_backslash, "unescaped quote in {escaped:?}");
                    }
                    prev_backslash = c == '\\' && !prev_backslash;
                }
            }
        }
    }
}
