//! Structured span recorder — per-thread lock-free ring buffers.
//!
//! A [`SpanRecorder`] collects begin/end events keyed by
//! `(stage, task, attempt, cohort)` from every execution layer: the stage
//! scheduler, both session round loops, and the surveillance service.
//! Recording must not perturb what it measures, so the design is:
//!
//! * **One lane per thread.** The first event a thread records against a
//!   recorder registers a [`WorkerLane`] for it (cached in TLS), and all
//!   of that thread's subsequent events go to its own lane — no sharing,
//!   no contention on the hot path.
//! * **Seqlock rings, no locks.** Each lane is a fixed ring of slots; a
//!   slot is a sequence word plus seven payload words, all atomics. The
//!   writer bumps the sequence odd, stores the payload, bumps it even;
//!   a concurrent snapshot re-checks the sequence and simply skips slots
//!   it caught mid-write. Nothing blocks, nothing allocates, and safe
//!   Rust throughout — a torn read is discarded, never observed.
//! * **Overwrite on wrap.** A lane that fills keeps recording over its
//!   oldest events; the overwritten count is exact (cursor minus
//!   capacity) and surfaced in the trace summary, so truncation is
//!   visible rather than silent.
//! * **Branch-on-atomic gating.** Every instrumentation site first asks
//!   [`SpanRecorder::enabled_at`] — a single relaxed load and compare —
//!   so `SBGT_TRACE=off` costs nothing measurable (bounded by the ≤2%
//!   bench-smoke assertion).
//!
//! Timestamps are nanoseconds since the recorder's creation instant,
//! shared by all lanes, so events from different threads order correctly
//! in the exported trace. Span names are interned to `u32` ids once
//! (typically at stage entry) and resolved at export time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use super::config::{ObsConfig, TraceLevel};

/// `task` value of events not tied to a task.
pub const NO_TASK: u32 = u32::MAX;
/// `cohort` value of events not tied to a cohort.
pub const NO_COHORT: u64 = u64::MAX;
/// `seq` value of events not tied to an engine stage sequence number.
pub const NO_SEQ: u64 = u64::MAX;

/// Salt folded into cohort ids before hashing so a trace id never equals
/// a raw cohort id (which would invite accidental joins on the wrong key).
const TRACE_SALT: u64 = 0x5B67_0B5E_7ACE_1D03;

/// splitmix64 finalizer — the standard 64-bit bijective mixer. Used for
/// trace-id derivation only; it never touches any RNG stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic trace id for a cohort. Every process derives the same id
/// from the same cohort with no RNG and no clock, so traces recorded on
/// different shards stitch together without any id-exchange protocol —
/// and chaos/replay draws can never shift because of tracing.
pub fn trace_id_for_cohort(cohort: u64) -> u64 {
    let id = splitmix64(cohort ^ TRACE_SALT);
    // Zero is reserved as "no trace"; remap the one colliding input.
    if id == 0 {
        1
    } else {
        id
    }
}

/// Cross-process trace identity carried in `sbgt-net` frames: which trace
/// a request belongs to and which client-side span emitted it. Ids are
/// pure functions of the cohort (see [`trace_id_for_cohort`]), so the
/// context is reconstructible, comparable, and replay-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace the request belongs to; `trace_id_for_cohort(cohort)` for
    /// cohort-scoped requests.
    pub trace_id: u64,
    /// Span id of the emitting client-side span, 0 when the client did
    /// not record one.
    pub parent_span: u64,
}

impl TraceContext {
    /// Context for a cohort-scoped request with no explicit parent span.
    pub fn for_cohort(cohort: u64) -> Self {
        TraceContext {
            trace_id: trace_id_for_cohort(cohort),
            parent_span: 0,
        }
    }

    /// Deterministic child span id `seq` steps under this context.
    pub fn child_span(&self, seq: u64) -> u64 {
        splitmix64(self.trace_id ^ seq.wrapping_add(1))
    }
}

/// What a recorded event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// An engine stage or job (driver-side, wraps all its attempts).
    Stage,
    /// One task attempt on an executor thread.
    Task,
    /// One full session round (dense or sharded).
    Round,
    /// A phase within a round: marginals, select, observe.
    Phase,
    /// A service-loop operation: batch-seal, checkpoint, restore.
    Service,
    /// An instantaneous marker: fault injected, shed, recovery.
    Mark,
    /// A counter sample: queue depth, live cohorts.
    Counter,
}

impl SpanKind {
    fn encode(self) -> u64 {
        match self {
            SpanKind::Stage => 0,
            SpanKind::Task => 1,
            SpanKind::Round => 2,
            SpanKind::Phase => 3,
            SpanKind::Service => 4,
            SpanKind::Mark => 5,
            SpanKind::Counter => 6,
        }
    }

    fn decode(v: u64) -> SpanKind {
        match v {
            0 => SpanKind::Stage,
            1 => SpanKind::Task,
            2 => SpanKind::Round,
            3 => SpanKind::Phase,
            4 => SpanKind::Service,
            5 => SpanKind::Mark,
            _ => SpanKind::Counter,
        }
    }

    /// Whether the event has duration (a begin/end pair in the export).
    pub fn is_span(self) -> bool {
        !matches!(self, SpanKind::Mark | SpanKind::Counter)
    }
}

/// Identity of a recorded event beyond its name: which task attempt it
/// was, which cohort it served, and which engine stage sequence number it
/// belongs to. All fields default to "not applicable".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMeta {
    /// Task index within the stage, [`NO_TASK`] if not task-scoped.
    pub task: u32,
    /// Attempt ordinal of the task (retries and speculation bump it).
    pub attempt: u16,
    /// Whether the attempt was a speculative duplicate.
    pub speculative: bool,
    /// Whether the span's operation failed.
    pub failed: bool,
    /// Cohort id the event served, [`NO_COHORT`] if not cohort-scoped.
    pub cohort: u64,
    /// Engine stage sequence number linking task attempts to their stage
    /// span, [`NO_SEQ`] when not stage-scoped.
    pub seq: u64,
}

impl Default for SpanMeta {
    fn default() -> Self {
        SpanMeta {
            task: NO_TASK,
            attempt: 0,
            speculative: false,
            failed: false,
            cohort: NO_COHORT,
            seq: NO_SEQ,
        }
    }
}

impl SpanMeta {
    /// Meta scoped to a cohort only.
    pub fn for_cohort(cohort: u64) -> Self {
        SpanMeta {
            cohort,
            ..Self::default()
        }
    }

    /// Meta scoped to an engine stage sequence number.
    pub fn for_seq(seq: u64) -> Self {
        SpanMeta {
            seq,
            ..Self::default()
        }
    }
}

/// One decoded event from a lane snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Interned name id (resolve with [`SpanRecorder::name_of`]).
    pub name: u32,
    /// Event kind.
    pub kind: SpanKind,
    /// Start time, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End time; equals `start_ns` for marks and counter samples.
    pub end_ns: u64,
    /// Counter value ([`SpanKind::Counter`] only).
    pub value: u64,
    /// See [`SpanMeta`].
    pub meta: SpanMeta,
}

const FLAG_SPECULATIVE: u64 = 1;
const FLAG_FAILED: u64 = 2;

/// Payload words per slot (plus the sequence word).
const SLOT_WORDS: usize = 7;

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// One thread's ring buffer of events.
pub struct WorkerLane {
    name: String,
    /// Events ever pushed; slot index is `cursor % capacity`.
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl WorkerLane {
    fn new(name: String, capacity: usize) -> Self {
        WorkerLane {
            name,
            cursor: AtomicU64::new(0),
            slots: (0..capacity.max(16)).map(|_| Slot::new()).collect(),
        }
    }

    /// Record one event. Intended to be called only from the lane's
    /// owning thread; a violation cannot corrupt memory (every word is
    /// atomic), it can only waste a slot.
    fn push(&self, ev: &SpanEvent) {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let slot = &self.slots[(cursor % self.slots.len() as u64) as usize];
        // Odd sequence marks the slot as mid-write; readers skip it.
        slot.seq.store(2 * cursor + 1, Ordering::Release);
        let m = &ev.meta;
        let flags = u64::from(m.speculative) * FLAG_SPECULATIVE + u64::from(m.failed) * FLAG_FAILED;
        let packed =
            ev.name as u64 | (ev.kind.encode() << 32) | (flags << 40) | ((m.attempt as u64) << 48);
        let words = [
            ev.start_ns,
            ev.end_ns,
            ev.value,
            packed,
            m.task as u64,
            m.cohort,
            m.seq,
        ];
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Release);
        }
        slot.seq.store(2 * cursor + 2, Ordering::Release);
        self.cursor.store(cursor + 1, Ordering::Release);
    }

    /// Copy out the retained events, oldest first, plus the count of
    /// events lost to ring wrap-around. Torn slots (caught mid-write) are
    /// skipped.
    fn snapshot(&self) -> (Vec<SpanEvent>, u64) {
        let cap = self.slots.len() as u64;
        let cursor = self.cursor.load(Ordering::Acquire);
        let first = cursor.saturating_sub(cap);
        let mut events = Vec::with_capacity((cursor - first) as usize);
        for i in first..cursor {
            let slot = &self.slots[(i % cap) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before != 2 * i + 2 {
                // Torn or already overwritten by a lap we didn't expect.
                continue;
            }
            let mut words = [0u64; SLOT_WORDS];
            for (w, s) in words.iter_mut().zip(slot.words.iter()) {
                *w = s.load(Ordering::Acquire);
            }
            if slot.seq.load(Ordering::Acquire) != seq_before {
                continue;
            }
            let packed = words[3];
            events.push(SpanEvent {
                name: (packed & 0xFFFF_FFFF) as u32,
                kind: SpanKind::decode((packed >> 32) & 0xFF),
                start_ns: words[0],
                end_ns: words[1],
                value: words[2],
                meta: SpanMeta {
                    task: words[4] as u32,
                    attempt: ((packed >> 48) & 0xFFFF) as u16,
                    speculative: (packed >> 40) & FLAG_SPECULATIVE != 0,
                    failed: (packed >> 40) & FLAG_FAILED != 0,
                    cohort: words[5],
                    seq: words[6],
                },
            });
        }
        (events, first)
    }
}

/// Decoded contents of one lane at snapshot time.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Thread name captured at lane registration.
    pub name: String,
    /// Retained events, oldest first.
    pub events: Vec<SpanEvent>,
    /// Events overwritten by ring wrap-around before the snapshot.
    pub dropped: u64,
}

/// A point-in-time copy of everything the recorder holds.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Recording level at snapshot time.
    pub level: TraceLevel,
    /// Process tag of the recorder (see [`SpanRecorder::set_process_tag`]);
    /// 0 when never set.
    pub process_tag: u64,
    /// One entry per registered thread, in registration order.
    pub lanes: Vec<LaneSnapshot>,
}

impl ObsSnapshot {
    /// Total retained events across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Total events lost to ring wrap-around across all lanes.
    pub fn total_dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// All events of every lane, flattened in lane order.
    pub fn all_events(&self) -> impl Iterator<Item = &SpanEvent> {
        self.lanes.iter().flat_map(|l| l.events.iter())
    }
}

/// Process-unique recorder ids, keying the TLS lane cache.
static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (recorder id, lane) pairs this thread has registered. Bounded so a
    /// thread outliving many engines cannot grow it without limit.
    static LANE_CACHE: RefCell<Vec<(u64, Arc<WorkerLane>)>> = const { RefCell::new(Vec::new()) };
}

/// Most recorder-lane registrations a single thread caches.
const LANE_CACHE_CAP: usize = 64;

#[derive(Default)]
struct NameTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

/// The recorder: owns the lanes, the name table, and the shared epoch.
/// One per [`crate::Engine`], shared with sessions and the service via
/// `Arc`.
pub struct SpanRecorder {
    id: u64,
    level: AtomicU8,
    lane_capacity: usize,
    epoch: Instant,
    process_tag: AtomicU64,
    lanes: Mutex<Vec<Arc<WorkerLane>>>,
    names: Mutex<NameTable>,
}

impl SpanRecorder {
    /// Recorder with the given configuration.
    pub fn new(config: ObsConfig) -> Self {
        SpanRecorder {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            level: AtomicU8::new(encode_level(config.level)),
            lane_capacity: config.lane_capacity.max(16),
            epoch: Instant::now(),
            process_tag: AtomicU64::new(0),
            lanes: Mutex::new(Vec::new()),
            names: Mutex::new(NameTable::default()),
        }
    }

    /// Tag this recorder with a process identity (typically the OS pid, or
    /// a shard id in tests). The tag rides along in [`ObsSnapshot`] and
    /// `ObsFrame` exports so merged fleet traces can attribute lanes to
    /// their origin process. 0 means "never set".
    pub fn set_process_tag(&self, tag: u64) {
        self.process_tag.store(tag, Ordering::Relaxed);
    }

    /// The process tag, 0 when never set.
    pub fn process_tag(&self) -> u64 {
        self.process_tag.load(Ordering::Relaxed)
    }

    /// Current recording level.
    pub fn level(&self) -> TraceLevel {
        decode_level(self.level.load(Ordering::Relaxed))
    }

    /// Change the recording level at runtime (flips the gate atomically;
    /// already-recorded events are kept).
    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(encode_level(level), Ordering::Relaxed);
    }

    /// Whether anything is being recorded.
    pub fn enabled(&self) -> bool {
        self.level.load(Ordering::Relaxed) != 0
    }

    /// Whether events at `min` verbosity are being recorded. This is the
    /// hot-path gate: one relaxed load and a compare.
    #[inline]
    pub fn enabled_at(&self, min: TraceLevel) -> bool {
        self.level.load(Ordering::Relaxed) >= encode_level(min)
    }

    /// Nanoseconds since the recorder epoch (shared by all lanes).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Intern `name`, returning its stable id. Call once per call-site
    /// (not per event) when possible.
    pub fn intern(&self, name: &str) -> u32 {
        let mut table = self.names.lock();
        if let Some(&id) = table.index.get(name) {
            return id;
        }
        let id = table.names.len() as u32;
        table.names.push(name.to_string());
        table.index.insert(name.to_string(), id);
        id
    }

    /// Resolve an interned id back to its name.
    pub fn name_of(&self, id: u32) -> String {
        self.names
            .lock()
            .names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("name#{id}"))
    }

    /// Copy of the whole name table, indexed by interned id. Used by
    /// exports that ship events across a process boundary, where
    /// [`Self::name_of`] is not available at render time.
    pub fn name_table(&self) -> Vec<String> {
        self.names.lock().names.clone()
    }

    /// The calling thread's lane, registering one on first use.
    fn lane(&self) -> Arc<WorkerLane> {
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, lane)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(lane);
            }
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", self.lanes.lock().len()));
            let lane = Arc::new(WorkerLane::new(name, self.lane_capacity));
            self.lanes.lock().push(Arc::clone(&lane));
            if cache.len() >= LANE_CACHE_CAP {
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&lane)));
            lane
        })
    }

    /// Record a completed span with explicit timestamps.
    pub fn record_span(
        &self,
        kind: SpanKind,
        name: u32,
        start_ns: u64,
        end_ns: u64,
        meta: SpanMeta,
    ) {
        self.lane().push(&SpanEvent {
            name,
            kind,
            start_ns,
            end_ns: end_ns.max(start_ns),
            value: 0,
            meta,
        });
    }

    /// Record a completed span ending now.
    pub fn record_span_ending_now(&self, kind: SpanKind, name: u32, start_ns: u64, meta: SpanMeta) {
        self.record_span(kind, name, start_ns, self.now_ns(), meta);
    }

    /// Record an instantaneous marker.
    pub fn mark(&self, name: u32, meta: SpanMeta) {
        self.mark_value(name, 0, meta);
    }

    /// Record an instantaneous marker carrying a payload value (a trace
    /// id, a burn rate in milli-units, a residual in nanos — anything that
    /// fits a `u64`).
    pub fn mark_value(&self, name: u32, value: u64, meta: SpanMeta) {
        let now = self.now_ns();
        self.lane().push(&SpanEvent {
            name,
            kind: SpanKind::Mark,
            start_ns: now,
            end_ns: now,
            value,
            meta,
        });
    }

    /// Record a counter sample (rendered as a counter track).
    pub fn counter(&self, name: u32, value: u64) {
        let now = self.now_ns();
        self.lane().push(&SpanEvent {
            name,
            kind: SpanKind::Counter,
            start_ns: now,
            end_ns: now,
            value,
            meta: SpanMeta::default(),
        });
    }

    /// Open a span guard that records on drop, or `None` when recording
    /// at `min` verbosity is off. The typical instrumentation site is
    /// one line: `let _s = obs.span(TraceLevel::Spans, kind, "name", meta);`.
    pub fn span(
        &self,
        min: TraceLevel,
        kind: SpanKind,
        name: &str,
        meta: SpanMeta,
    ) -> Option<SpanGuard<'_>> {
        if !self.enabled_at(min) {
            return None;
        }
        Some(SpanGuard {
            recorder: self,
            kind,
            name: self.intern(name),
            start_ns: self.now_ns(),
            meta,
        })
    }

    /// Decode everything currently retained.
    pub fn snapshot(&self) -> ObsSnapshot {
        let lanes = self.lanes.lock().clone();
        ObsSnapshot {
            level: self.level(),
            process_tag: self.process_tag(),
            lanes: lanes
                .iter()
                .map(|lane| {
                    let (events, dropped) = lane.snapshot();
                    LaneSnapshot {
                        name: lane.name.clone(),
                        events,
                        dropped,
                    }
                })
                .collect(),
        }
    }

    /// One-line summary for the timeline's `obs:` segment. Empty when
    /// nothing was recorded (quiet engines render no segment).
    pub fn summary_line(&self) -> String {
        let snap = self.snapshot();
        let events = snap.total_events();
        if events == 0 && snap.total_dropped() == 0 {
            return String::new();
        }
        let level = match self.level() {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        };
        format!(
            "obs: level {level}, {events} event(s) across {} lane(s), {} overwritten\n",
            snap.lanes.len(),
            snap.total_dropped(),
        )
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("level", &self.level())
            .field("lanes", &self.lanes.lock().len())
            .finish()
    }
}

/// Records a span over its lexical scope; created by
/// [`SpanRecorder::span`].
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    kind: SpanKind,
    name: u32,
    start_ns: u64,
    meta: SpanMeta,
}

impl SpanGuard<'_> {
    /// Flag the span's operation as failed before it closes.
    pub fn set_failed(&mut self) {
        self.meta.failed = true;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder
            .record_span_ending_now(self.kind, self.name, self.start_ns, self.meta);
    }
}

fn encode_level(level: TraceLevel) -> u8 {
    match level {
        TraceLevel::Off => 0,
        TraceLevel::Spans => 1,
        TraceLevel::Full => 2,
    }
}

fn decode_level(v: u8) -> TraceLevel {
    match v {
        0 => TraceLevel::Off,
        1 => TraceLevel::Spans,
        _ => TraceLevel::Full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_recorder() -> SpanRecorder {
        SpanRecorder::new(ObsConfig::full())
    }

    #[test]
    fn gate_levels() {
        let rec = SpanRecorder::new(ObsConfig::off());
        assert!(!rec.enabled());
        assert!(!rec.enabled_at(TraceLevel::Spans));
        rec.set_level(TraceLevel::Spans);
        assert!(rec.enabled_at(TraceLevel::Spans));
        assert!(!rec.enabled_at(TraceLevel::Full));
        rec.set_level(TraceLevel::Full);
        assert!(rec.enabled_at(TraceLevel::Full));
        assert_eq!(rec.level(), TraceLevel::Full);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = full_recorder();
        {
            let mut g = rec
                .span(
                    TraceLevel::Spans,
                    SpanKind::Stage,
                    "stage-a",
                    SpanMeta::for_seq(7),
                )
                .unwrap();
            g.set_failed();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.total_events(), 1);
        let ev = snap.lanes[0].events[0];
        assert_eq!(ev.kind, SpanKind::Stage);
        assert_eq!(rec.name_of(ev.name), "stage-a");
        assert_eq!(ev.meta.seq, 7);
        assert!(ev.meta.failed);
        assert!(ev.end_ns >= ev.start_ns);
    }

    #[test]
    fn disabled_span_returns_none() {
        let rec = SpanRecorder::new(ObsConfig::off());
        assert!(rec
            .span(TraceLevel::Spans, SpanKind::Stage, "x", SpanMeta::default())
            .is_none());
        assert_eq!(rec.snapshot().total_events(), 0);
        assert_eq!(rec.summary_line(), "");
    }

    #[test]
    fn intern_is_stable_and_reversible() {
        let rec = full_recorder();
        let a = rec.intern("alpha");
        let b = rec.intern("beta");
        assert_ne!(a, b);
        assert_eq!(rec.intern("alpha"), a);
        assert_eq!(rec.name_of(a), "alpha");
        assert_eq!(rec.name_of(b), "beta");
        assert_eq!(rec.name_of(999), "name#999");
    }

    #[test]
    fn meta_roundtrips_through_the_ring() {
        let rec = full_recorder();
        let name = rec.intern("task-span");
        let meta = SpanMeta {
            task: 11,
            attempt: 3,
            speculative: true,
            failed: false,
            cohort: 42,
            seq: 1234,
        };
        rec.record_span(SpanKind::Task, name, 100, 250, meta);
        let snap = rec.snapshot();
        let ev = snap.lanes[0].events[0];
        assert_eq!(ev.meta, meta);
        assert_eq!(ev.start_ns, 100);
        assert_eq!(ev.end_ns, 250);
        assert_eq!(ev.kind, SpanKind::Task);
    }

    #[test]
    fn counters_and_marks_are_instantaneous() {
        let rec = full_recorder();
        let q = rec.intern("queue_depth");
        rec.counter(q, 17);
        rec.mark(rec.intern("shed"), SpanMeta::for_cohort(3));
        let snap = rec.snapshot();
        let events = &snap.lanes[0].events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, SpanKind::Counter);
        assert_eq!(events[0].value, 17);
        assert_eq!(events[0].start_ns, events[0].end_ns);
        assert_eq!(events[1].kind, SpanKind::Mark);
        assert_eq!(events[1].meta.cohort, 3);
        assert!(!events[1].kind.is_span());
        assert!(SpanKind::Round.is_span());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = SpanRecorder::new(ObsConfig::full().with_lane_capacity(16));
        let name = rec.intern("e");
        for i in 0..40u64 {
            rec.record_span(SpanKind::Phase, name, i, i + 1, SpanMeta::default());
        }
        let snap = rec.snapshot();
        assert_eq!(snap.lanes[0].events.len(), 16);
        assert_eq!(snap.lanes[0].dropped, 24);
        // The retained window is the newest events, oldest first.
        assert_eq!(snap.lanes[0].events[0].start_ns, 24);
        assert_eq!(snap.lanes[0].events[15].start_ns, 39);
        assert!(snap.total_dropped() == 24);
        let summary = rec.summary_line();
        assert!(summary.contains("16 event(s)"), "{summary}");
        assert!(summary.contains("24 overwritten"), "{summary}");
    }

    #[test]
    fn each_thread_gets_its_own_lane() {
        let rec = Arc::new(full_recorder());
        let name = rec.intern("cross-thread");
        rec.record_span(SpanKind::Stage, name, 0, 1, SpanMeta::default());
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let rec = Arc::clone(&rec);
                std::thread::Builder::new()
                    .name(format!("obs-worker-{i}"))
                    .spawn(move || {
                        for j in 0..5 {
                            rec.record_span(SpanKind::Task, name, j, j + 1, SpanMeta::default());
                        }
                    })
                    .unwrap()
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.lanes.len(), 4);
        assert_eq!(snap.total_events(), 16);
        let names: Vec<_> = snap.lanes.iter().map(|l| l.name.as_str()).collect();
        for i in 0..3 {
            assert!(names.contains(&format!("obs-worker-{i}").as_str()));
        }
    }

    #[test]
    fn trace_ids_are_deterministic_nonzero_and_distinct() {
        // Pure derivation: same cohort -> same id, in any process, forever.
        let a = trace_id_for_cohort(0);
        let b = trace_id_for_cohort(1);
        let c = trace_id_for_cohort(u64::MAX);
        assert_eq!(a, trace_id_for_cohort(0));
        assert_ne!(a, b);
        assert_ne!(b, c);
        for id in [a, b, c] {
            assert_ne!(id, 0, "0 is reserved for 'no trace'");
        }
        let ctx = TraceContext::for_cohort(42);
        assert_eq!(ctx.trace_id, trace_id_for_cohort(42));
        assert_eq!(ctx.parent_span, 0);
        assert_ne!(ctx.child_span(0), ctx.child_span(1));
        assert_eq!(
            ctx.child_span(3),
            TraceContext::for_cohort(42).child_span(3)
        );
    }

    #[test]
    fn process_tag_rides_in_snapshots() {
        let rec = full_recorder();
        assert_eq!(rec.process_tag(), 0);
        assert_eq!(rec.snapshot().process_tag, 0);
        rec.set_process_tag(7001);
        assert_eq!(rec.process_tag(), 7001);
        assert_eq!(rec.snapshot().process_tag, 7001);
    }

    #[test]
    fn mark_value_carries_its_payload() {
        let rec = full_recorder();
        let name = rec.intern("net:trace-inherit");
        rec.mark_value(name, 0xDEAD_BEEF, SpanMeta::for_cohort(9));
        let snap = rec.snapshot();
        let ev = snap.lanes[0].events[0];
        assert_eq!(ev.kind, SpanKind::Mark);
        assert_eq!(ev.value, 0xDEAD_BEEF);
        assert_eq!(ev.meta.cohort, 9);
    }

    #[test]
    fn name_table_matches_interned_ids() {
        let rec = full_recorder();
        let a = rec.intern("alpha");
        let b = rec.intern("beta");
        let table = rec.name_table();
        assert_eq!(table[a as usize], "alpha");
        assert_eq!(table[b as usize], "beta");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn concurrent_snapshot_never_sees_torn_events() {
        // A writer hammers its lane while readers snapshot concurrently;
        // every decoded event must be internally consistent.
        let rec = Arc::new(SpanRecorder::new(ObsConfig::full().with_lane_capacity(64)));
        let name = rec.intern("hammer");
        let writer = {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    // Every field derives from i, so a torn record would
                    // break the invariants below.
                    rec.record_span(
                        SpanKind::Task,
                        name,
                        i * 10,
                        i * 10 + 5,
                        SpanMeta {
                            task: i as u32,
                            attempt: (i % 7) as u16,
                            speculative: false,
                            failed: false,
                            cohort: i,
                            seq: i,
                        },
                    );
                }
            })
        };
        for _ in 0..200 {
            let snap = rec.snapshot();
            for ev in snap.all_events() {
                let i = ev.meta.cohort;
                assert_eq!(ev.start_ns, i * 10);
                assert_eq!(ev.end_ns, i * 10 + 5);
                assert_eq!(ev.meta.task, i as u32);
                assert_eq!(ev.meta.attempt, (i % 7) as u16);
                assert_eq!(ev.meta.seq, i);
            }
        }
        writer.join().unwrap();
    }
}
