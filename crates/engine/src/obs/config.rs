//! Telemetry configuration — how much the span recorder captures.

use serde::{Deserialize, Serialize};

/// Recording verbosity of the span recorder, from cheapest to richest.
///
/// The disabled path (`Off`) costs one relaxed atomic load per would-be
/// span, which is what keeps the default engine configuration within the
/// documented ≤2% overhead budget on the fused-round hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Record nothing.
    #[default]
    Off,
    /// Stage, session-phase, and service spans (driver-side only).
    Spans,
    /// Everything: per-task attempt spans on worker threads, fault and
    /// recovery marks, and counter tracks (queue depth, live cohorts).
    Full,
}

impl TraceLevel {
    /// Whether this level records at least `min`.
    pub fn at_least(self, min: TraceLevel) -> bool {
        self >= min
    }
}

/// Default ring capacity (events) of each per-thread span lane.
pub const DEFAULT_LANE_CAPACITY: usize = 4096;

/// Telemetry configuration of an [`crate::Engine`].
///
/// The default is read from the `SBGT_TRACE` environment variable
/// (`off` | `spans` | `full`, unset meaning `off`), so any binary in the
/// workspace can be traced without code changes; programmatic overrides
/// use [`crate::EngineConfig::with_obs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// What the recorder captures.
    pub level: TraceLevel,
    /// Ring capacity (events) of each per-thread lane; oldest events are
    /// overwritten once a lane wraps, and the overwritten count is
    /// reported in the trace summary.
    pub lane_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            level: TraceLevel::Off,
            lane_capacity: DEFAULT_LANE_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Recording disabled (the zero-overhead path).
    pub fn off() -> Self {
        Self::default()
    }

    /// Driver-side spans only.
    pub fn spans() -> Self {
        ObsConfig {
            level: TraceLevel::Spans,
            ..Self::default()
        }
    }

    /// Spans plus per-task attempts, marks, and counter tracks.
    pub fn full() -> Self {
        ObsConfig {
            level: TraceLevel::Full,
            ..Self::default()
        }
    }

    /// Read the level from `SBGT_TRACE` (`off`/`0`, `spans`/`1`,
    /// `full`/`2`; unset or unrecognized means `off`).
    pub fn from_env() -> Self {
        let level = match std::env::var("SBGT_TRACE").as_deref() {
            Ok("spans") | Ok("1") => TraceLevel::Spans,
            Ok("full") | Ok("2") => TraceLevel::Full,
            _ => TraceLevel::Off,
        };
        ObsConfig {
            level,
            ..Self::default()
        }
    }

    /// Override the per-lane ring capacity (clamped to at least 16).
    pub fn with_lane_capacity(mut self, capacity: usize) -> Self {
        self.lane_capacity = capacity.max(16);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Full);
        assert!(TraceLevel::Full.at_least(TraceLevel::Spans));
        assert!(TraceLevel::Spans.at_least(TraceLevel::Spans));
        assert!(!TraceLevel::Off.at_least(TraceLevel::Spans));
    }

    #[test]
    fn default_is_off() {
        let c = ObsConfig::default();
        assert_eq!(c.level, TraceLevel::Off);
        assert_eq!(c.lane_capacity, DEFAULT_LANE_CAPACITY);
        assert_eq!(ObsConfig::off(), c);
    }

    #[test]
    fn presets_set_levels() {
        assert_eq!(ObsConfig::spans().level, TraceLevel::Spans);
        assert_eq!(ObsConfig::full().level, TraceLevel::Full);
    }

    #[test]
    fn lane_capacity_is_clamped() {
        assert_eq!(ObsConfig::full().with_lane_capacity(0).lane_capacity, 16);
        assert_eq!(
            ObsConfig::full().with_lane_capacity(1 << 14).lane_capacity,
            1 << 14
        );
    }
}
