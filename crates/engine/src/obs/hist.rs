//! Streaming log-bucketed latency histogram (HDR-style).
//!
//! [`LogHistogram`] records unsigned integer samples (the engine uses
//! microseconds) into a fixed array of logarithmically spaced buckets:
//! each power-of-two range is split into [`SUB_BUCKETS`] sub-buckets, so
//! any quantile estimate is off by at most one sub-bucket width —
//! a relative error bound of `1 / SUB_BUCKETS` = 12.5%. Exact `count`,
//! `sum`, `min`, and `max` are tracked on the side, and quantile answers
//! are clamped into `[min, max]`, so extreme quantiles (p0/p100) are
//! exact and small values (`< SUB_BUCKETS`) land in unit-width buckets
//! and are exact too.
//!
//! The whole structure is ~2.4 KB ([`BUCKET_COUNT`] `u64` counters plus a
//! few scalars), independent of how many samples were recorded — this is
//! what lets `ServiceStats` run for days without growing — and two
//! histograms recorded on different threads [`merge`](LogHistogram::merge)
//! into exactly the histogram a single recorder would have produced.

/// log2 of the number of sub-buckets per power-of-two range.
const SUB_BITS: u32 = 3;

/// Sub-buckets per power-of-two range; the relative quantile error bound
/// is `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Values at or above `2^MAX_EXP` are clamped into the top bucket. At
/// microsecond resolution this is ~12.7 days — far beyond any round.
const MAX_EXP: u32 = 40;

/// Total bucket count: `SUB_BUCKETS` unit-width buckets for values below
/// `SUB_BUCKETS`, then `SUB_BUCKETS` per octave up to `2^MAX_EXP`.
pub const BUCKET_COUNT: usize = (MAX_EXP - SUB_BITS + 1) as usize * SUB_BUCKETS;

/// Largest value stored without clamping.
const MAX_VALUE: u64 = (1u64 << MAX_EXP) - 1;

/// Fixed-size streaming histogram with bounded relative error. See the
/// module docs for the error bound and memory model.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKET_COUNT]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKET_COUNT]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value` (already clamped to `MAX_VALUE`).
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let offset = ((value >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        group * SUB_BUCKETS + offset
    }

    /// Exclusive upper bound of bucket `i`; a recorded sample is strictly
    /// below its bucket's bound.
    fn bucket_upper_bound(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64 + 1;
        }
        let group = (i / SUB_BUCKETS) as u32;
        let offset = (i % SUB_BUCKETS) as u64;
        let shift = group - 1; // msb - SUB_BITS
        (SUB_BUCKETS as u64 + offset + 1) << shift
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let clamped = value.min(MAX_VALUE);
        self.counts[Self::bucket_index(clamped)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` into `self`; equivalent to having recorded both sample
    /// streams into one histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile estimate (`p` in `[0, 1]`). The answer is a
    /// bucket's inclusive upper bound clamped into `[min, max]`, so it is
    /// within `1 / SUB_BUCKETS` relative error of the exact order
    /// statistic (exact for unit-width buckets) — O(buckets), no sample
    /// storage, no sorting.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((Self::bucket_upper_bound(i) - 1).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The raw per-bucket counters, indexed by bucket. The inverse of
    /// [`Self::from_raw_parts`]; together they let a histogram cross a
    /// process boundary bit-for-bit (the `ObsFrame` wire codec).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts[..]
    }

    /// Rebuild a histogram from its raw parts, validating the invariants
    /// [`Self::record`] maintains. Returns `None` (fail-closed) when
    /// `counts` is not exactly [`BUCKET_COUNT`] long, the bucket counters
    /// do not sum to a consistent total, or the min/max/sum scalars are
    /// impossible for that total.
    pub fn from_raw_parts(counts: &[u64], sum: u64, min: u64, max: u64) -> Option<LogHistogram> {
        if counts.len() != BUCKET_COUNT {
            return None;
        }
        let mut total = 0u64;
        for &c in counts {
            total = total.checked_add(c)?;
        }
        if total == 0 {
            if sum != 0 || min != u64::MAX || max != 0 {
                return None;
            }
        } else if min > max {
            return None;
        }
        let mut boxed = Box::new([0u64; BUCKET_COUNT]);
        boxed.copy_from_slice(counts);
        Some(LogHistogram {
            counts: boxed,
            count: total,
            sum,
            min,
            max,
        })
    }

    /// Non-empty buckets as `(exclusive upper bound, cumulative count)` in
    /// ascending order — the shape a Prometheus `le` series needs.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((Self::bucket_upper_bound(i), cum));
            }
        }
        out
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.5))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_answers() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn all_zero_samples_answer_zero_at_every_quantile() {
        // Zero is a real sample (bucket 0, upper bound 1): the nearest-rank
        // walk computes `1 - 1 = 0` and the [min, max] clamp keeps it there
        // — no underflow, no phantom positive latency.
        let mut h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(0);
        }
        assert!(!h.is_empty());
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), Some(0), "p={p}");
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.sum(), 0);
        // Out-of-range and pathological p values clamp instead of
        // panicking; NaN degrades to the lowest rank.
        assert_eq!(h.quantile(-3.0), Some(0));
        assert_eq!(h.quantile(7.0), Some(0));
        assert_eq!(h.quantile(f64::NAN), Some(0));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        // Unit-width buckets: every quantile of {0..7} is exact.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(7));
        assert_eq!(h.quantile(0.5), Some(3));
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_tight() {
        for i in 1..BUCKET_COUNT {
            assert!(
                LogHistogram::bucket_upper_bound(i) > LogHistogram::bucket_upper_bound(i - 1),
                "bound not monotonic at {i}"
            );
        }
        // Every value maps into a bucket whose inclusive upper bound
        // (what `quantile` reports) exceeds it by at most 12.5%.
        for &v in &[1u64, 7, 8, 9, 100, 1000, 123_456, 10_000_000, MAX_VALUE] {
            let i = LogHistogram::bucket_index(v);
            let ub = LogHistogram::bucket_upper_bound(i);
            assert!(ub > v, "bound {ub} not above {v}");
            let rel = (ub - 1 - v) as f64 / v as f64;
            assert!(rel <= 0.125 + 1e-12, "value {v}: bound {ub}, rel err {rel}");
            if i > 0 {
                assert!(LogHistogram::bucket_upper_bound(i - 1) <= v);
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LogHistogram::new();
        let samples: Vec<u64> = (0..10_000u64).map(|i| i * i % 900_001 + 1).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &p in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            let exact = sorted[rank] as f64;
            let est = h.quantile(p).unwrap() as f64;
            assert!(
                (est - exact).abs() / exact <= 0.125 + 1e-12,
                "p={p}: exact {exact}, estimate {est}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LogHistogram::new();
        for v in [13u64, 999, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(13));
        assert_eq!(h.quantile(1.0), Some(1_000_000));
        assert_eq!(h.min(), Some(13));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_001_012);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn oversized_values_clamp_into_top_bucket() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(MAX_VALUE + 5);
        assert_eq!(h.count(), 2);
        // max is tracked exactly even though the bucket clamps.
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn cumulative_buckets_sum_to_count() {
        let mut h = LogHistogram::new();
        for v in [3u64, 3, 70, 900, 900, 900, 12_345] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        // Cumulative counts are non-decreasing and end at the total count.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
    }

    #[test]
    fn memory_footprint_is_fixed() {
        // The O(1)-in-rounds claim: bucket array is ~2.4 KB regardless of
        // how many samples were recorded.
        assert_eq!(BUCKET_COUNT, 304);
        assert!(BUCKET_COUNT * std::mem::size_of::<u64>() <= 2560);
        let mut h = LogHistogram::new();
        for i in 0..100_000u64 {
            h.record(i);
        }
        assert_eq!(h.counts.len(), BUCKET_COUNT);
    }

    #[test]
    fn raw_parts_round_trip_bit_for_bit() {
        let mut h = LogHistogram::new();
        for v in [0u64, 3, 70, 900, 12_345, u64::MAX] {
            h.record(v);
        }
        let back = LogHistogram::from_raw_parts(h.bucket_counts(), h.sum(), h.min, h.max).unwrap();
        assert_eq!(back, h);
        // Empty round-trips too.
        let e = LogHistogram::new();
        let back = LogHistogram::from_raw_parts(e.bucket_counts(), 0, u64::MAX, 0).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn from_raw_parts_rejects_inconsistent_inputs() {
        // Wrong length.
        assert!(LogHistogram::from_raw_parts(&[0; 10], 0, u64::MAX, 0).is_none());
        // Empty buckets but non-empty scalars.
        let zeros = [0u64; BUCKET_COUNT];
        assert!(LogHistogram::from_raw_parts(&zeros, 5, u64::MAX, 0).is_none());
        assert!(LogHistogram::from_raw_parts(&zeros, 0, 3, 9).is_none());
        // Non-empty buckets with min > max.
        let mut one = [0u64; BUCKET_COUNT];
        one[0] = 1;
        assert!(LogHistogram::from_raw_parts(&one, 0, 9, 3).is_none());
        // Counter overflow is rejected, not wrapped.
        let mut huge = [0u64; BUCKET_COUNT];
        huge[0] = u64::MAX;
        huge[1] = 1;
        assert!(LogHistogram::from_raw_parts(&huge, 0, 0, 1).is_none());
    }

    #[test]
    fn golden_quantiles_for_round_latencies() {
        // The exact values the timeline golden test renders: 1/2/3/4 ms
        // rounds in microseconds.
        let mut h = LogHistogram::new();
        for ms in [1_000u64, 2_000, 3_000, 4_000] {
            h.record(ms);
        }
        assert_eq!(h.quantile(0.5), Some(2_047));
        assert_eq!(h.quantile(0.99), Some(4_000)); // clamped by exact max
    }
}
