//! `sbgt-obs` — the engine's telemetry subsystem.
//!
//! Spark ships a stage/task event timeline UI and pluggable metrics
//! sinks as first-class features; this module family is the Rust
//! reproduction's native equivalent, built for a service that runs for
//! days under heavy traffic:
//!
//! * [`config`] — [`ObsConfig`]/[`TraceLevel`]: what to record, read
//!   from `SBGT_TRACE` by default and costing one atomic load when off.
//! * [`span`] — [`SpanRecorder`]: per-thread lock-free ring buffers of
//!   begin/end events keyed by `(stage, task, attempt, cohort)`, fed by
//!   the stage scheduler, both session round loops, and the service.
//! * [`hist`] — [`LogHistogram`]: fixed-size streaming log-bucketed
//!   histograms (≤12.5% relative error) backing all percentile queries.
//! * [`chrome`] — Chrome trace-event JSON export (Perfetto-loadable),
//!   plus the in-repo JSON parser that validates it.
//! * [`prom`] — Prometheus text exposition
//!   ([`crate::MetricsRegistry::render_prometheus`]) plus the line
//!   parser that round-trips it.
//!
//! See DESIGN.md §8 for the span model and the exporter formats.

pub mod chrome;
pub mod config;
pub mod hist;
pub mod prom;
pub mod span;

pub use chrome::{
    parse_json, render_chrome_trace, render_chrome_trace_processes, validate_chrome_trace,
    ChromeSummary, JsonValue, ProcessTrace,
};
pub use config::{ObsConfig, TraceLevel, DEFAULT_LANE_CAPACITY};
pub use hist::LogHistogram;
pub use prom::{escape_label_value, parse_prometheus, render_prom_samples, PromSample};
pub use span::{
    trace_id_for_cohort, LaneSnapshot, ObsSnapshot, SpanEvent, SpanGuard, SpanKind, SpanMeta,
    SpanRecorder, TraceContext, NO_COHORT, NO_SEQ, NO_TASK,
};
