//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! [`render_chrome_trace`] turns a [`SpanRecorder`] snapshot into the
//! Trace Event Format's JSON-object form: one timeline lane per recorded
//! thread (named via `M`etadata events), duration spans as properly
//! nested `B`/`E` pairs, instantaneous marks as `i` events, and counter
//! samples as `C` events (Perfetto draws those as counter tracks —
//! queue depth, live cohorts). Timestamps are microseconds with
//! nanosecond decimals, all measured against the recorder's shared
//! epoch, so spans from different threads line up.
//!
//! The vendored `serde` is a no-op facade (no `serde_json`), so both the
//! emitter and the parser here are hand-rolled. [`parse_json`] is a
//! small strict recursive-descent JSON reader and
//! [`validate_chrome_trace`] replays a rendered trace against the
//! format's nesting rules (`B`/`E` balance per lane, monotonic
//! timestamps); the exporter tests and the self-checking
//! `examples/trace.rs` both go through it.

use std::cmp::Reverse;
use std::fmt::Write as _;

use super::span::{
    trace_id_for_cohort, LaneSnapshot, SpanEvent, SpanKind, SpanRecorder, NO_COHORT, NO_SEQ,
    NO_TASK,
};

/// One process's contribution to a (possibly merged) Chrome trace: a pid,
/// a display label, the interned-name table, and the lane snapshots. A
/// single-process export is one of these; the fleet scraper builds one per
/// shard from its `ObsFrame`s and renders them into a single document.
#[derive(Debug, Clone)]
pub struct ProcessTrace {
    /// Trace-event `pid` — must be unique within one rendered document.
    pub pid: u32,
    /// Display label (`process_name` metadata), e.g. `shard-2`.
    pub label: String,
    /// Name table indexed by [`SpanEvent::name`]; out-of-range ids render
    /// as `name#<id>` just like [`SpanRecorder::name_of`].
    pub names: Vec<String>,
    /// Lane snapshots; lane index becomes the trace-event `tid`.
    pub lanes: Vec<LaneSnapshot>,
}

impl ProcessTrace {
    /// Snapshot one recorder as a process (the single-process case).
    pub fn from_recorder(pid: u32, label: impl Into<String>, recorder: &SpanRecorder) -> Self {
        ProcessTrace {
            pid,
            label: label.into(),
            names: recorder.name_table(),
            lanes: recorder.snapshot().lanes,
        }
    }

    fn name_of(&self, id: u32) -> String {
        self.names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("name#{id}"))
    }
}

/// Render the recorder's current contents as Chrome trace-event JSON.
pub fn render_chrome_trace(recorder: &SpanRecorder) -> String {
    render_chrome_trace_processes(&[ProcessTrace::from_recorder(1, "sbgt", recorder)])
}

/// Render one trace document spanning any number of processes. Events
/// carry `pid`/`tid` from their process and lane; spans and marks tied to
/// a cohort also carry the deterministic per-cohort trace id in their
/// args, which is what stitches one cohort's work into a single tree even
/// when its rounds ran on different shards.
pub fn render_chrome_trace_processes(processes: &[ProcessTrace]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let emit = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };

    for proc in processes {
        let pid = proc.pid;
        emit(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":{}}}}}",
                json_string(&proc.label)
            ),
            &mut out,
            &mut first,
        );
        for (tid, lane) in proc.lanes.iter().enumerate() {
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&lane.name)
                ),
                &mut out,
                &mut first,
            );

            let mut spans: Vec<&SpanEvent> =
                lane.events.iter().filter(|e| e.kind.is_span()).collect();
            spans.sort_by_key(|e| (e.start_ns, Reverse(e.end_ns)));
            // Emit B/E pairs with an explicit stack so the output is
            // properly nested per lane even if sibling spans touch.
            let mut stack: Vec<(u32, u64)> = Vec::new();
            for span in &spans {
                while let Some(&(name, end_ns)) = stack.last() {
                    if end_ns <= span.start_ns {
                        emit(end_event(proc, name, end_ns, tid), &mut out, &mut first);
                        stack.pop();
                    } else {
                        break;
                    }
                }
                // A child must not outlive its enclosing span; clamp
                // defensively so the file always validates.
                let end_ns = match stack.last() {
                    Some(&(_, parent_end)) => span.end_ns.min(parent_end),
                    None => span.end_ns,
                };
                emit(begin_event(proc, span, tid), &mut out, &mut first);
                stack.push((span.name, end_ns));
            }
            while let Some((name, end_ns)) = stack.pop() {
                emit(end_event(proc, name, end_ns, tid), &mut out, &mut first);
            }

            for ev in lane.events.iter().filter(|e| !e.kind.is_span()) {
                let line = match ev.kind {
                    SpanKind::Counter => format!(
                        "{{\"name\":{},\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                         \"args\":{{\"value\":{}}}}}",
                        json_string(&proc.name_of(ev.name)),
                        ts(ev.start_ns),
                        ev.value
                    ),
                    _ => format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
                         \"ts\":{}{}}}",
                        json_string(&proc.name_of(ev.name)),
                        ts(ev.start_ns),
                        args_object(ev)
                    ),
                };
                emit(line, &mut out, &mut first);
            }
        }
    }
    out.push_str("\n]}");
    out
}

/// Microsecond timestamp with nanosecond decimals.
fn ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn begin_event(proc: &ProcessTrace, span: &SpanEvent, tid: usize) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"B\",\"pid\":{},\"tid\":{tid},\"ts\":{}{}}}",
        json_string(&proc.name_of(span.name)),
        proc.pid,
        ts(span.start_ns),
        args_object(span)
    )
}

fn end_event(proc: &ProcessTrace, name: u32, end_ns: u64, tid: usize) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"E\",\"pid\":{},\"tid\":{tid},\"ts\":{}}}",
        json_string(&proc.name_of(name)),
        proc.pid,
        ts(end_ns)
    )
}

/// `,"args":{...}` with only the applicable identity fields, or nothing.
fn args_object(ev: &SpanEvent) -> String {
    let mut fields = Vec::new();
    let m = &ev.meta;
    if m.task != NO_TASK {
        fields.push(format!("\"task\":{}", m.task));
        fields.push(format!("\"attempt\":{}", m.attempt));
    }
    if m.cohort != NO_COHORT {
        fields.push(format!("\"cohort\":{}", m.cohort));
        // The cross-process stitch key: every event of one cohort carries
        // the same deterministic trace id, whichever shard recorded it.
        fields.push(format!(
            "\"trace\":\"{:016x}\"",
            trace_id_for_cohort(m.cohort)
        ));
    }
    if m.seq != NO_SEQ {
        fields.push(format!("\"seq\":{}", m.seq));
    }
    if m.speculative {
        fields.push("\"speculative\":true".to_string());
    }
    if m.failed {
        fields.push("\"failed\":true".to_string());
    }
    if fields.is_empty() {
        String::new()
    } else {
        format!(",\"args\":{{{}}}", fields.join(","))
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value ([`parse_json`]). Object member order is kept.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (strict: one value, no trailing junk).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| format!("invalid number at byte {start}"))?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

/// What [`validate_chrome_trace`] verified about a trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Complete `B`/`E` span pairs.
    pub spans: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Instant (`i`) marks.
    pub marks: usize,
    /// Distinct lanes named by `thread_name` metadata events.
    pub lanes: usize,
    /// Distinct processes named by `process_name` metadata events (0 for
    /// pre-multi-process traces that never emitted one).
    pub processes: usize,
    /// Deepest `B` nesting observed on any lane.
    pub max_depth: usize,
}

/// Parse a rendered trace document and check the trace-event invariants:
/// the JSON shape, per-(pid, tid)-lane `B`/`E` balance with matching
/// names, monotonic non-negative timestamps per lane, and counter/instant
/// well-formedness. Returns counts on success.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut summary = ChromeSummary {
        spans: 0,
        counters: 0,
        marks: 0,
        lanes: 0,
        processes: 0,
        max_depth: 0,
    };
    // Per-(pid, tid) open-span stack and last-seen timestamp.
    let mut stacks: HashMapLite = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev.get("pid").and_then(|v| v.as_num()).unwrap_or(0.0) as i64;
        let tid = ev.get("tid").and_then(|v| v.as_num()).unwrap_or(0.0) as i64;
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph == "M" {
            match name.as_str() {
                "thread_name" => summary.lanes += 1,
                "process_name" => summary.processes += 1,
                _ => {}
            }
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        let entry = lane_entry(&mut stacks, (pid, tid));
        // Duration events must be time-ordered per lane; counters and
        // marks are sorted by the viewer and may interleave freely.
        if matches!(ph, "B" | "E") {
            if ts + 1e-9 < entry.1 {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on pid {pid} tid {tid} (last {})",
                    entry.1
                ));
            }
            entry.1 = ts;
        }
        match ph {
            "B" => {
                entry.0.push(name);
                summary.max_depth = summary.max_depth.max(entry.0.len());
            }
            "E" => match entry.0.pop() {
                Some(open) if open == name => summary.spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: E '{name}' does not match open span '{open}'"
                    ))
                }
                None => return Err(format!("event {i}: E '{name}' with no open span")),
            },
            "C" => {
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_num())
                    .ok_or_else(|| format!("event {i}: counter without numeric value"))?;
                summary.counters += 1;
            }
            "i" => summary.marks += 1,
            other => return Err(format!("event {i}: unsupported ph '{other}'")),
        }
    }
    for ((pid, tid), (stack, _)) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("pid {pid} tid {tid}: span '{open}' never closed"));
        }
    }
    Ok(summary)
}

/// `((pid, tid), (open-span stack, last ts))` pairs; traces have a
/// handful of lanes, so a vec beats a map.
type HashMapLite = Vec<((i64, i64), (Vec<String>, f64))>;

fn lane_entry(stacks: &mut HashMapLite, lane: (i64, i64)) -> &mut (Vec<String>, f64) {
    if let Some(idx) = stacks.iter().position(|(l, _)| *l == lane) {
        return &mut stacks[idx].1;
    }
    stacks.push((lane, (Vec::new(), 0.0)));
    &mut stacks.last_mut().unwrap().1
}

#[cfg(test)]
mod tests {
    use super::super::config::ObsConfig;
    use super::super::span::SpanMeta;
    use super::*;

    #[test]
    fn json_parser_handles_the_grammar() {
        let doc = r#" {"a": [1, -2.5e2, "x\n\"yA", true, false, null], "b": {}} "#;
        let v = parse_json(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-250.0));
        assert_eq!(a[2].as_str(), Some("x\n\"yA"));
        assert_eq!(a[3], JsonValue::Bool(true));
        assert_eq!(a[4], JsonValue::Bool(false));
        assert_eq!(a[5], JsonValue::Null);
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":{}}}", json_string(nasty));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rendered_trace_validates_with_nesting() {
        let rec = SpanRecorder::new(ObsConfig::full());
        let outer = rec.intern("outer");
        let inner = rec.intern("inner");
        let sibling = rec.intern("sibling");
        // outer [100, 900] contains inner [200, 400] and sibling [400, 600].
        rec.record_span(SpanKind::Stage, outer, 100, 900, SpanMeta::for_seq(1));
        rec.record_span(SpanKind::Task, inner, 200, 400, SpanMeta::default());
        rec.record_span(SpanKind::Task, sibling, 400, 600, SpanMeta::default());
        rec.counter(rec.intern("queue_depth"), 5);
        rec.mark(rec.intern("shed"), SpanMeta::for_cohort(9));
        let text = render_chrome_trace(&rec);
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.marks, 1);
        assert_eq!(summary.lanes, 1);
        assert_eq!(summary.max_depth, 2, "inner must nest under outer");
    }

    #[test]
    fn merged_processes_share_per_cohort_trace_ids() {
        // Two recorders standing in for two shard processes, both running
        // the same cohort. The merged document must validate, show both
        // processes, and carry the identical trace id in both pids' args.
        let make = |pid: u32| {
            let rec = SpanRecorder::new(ObsConfig::full());
            let round = rec.intern("service:round");
            rec.record_span(SpanKind::Round, round, 100, 300, SpanMeta::for_cohort(77));
            ProcessTrace::from_recorder(pid, format!("shard-{pid}"), &rec)
        };
        let text = render_chrome_trace_processes(&[make(1), make(2)]);
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.processes, 2);
        assert_eq!(summary.lanes, 2);
        assert_eq!(summary.spans, 2);
        let want = format!("\"trace\":\"{:016x}\"", trace_id_for_cohort(77));
        assert_eq!(text.matches(&want).count(), 2, "{text}");
        // Same tid on different pids must not collide in the validator:
        // both lanes are tid 0 yet both spans closed cleanly above.
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: std::collections::HashSet<i64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .map(|e| e.get("pid").unwrap().as_num().unwrap() as i64)
            .collect();
        assert_eq!(pids.len(), 2);
    }

    #[test]
    fn overlapping_spans_are_clamped_not_invalid() {
        // A child erroneously outliving its parent still renders a valid
        // nested trace (defensive clamp).
        let rec = SpanRecorder::new(ObsConfig::full());
        let a = rec.intern("parent");
        let b = rec.intern("child-overruns");
        rec.record_span(SpanKind::Stage, a, 100, 500, SpanMeta::default());
        rec.record_span(SpanKind::Task, b, 200, 700, SpanMeta::default());
        let text = render_chrome_trace(&rec);
        validate_chrome_trace(&text).unwrap();
    }

    #[test]
    fn validator_rejects_unbalanced_traces() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":0,"ts":1.0}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never closed"));
        let mismatched = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":0,"ts":1.0},
            {"name":"b","ph":"E","pid":1,"tid":0,"ts":2.0}
        ]}"#;
        assert!(validate_chrome_trace(mismatched)
            .unwrap_err()
            .contains("does not match"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":0,"ts":5.0},
            {"name":"a","ph":"E","pid":1,"tid":0,"ts":2.0}
        ]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn timestamps_are_microseconds_with_nanosecond_decimals() {
        assert_eq!(ts(0), "0.000");
        assert_eq!(ts(1_234_567), "1234.567");
        assert_eq!(ts(999), "0.999");
    }
}
