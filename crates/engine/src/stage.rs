//! Stage scheduler — the fault-tolerant task execution loop.
//!
//! Every dataset stage lowers to [`Engine::run_stage`], which submits one
//! attempt per task to the executor pool and then supervises completions:
//!
//! * **Fault injection** — before each submission the engine's installed
//!   [`FaultPlan`] is consulted at `(stage, seq, task, attempt)`; a matching
//!   fault is woven into the attempt (sleep, synthetic panic, or poisoned
//!   result) and counted in the job's [`FaultStats`].
//! * **Retry** — a failed attempt (real panic, injected panic, poison) is
//!   re-submitted while the [`RetryPolicy`] budget allows; the job only
//!   fails once some task exhausts its attempts, and the resulting
//!   [`EngineError::TaskPanicked`] carries the stage name and attempt count.
//! * **Speculation** — with a [`SpeculationConfig`], once enough tasks have
//!   finished the scheduler duplicates any task still running well past the
//!   median completed duration (at most one duplicate per task); the first
//!   result wins and the loser is discarded.
//!
//! Task closures are `Fn` and must be idempotent: an attempt may run more
//! than once, and two attempts of one task may run concurrently under
//! speculation. Results are assembled in task-index order, so recovered
//! stages are bit-for-bit identical to fault-free ones as long as the
//! closures themselves are deterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use crate::chaos::{Fault, FaultPlan, SpeculationConfig};
use crate::error::{panic_message, EngineError, Result};
use crate::metrics::{FaultStats, JobMetrics, StageVariant, TaskMetrics};
use crate::obs::{SpanKind, SpanMeta, SpanRecorder, TraceLevel};
use crate::pool::ThreadPool;
use crate::retry::RetryPolicy;
use crate::Engine;

/// Telemetry context threaded from the driver into task attempts when
/// recording at [`TraceLevel::Full`]: every attempt records a
/// [`SpanKind::Task`] span on its executor thread's lane, linked back to
/// its stage span by the stage sequence number.
#[derive(Clone)]
struct ObsCtx {
    rec: Arc<SpanRecorder>,
    name: u32,
    seq: u64,
}

/// How often the supervision loop wakes to check for stragglers when
/// speculation is enabled (with speculation off it blocks indefinitely).
const SPECULATION_POLL: Duration = Duration::from_millis(1);

/// Outcome of one attempt, reported by the worker over the stage channel.
struct Completion<T> {
    task: usize,
    speculative: bool,
    outcome: std::result::Result<T, String>,
    duration: Duration,
}

/// Supervision state of one task.
struct TaskState {
    done: bool,
    /// Non-speculative submissions so far (bounded by the retry budget).
    regular_launches: usize,
    /// Speculative submissions so far (bounded to 1).
    speculative_launches: usize,
    /// Total submissions; doubles as the next attempt ordinal, so regular
    /// and speculative attempts of one task never share fault coordinates.
    attempts: usize,
    in_flight: usize,
    last_submit: Instant,
}

impl TaskState {
    fn new() -> Self {
        TaskState {
            done: false,
            regular_launches: 0,
            speculative_launches: 0,
            attempts: 0,
            in_flight: 0,
            last_submit: Instant::now(),
        }
    }
}

/// Submit one attempt of `task` to the pool, weaving in any fault the plan
/// schedules for its coordinates.
#[allow(clippy::too_many_arguments)]
fn submit_attempt<T, F>(
    pool: &ThreadPool,
    plan: Option<&Arc<FaultPlan>>,
    name: &str,
    seq: u64,
    task: usize,
    speculative: bool,
    st: &mut TaskState,
    body: &Arc<F>,
    tx: &Sender<Completion<T>>,
    stats: &mut FaultStats,
    obs: Option<&ObsCtx>,
) -> Result<()>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let attempt = st.attempts;
    st.attempts += 1;
    st.in_flight += 1;
    st.last_submit = Instant::now();
    if speculative {
        st.speculative_launches += 1;
        stats.speculative_launched += 1;
    } else {
        st.regular_launches += 1;
    }

    // Faults are decided on the driver at submission time, so the injected
    // counters are exact even if the attempt loses a speculation race.
    let fault = plan.and_then(|p| p.fault_for(name, seq, task, attempt));
    let mut delay: Option<Duration> = None;
    let mut injected_panic: Option<String> = None;
    let mut poison_msg: Option<String> = None;
    match fault {
        Some(Fault::Delay(d)) => {
            stats.injected_delays += 1;
            delay = Some(d);
        }
        Some(Fault::Panic) => {
            stats.injected_panics += 1;
            injected_panic = Some(format!(
                "injected panic (stage '{name}', task {task}, attempt {attempt})"
            ));
        }
        Some(Fault::Poison) => {
            stats.injected_poisons += 1;
            poison_msg = Some(format!(
                "injected poisoned result (stage '{name}', task {task}, attempt {attempt})"
            ));
        }
        None => {}
    }

    // Injected faults show up as instant marks in the trace, at the
    // coordinates where they will fire.
    if let (Some(ctx), Some(f)) = (obs, fault) {
        let mark_name = match f {
            Fault::Panic => "fault:panic",
            Fault::Delay(_) => "fault:delay",
            Fault::Poison => "fault:poison",
        };
        let id = ctx.rec.intern(mark_name);
        let mut meta = SpanMeta::for_seq(ctx.seq);
        meta.task = task as u32;
        meta.attempt = attempt as u16;
        meta.speculative = speculative;
        ctx.rec.mark(id, meta);
    }

    let body = Arc::clone(body);
    let tx = tx.clone();
    let obs = obs.cloned();
    pool.spawn(move || {
        let obs_start = obs.as_ref().map(|ctx| ctx.rec.now_ns());
        let started = Instant::now();
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        let outcome = if let Some(msg) = injected_panic {
            Err(msg)
        } else {
            match catch_unwind(AssertUnwindSafe(|| body())) {
                // A poisoned attempt runs its body (side effects and all)
                // but its result is discarded as corrupt.
                Ok(value) => match poison_msg {
                    None => Ok(value),
                    Some(msg) => Err(msg),
                },
                Err(payload) => Err(panic_message(payload.as_ref())),
            }
        };
        if let (Some(ctx), Some(start_ns)) = (&obs, obs_start) {
            let meta = SpanMeta {
                task: task as u32,
                attempt: attempt as u16,
                speculative,
                failed: outcome.is_err(),
                cohort: crate::obs::NO_COHORT,
                seq: ctx.seq,
            };
            ctx.rec
                .record_span_ending_now(SpanKind::Task, ctx.name, start_ns, meta);
        }
        // The stage may have already failed and dropped the receiver.
        let _ = tx.send(Completion {
            task,
            speculative,
            outcome,
            duration: started.elapsed(),
        });
    })
}

/// The supervision loop. Returns per-task `(value, winning attempt
/// duration)` in task order. `stats` is filled in even on failure so the
/// caller can record what happened before the stage died.
#[allow(clippy::too_many_arguments)]
fn execute_stage<T, F>(
    engine: &Engine,
    name: &str,
    seq: u64,
    tasks: Vec<F>,
    policy: RetryPolicy,
    speculation: Option<SpeculationConfig>,
    stats: &mut FaultStats,
    obs: Option<&ObsCtx>,
) -> Result<Vec<(T, Duration)>>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::with_capacity(0));
    }
    let plan = engine.fault_plan();
    let pool = engine.pool();
    let tasks: Vec<Arc<F>> = tasks.into_iter().map(Arc::new).collect();
    let (tx, rx) = unbounded::<Completion<T>>();

    let mut states: Vec<TaskState> = (0..n).map(|_| TaskState::new()).collect();
    let mut slots: Vec<Option<(T, Duration)>> = (0..n).map(|_| None).collect();
    let mut completed_durations: Vec<Duration> = Vec::with_capacity(n);
    let mut completed = 0usize;

    for task in 0..n {
        submit_attempt(
            pool,
            plan.as_ref(),
            name,
            seq,
            task,
            false,
            &mut states[task],
            &tasks[task],
            &tx,
            stats,
            obs,
        )?;
    }

    while completed < n {
        let completion = if speculation.is_some() {
            match rx.recv_timeout(SPECULATION_POLL) {
                Ok(c) => Some(c),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return Err(EngineError::PoolShutDown),
            }
        } else {
            Some(rx.recv().map_err(|_| EngineError::PoolShutDown)?)
        };

        if let Some(c) = completion {
            let st = &mut states[c.task];
            st.in_flight -= 1;
            if !st.done {
                match c.outcome {
                    Ok(value) => {
                        st.done = true;
                        completed += 1;
                        completed_durations.push(c.duration);
                        slots[c.task] = Some((value, c.duration));
                        if c.speculative {
                            stats.speculative_wins += 1;
                        }
                    }
                    Err(message) => {
                        // If another attempt of this task is still in
                        // flight (a speculation race), it may yet win;
                        // only decide retry-vs-fail once nothing is.
                        if st.in_flight == 0 {
                            if st.regular_launches < policy.max_attempts() {
                                stats.retries += 1;
                                submit_attempt(
                                    pool,
                                    plan.as_ref(),
                                    name,
                                    seq,
                                    c.task,
                                    false,
                                    st,
                                    &tasks[c.task],
                                    &tx,
                                    stats,
                                    obs,
                                )?;
                            } else {
                                return Err(EngineError::TaskPanicked {
                                    stage: name.to_string(),
                                    task: c.task,
                                    attempts: st.attempts,
                                    message,
                                });
                            }
                        }
                    }
                }
            }
            // A completion for an already-done task is a speculation loser:
            // its result is discarded.
        }

        if let Some(spec) = speculation {
            if completed < n && !completed_durations.is_empty() {
                let arm_at = ((spec.quantile * n as f64).ceil() as usize).clamp(1, n);
                if completed >= arm_at {
                    let mut sorted = completed_durations.clone();
                    sorted.sort_unstable();
                    let median = sorted[sorted.len() / 2];
                    let threshold = spec
                        .min_straggler
                        .max(median.mul_f64(spec.multiplier.max(0.0)));
                    for task in 0..n {
                        let st = &mut states[task];
                        if !st.done
                            && st.in_flight > 0
                            && st.speculative_launches == 0
                            && st.last_submit.elapsed() >= threshold
                        {
                            submit_attempt(
                                pool,
                                plan.as_ref(),
                                name,
                                seq,
                                task,
                                true,
                                st,
                                &tasks[task],
                                &tx,
                                stats,
                                obs,
                            )?;
                        }
                    }
                }
            }
        }
    }

    Ok(slots
        .into_iter()
        .map(|s| s.expect("all tasks accounted for"))
        .collect())
}

impl Engine {
    /// Run a named stage under the engine's configured retry policy and
    /// speculation settings, with any installed [`FaultPlan`] applied.
    ///
    /// This is what every `Dataset` operation lowers to. Unlike
    /// [`Engine::run_job`] the task closures are `Fn` (re-invocable), which
    /// is what makes recovery possible at all.
    pub fn run_stage<T, F>(&self, name: &str, tasks: Vec<F>) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        let (results, _) =
            self.run_stage_with(name, tasks, self.config().retry, self.config().speculation)?;
        Ok(results)
    }

    /// [`Engine::run_stage`] with an explicit policy and speculation
    /// override, returning the job's [`FaultStats`] alongside the results.
    ///
    /// The job (succeeded or failed, with its fault counters) is recorded in
    /// the metrics registry either way.
    pub fn run_stage_with<T, F>(
        &self,
        name: &str,
        tasks: Vec<F>,
        policy: RetryPolicy,
        speculation: Option<SpeculationConfig>,
    ) -> Result<(Vec<T>, FaultStats)>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        // Defense in depth: constructors already enforce this, but a policy
        // built by deserialization or a same-crate literal must not be able
        // to turn "run this job" into an unwinding driver.
        if policy.max_attempts() == 0 {
            return Err(EngineError::InvalidArgument(
                "retry policy needs at least one attempt".to_string(),
            ));
        }
        let seq = self.next_stage_seq();
        let obs = self.obs();
        // Driver-side stage span at `Spans`; per-attempt task spans (and
        // fault marks) only at `Full`, since those record from executor
        // threads on the hot path.
        let stage_obs = obs
            .enabled_at(TraceLevel::Spans)
            .then(|| (obs.intern(name), obs.now_ns()));
        let task_obs = obs.enabled_at(TraceLevel::Full).then(|| ObsCtx {
            rec: Arc::clone(obs),
            name: stage_obs.expect("Full implies Spans").0,
            seq,
        });
        let start = Instant::now();
        let mut stats = FaultStats::default();
        let outcome = execute_stage(
            self,
            name,
            seq,
            tasks,
            policy,
            speculation,
            &mut stats,
            task_obs.as_ref(),
        );
        let wall = start.elapsed();
        if let Some((name_id, start_ns)) = stage_obs {
            let mut meta = SpanMeta::for_seq(seq);
            meta.failed = outcome.is_err();
            obs.record_span_ending_now(SpanKind::Stage, name_id, start_ns, meta);
        }
        match outcome {
            Ok(pairs) => {
                let task_metrics = pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (_, d))| TaskMetrics {
                        index: i,
                        duration: *d,
                    })
                    .collect();
                self.metrics().record_job(JobMetrics {
                    name: name.to_string(),
                    tasks: task_metrics,
                    wall,
                    succeeded: true,
                    variant: StageVariant::Immutable,
                    faults: stats,
                });
                Ok((pairs.into_iter().map(|(v, _)| v).collect(), stats))
            }
            Err(e) => {
                self.metrics().record_job(JobMetrics {
                    name: name.to_string(),
                    tasks: Vec::with_capacity(0),
                    wall,
                    succeeded: false,
                    variant: StageVariant::Immutable,
                    faults: stats,
                });
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::EngineConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn engine_with_retry(attempts: usize) -> Engine {
        Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_retry(RetryPolicy::clamped(attempts)),
        )
    }

    #[test]
    fn injected_panic_is_retried_transparently() {
        let e = engine_with_retry(3);
        e.set_fault_plan(FaultPlan::new().panic_at("square", 1, 0));
        let tasks: Vec<_> = (0..4usize).map(|i| move || i * i).collect();
        let out = e.run_stage("square", tasks).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9]);
        let job = e.metrics().jobs().pop().unwrap();
        assert!(job.succeeded);
        assert_eq!(job.faults.injected_panics, 1);
        assert_eq!(job.faults.retries, 1);
        assert_eq!(job.tasks.len(), 4);
    }

    #[test]
    fn poisoned_result_runs_body_but_discards_value() {
        let e = engine_with_retry(2);
        e.set_fault_plan(FaultPlan::new().poison_at("work", 0, 0));
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let out = e
            .run_stage(
                "work",
                vec![move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    7u32
                }],
            )
            .unwrap();
        assert_eq!(out, vec![7]);
        // Attempt 0 ran and was poisoned; attempt 1 ran clean.
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let job = e.metrics().jobs().pop().unwrap();
        assert_eq!(job.faults.injected_poisons, 1);
        assert_eq!(job.faults.retries, 1);
    }

    #[test]
    fn exhausted_retries_surface_stage_and_attempts() {
        let e = engine_with_retry(2);
        e.set_fault_plan(
            FaultPlan::new()
                .panic_at("doomed", 0, 0)
                .panic_at("doomed", 0, 1),
        );
        let err = e.run_stage("doomed", vec![|| 1u8]).unwrap_err();
        match err {
            EngineError::TaskPanicked {
                stage,
                task,
                attempts,
                message,
            } => {
                assert_eq!(stage, "doomed");
                assert_eq!(task, 0);
                assert_eq!(attempts, 2);
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let job = e.metrics().jobs().pop().unwrap();
        assert!(!job.succeeded);
        assert_eq!(job.faults.injected_panics, 2);
        assert_eq!(job.faults.retries, 1);
    }

    #[test]
    fn straggler_is_speculated_and_duplicate_wins() {
        let e = Engine::new(
            EngineConfig::default()
                .with_threads(4)
                .with_retry(RetryPolicy::clamped(2))
                .with_speculation(SpeculationConfig {
                    quantile: 0.75,
                    multiplier: 1.5,
                    min_straggler: Duration::from_millis(5),
                }),
        );
        // Task 3's first attempt sleeps 300ms; its speculative duplicate
        // (attempt 1) is clean and finishes immediately.
        e.set_fault_plan(FaultPlan::new().delay_at("spec", 3, 0, Duration::from_millis(300)));
        let start = Instant::now();
        let tasks: Vec<_> = (0..4usize).map(|i| move || i + 10).collect();
        let (out, stats) = e
            .run_stage_with(
                "spec",
                tasks,
                RetryPolicy::clamped(2),
                e.config().speculation,
            )
            .unwrap();
        assert_eq!(out, vec![10, 11, 12, 13]);
        assert_eq!(stats.injected_delays, 1);
        assert_eq!(stats.speculative_launched, 1);
        assert_eq!(stats.speculative_wins, 1);
        // The duplicate rescued the stage from the 300ms injected sleep.
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "speculation did not shortcut the straggler ({:?})",
            start.elapsed()
        );
    }

    #[test]
    fn seeded_campaign_survives_with_retry_budget() {
        let e = engine_with_retry(2);
        // 40% panic rate on first attempts only: every task survives because
        // max_faulted_attempts (1) < max_attempts (2).
        e.set_fault_plan(FaultPlan::seeded(ChaosConfig::new(9).with_panic_rate(0.4)));
        for round in 0..4 {
            let tasks: Vec<_> = (0..8usize).map(move |i| move || i * round).collect();
            let out = e.run_stage("campaign", tasks).unwrap();
            assert_eq!(out, (0..8).map(|i| i * round).collect::<Vec<_>>());
        }
        let totals = e.metrics().fault_totals();
        assert!(totals.injected_panics > 0, "campaign never fired");
        assert_eq!(totals.retries, totals.injected_panics);
        // Clearing the plan silences the campaign.
        e.clear_fault_plan();
        let before = e.metrics().fault_totals();
        e.run_stage("quiet", (0..8usize).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(e.metrics().fault_totals(), before);
    }

    #[test]
    fn empty_stage_is_ok() {
        let e = engine_with_retry(1);
        let out: Vec<u8> = e.run_stage("empty", Vec::<fn() -> u8>::new()).unwrap();
        assert!(out.is_empty());
    }
}
