//! Broadcast variables.
//!
//! In Spark, a broadcast variable ships one read-only copy of a value to
//! every executor instead of one copy per task. In-process the analogue is
//! an [`std::sync::Arc`]: tasks clone the handle (a refcount bump), never
//! the payload. SBGT broadcasts pool masks and per-pool likelihood tables
//! this way — the table has only `pool_size + 1` entries regardless of the
//! `2^N` lattice size, which is one of the framework's key constant-factor
//! wins.

use std::sync::Arc;

/// A read-only value shared with every task of a job.
pub struct Broadcast<T: ?Sized> {
    inner: Arc<T>,
}

impl<T> Broadcast<T> {
    /// Wrap a value for broadcast.
    pub fn new(value: T) -> Self {
        Broadcast {
            inner: Arc::new(value),
        }
    }
}

impl<T: ?Sized> Broadcast<T> {
    /// Access the broadcast value.
    pub fn value(&self) -> &T {
        &self.inner
    }

    /// Number of live handles (diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl<T: ?Sized> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Broadcast<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Broadcast").field(&&*self.inner).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_payload() {
        let b = Broadcast::new(vec![1.0f64; 1000]);
        let c = b.clone();
        assert!(std::ptr::eq(b.value().as_ptr(), c.value().as_ptr()));
        assert_eq!(b.handle_count(), 2);
    }

    #[test]
    fn deref_reads_value() {
        let b = Broadcast::new(42u32);
        assert_eq!(*b, 42);
    }

    #[test]
    fn usable_across_threads() {
        let b = Broadcast::new(vec![1u64, 2, 3]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || b.value().iter().sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
    }
}
