//! Error types for engine operations.

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors surfaced by engine jobs and dataset operations.
#[derive(Debug)]
pub enum EngineError {
    /// A task closure panicked on an executor thread (for retried stages:
    /// panicked on **every** allowed attempt). The panic payload is
    /// rendered to a string when it is a `&str`/`String`, otherwise a
    /// placeholder is used.
    TaskPanicked {
        /// Stage name the task belonged to (empty for raw pool batches,
        /// which have no stage context).
        stage: String,
        /// Index of the task within its job.
        task: usize,
        /// Attempts consumed before giving up (1 = no retry).
        attempts: usize,
        /// Rendered panic message of the last failed attempt.
        message: String,
    },
    /// The executor pool shut down while a job was in flight.
    PoolShutDown,
    /// Two datasets were combined with incompatible partitioning.
    PartitionMismatch {
        /// Partition count of the left operand.
        left: usize,
        /// Partition count of the right operand.
        right: usize,
    },
    /// An operation required a non-empty dataset but the dataset was empty.
    EmptyDataset,
    /// A caller-supplied parameter was invalid (e.g. zero partitions).
    InvalidArgument(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::TaskPanicked {
                stage,
                task,
                attempts,
                message,
            } => {
                if stage.is_empty() {
                    write!(
                        f,
                        "task {task} panicked after {attempts} attempt(s): {message}"
                    )
                } else {
                    write!(
                        f,
                        "stage '{stage}': task {task} panicked after {attempts} attempt(s): {message}"
                    )
                }
            }
            EngineError::PoolShutDown => write!(f, "executor pool shut down"),
            EngineError::PartitionMismatch { left, right } => write!(
                f,
                "partition mismatch: left has {left} partitions, right has {right}"
            ),
            EngineError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            EngineError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Render a panic payload into a readable message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = EngineError::TaskPanicked {
            stage: String::new(),
            task: 3,
            attempts: 1,
            message: "x".into(),
        };
        assert_eq!(e.to_string(), "task 3 panicked after 1 attempt(s): x");
        let e = EngineError::TaskPanicked {
            stage: "update".into(),
            task: 3,
            attempts: 4,
            message: "x".into(),
        };
        assert_eq!(
            e.to_string(),
            "stage 'update': task 3 panicked after 4 attempt(s): x"
        );
        assert_eq!(
            EngineError::PartitionMismatch { left: 2, right: 4 }.to_string(),
            "partition mismatch: left has 2 partitions, right has 4"
        );
        assert_eq!(
            EngineError::PoolShutDown.to_string(),
            "executor pool shut down"
        );
        assert_eq!(
            EngineError::EmptyDataset.to_string(),
            "operation requires a non-empty dataset"
        );
        assert_eq!(
            EngineError::InvalidArgument("bad".into()).to_string(),
            "invalid argument: bad"
        );
    }

    #[test]
    fn panic_message_variants() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(boxed.as_ref()), "static");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(17u8);
        assert_eq!(panic_message(boxed.as_ref()), "<non-string panic payload>");
    }
}
