//! Deterministic fault injection — the engine's chaos layer.
//!
//! Long surveillance runs are exactly the workloads where mid-run loss is
//! costliest, so the recovery machinery ([`crate::RetryPolicy`], COW-on-retry
//! in-place stages, speculative straggler re-execution) must be provable.
//! This module supplies the adversary: a [`FaultPlan`] schedules task
//! panics, injected delays (stragglers), and poisoned partition results at
//! exact `(stage, task, attempt)` coordinates, or draws them from a seeded
//! [`ChaosConfig`] so whole fault campaigns replay bit-for-bit.
//!
//! # Determinism
//!
//! A fault fires purely as a function of `(plan, stage name, stage
//! sequence number, task index, attempt ordinal)`. The stage sequence
//! number is the engine's count of launched stages, and attempt ordinals
//! are assigned per task in submission order, so a single-driver program
//! replays the same faults on every run with the same plan — executor
//! scheduling cannot perturb them. Injected faults never change *values*
//! either: retried and speculative attempts re-run the task closure against
//! pristine input (see [`crate::Dataset::try_map_partitions_in_place`]),
//! so a recovered job is bit-for-bit identical to a fault-free one.
//!
//! A random campaign from [`ChaosConfig`] only injects into attempt
//! ordinals below [`ChaosConfig::max_faulted_attempts`]; keeping that below
//! the retry policy's attempt budget guarantees every job survives.

use std::hash::Hasher as _;
use std::time::Duration;

use crate::partitioner::FxHasher;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The task panics instead of running its body (an executor dying
    /// mid-task; any partial work of the attempt is discarded).
    Panic,
    /// The task sleeps for the given duration before running its body — a
    /// straggler, the trigger for speculative re-execution.
    Delay(Duration),
    /// The task body runs to completion but its result is discarded and
    /// the attempt is counted as failed — a corrupted partition result
    /// caught by verification.
    Poison,
}

/// Seeded random fault campaign: per-coordinate rates, all decided by
/// hashing `(seed, stage, stage-seq, task, attempt)` — no RNG state, fully
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the per-coordinate hash.
    pub seed: u64,
    /// Probability an attempt panics.
    pub panic_rate: f64,
    /// Probability an attempt is delayed by [`Self::delay`].
    pub delay_rate: f64,
    /// Probability an attempt's result is poisoned.
    pub poison_rate: f64,
    /// Injected straggler delay.
    pub delay: Duration,
    /// Faults are only injected into attempt ordinals strictly below this
    /// (default 1: only first attempts). Keeping it below the retry
    /// policy's `max_attempts` makes every job survivable by construction.
    pub max_faulted_attempts: usize,
}

impl ChaosConfig {
    /// A quiet campaign with the given seed (all rates zero).
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_rate: 0.0,
            delay_rate: 0.0,
            poison_rate: 0.0,
            delay: Duration::from_millis(5),
            max_faulted_attempts: 1,
        }
    }

    /// Set the panic rate.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Set the straggler rate and injected delay.
    pub fn with_delay_rate(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate;
        self.delay = delay;
        self
    }

    /// Set the poisoned-result rate.
    pub fn with_poison_rate(mut self, rate: f64) -> Self {
        self.poison_rate = rate;
        self
    }

    fn fault_for(&self, stage: &str, seq: u64, task: usize, attempt: usize) -> Option<Fault> {
        if attempt >= self.max_faulted_attempts {
            return None;
        }
        let mut h = FxHasher::default();
        h.write_u64(self.seed);
        h.write(stage.as_bytes());
        h.write_u64(seq);
        h.write_usize(task);
        h.write_usize(attempt);
        // FxHasher's last step is one multiply, so adjacent attempt
        // ordinals leave final states exactly ±K apart and their [0, 1)
        // draws offset by a constant ~0.319 — a retry of a faulted attempt
        // could then never fault itself whenever the combined rate is
        // below that offset. Avalanche (splitmix64 finalizer) so every
        // coordinate draws independently.
        let mut x = h.finish();
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Top 53 bits -> uniform in [0, 1).
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.panic_rate {
            Some(Fault::Panic)
        } else if u < self.panic_rate + self.delay_rate {
            Some(Fault::Delay(self.delay))
        } else if u < self.panic_rate + self.delay_rate + self.poison_rate {
            Some(Fault::Poison)
        } else {
            None
        }
    }
}

/// A scheduled fault pinned to exact coordinates. Matches every occurrence
/// of the named stage (the stage sequence number is not part of the key),
/// so a plan written against stage names is stable under code that runs
/// the same stage many times.
#[derive(Debug, Clone)]
struct ScheduledFault {
    stage: String,
    task: usize,
    attempt: usize,
    fault: Fault,
}

/// A deterministic fault schedule for an [`crate::Engine`].
///
/// Combines exact scheduled faults (first match wins) with an optional
/// seeded random campaign. Install with [`crate::Engine::set_fault_plan`];
/// installing any plan activates the engine's fault-tolerant stage path.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    scheduled: Vec<ScheduledFault>,
    chaos: Option<ChaosConfig>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan driven entirely by a seeded random campaign.
    pub fn seeded(chaos: ChaosConfig) -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            chaos: Some(chaos),
        }
    }

    /// Schedule a panic at `(stage, task, attempt)`.
    pub fn panic_at(mut self, stage: &str, task: usize, attempt: usize) -> Self {
        self.scheduled.push(ScheduledFault {
            stage: stage.to_string(),
            task,
            attempt,
            fault: Fault::Panic,
        });
        self
    }

    /// Schedule an injected delay (straggler) at `(stage, task, attempt)`.
    pub fn delay_at(mut self, stage: &str, task: usize, attempt: usize, delay: Duration) -> Self {
        self.scheduled.push(ScheduledFault {
            stage: stage.to_string(),
            task,
            attempt,
            fault: Fault::Delay(delay),
        });
        self
    }

    /// Schedule a poisoned result at `(stage, task, attempt)`.
    pub fn poison_at(mut self, stage: &str, task: usize, attempt: usize) -> Self {
        self.scheduled.push(ScheduledFault {
            stage: stage.to_string(),
            task,
            attempt,
            fault: Fault::Poison,
        });
        self
    }

    /// Whether the plan can ever fire.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.chaos.is_none()
    }

    /// The fault (if any) to inject at these coordinates. `seq` is the
    /// engine's stage sequence number, used only by the random campaign so
    /// repeated stages draw fresh faults.
    pub fn fault_for(&self, stage: &str, seq: u64, task: usize, attempt: usize) -> Option<Fault> {
        for s in &self.scheduled {
            if s.task == task && s.attempt == attempt && s.stage == stage {
                return Some(s.fault);
            }
        }
        self.chaos
            .as_ref()
            .and_then(|c| c.fault_for(stage, seq, task, attempt))
    }
}

/// Bounded speculative re-execution of stragglers (Spark's
/// `spark.speculation`).
///
/// Once at least `quantile` of a stage's tasks have finished, any task
/// still running `multiplier ×` the median completed duration after its
/// submission (with `min_straggler` as a floor) is duplicated once; the
/// first result wins and the loser is discarded. Safe for every stage
/// variant: fault-tolerant stages give each attempt a private copy of its
/// input, so a duplicate never races its original on shared data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Fraction of tasks that must complete before speculation arms.
    pub quantile: f64,
    /// Straggler threshold as a multiple of the median completed duration.
    pub multiplier: f64,
    /// Floor on the straggler threshold (keeps short stages quiet).
    pub min_straggler: Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        // Spark defaults: quantile 0.75, multiplier 1.5.
        SpeculationConfig {
            quantile: 0.75,
            multiplier: 1.5,
            min_straggler: Duration::from_millis(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_faults_match_exact_coordinates() {
        let plan = FaultPlan::new()
            .panic_at("update", 2, 0)
            .delay_at("update", 1, 1, Duration::from_millis(7))
            .poison_at("select", 0, 0);
        assert_eq!(plan.fault_for("update", 0, 2, 0), Some(Fault::Panic));
        // Stage sequence number is irrelevant for scheduled faults.
        assert_eq!(plan.fault_for("update", 99, 2, 0), Some(Fault::Panic));
        assert_eq!(
            plan.fault_for("update", 0, 1, 1),
            Some(Fault::Delay(Duration::from_millis(7)))
        );
        assert_eq!(plan.fault_for("select", 3, 0, 0), Some(Fault::Poison));
        assert_eq!(plan.fault_for("update", 0, 2, 1), None);
        assert_eq!(plan.fault_for("other", 0, 2, 0), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_campaign_is_deterministic() {
        let cfg = ChaosConfig::new(42)
            .with_panic_rate(0.3)
            .with_delay_rate(0.2, Duration::from_millis(3))
            .with_poison_rate(0.2);
        let plan = FaultPlan::seeded(cfg);
        let draw = |seq, task, attempt| plan.fault_for("stage", seq, task, attempt);
        // Same coordinates, same fault — across plan instances too.
        let plan2 = FaultPlan::seeded(cfg);
        let mut fired = 0;
        for seq in 0..20u64 {
            for task in 0..8 {
                let a = draw(seq, task, 0);
                assert_eq!(a, plan2.fault_for("stage", seq, task, 0));
                if a.is_some() {
                    fired += 1;
                }
            }
        }
        // 70% combined rate over 160 coordinates: statistically certain to
        // fire many times (the hash is fixed, so this is not flaky).
        assert!(fired > 40, "only {fired} faults fired");
        // Different seeds disagree somewhere.
        let other = FaultPlan::seeded(ChaosConfig::new(43).with_panic_rate(0.3));
        let differs =
            (0..160).any(|i| plan.fault_for("stage", i, 0, 0) != other.fault_for("stage", i, 0, 0));
        assert!(differs);
    }

    #[test]
    fn campaign_respects_max_faulted_attempts() {
        let cfg = ChaosConfig::new(7).with_panic_rate(1.0);
        let plan = FaultPlan::seeded(cfg);
        assert_eq!(plan.fault_for("s", 0, 0, 0), Some(Fault::Panic));
        // Attempt 1 is beyond max_faulted_attempts (1): always clean, so a
        // 2-attempt retry policy survives a 100% panic rate.
        assert_eq!(plan.fault_for("s", 0, 0, 1), None);
    }

    #[test]
    fn distinct_stage_occurrences_draw_fresh_faults() {
        let cfg = ChaosConfig::new(11).with_panic_rate(0.5);
        let plan = FaultPlan::seeded(cfg);
        let a: Vec<_> = (0..64).map(|seq| plan.fault_for("s", seq, 0, 0)).collect();
        assert!(a.iter().any(|f| f.is_some()));
        assert!(a.iter().any(|f| f.is_none()));
    }
}
