//! Shuffle operations for keyed datasets.
//!
//! A shuffle is the all-to-all exchange between two stages: every input
//! partition buckets its records by target partition (the "map side"), then
//! target partitions are assembled from the buckets (the "reduce side").
//! SBGT shuffles subjects into pooling batches and groups per-pool records;
//! the lattice kernels themselves are shuffle-free by construction (range
//! sharding keeps state indices contiguous).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::partitioner::{HashPartitioner, Partitioner};
use crate::Engine;

/// Extension methods available on datasets of `(K, V)` pairs.
impl<K, V> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Hash-shuffle into `parts` partitions so all records with equal keys
    /// land in the same partition.
    pub fn shuffle_by_key(&self, engine: &Engine, parts: usize) -> Dataset<(K, V)> {
        let partitioner = Arc::new(HashPartitioner::new(parts));
        self.shuffle_with(engine, partitioner)
    }

    /// Shuffle with an arbitrary partitioner.
    pub fn shuffle_with<P>(&self, engine: &Engine, partitioner: Arc<P>) -> Dataset<(K, V)>
    where
        P: Partitioner<K> + 'static,
    {
        let parts = partitioner.num_partitions();
        // Map side: each input partition produces `parts` buckets.
        let p2 = Arc::clone(&partitioner);
        let bucketed: Dataset<Vec<(K, V)>> = self.map_partitions(engine, move |_, records| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
            for (k, v) in records {
                buckets[p2.partition(k)].push((k.clone(), v.clone()));
            }
            buckets
        });
        // Reduce side: concatenate bucket `t` from every map output.
        type BucketHandles<K, V> = Vec<Arc<Vec<Vec<(K, V)>>>>;
        let handles: BucketHandles<K, V> = bucketed.partition_handles().to_vec();
        let tasks: Vec<_> = (0..parts)
            .map(|target| {
                let handles = handles.clone();
                move || {
                    let mut out = Vec::new();
                    // Each map partition produced exactly `parts` records,
                    // record `t` being the bucket destined for partition `t`.
                    for h in &handles {
                        out.extend(h[target].iter().cloned());
                    }
                    out
                }
            })
            .collect();
        let parts_vec = engine
            .run_job("shuffle_reduce", tasks)
            .expect("shuffle reduce failed");
        Dataset::from_partitions(parts_vec)
    }

    /// Group values by key: shuffle then assemble `(K, Vec<V>)` per key.
    /// Key order within the output is unspecified; value order within a key
    /// follows partition order of the input.
    pub fn group_by_key(&self, engine: &Engine, parts: usize) -> Dataset<(K, Vec<V>)> {
        let shuffled = self.shuffle_by_key(engine, parts);
        shuffled.map_partitions(engine, |_, records| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in records {
                groups.entry(k.clone()).or_default().push(v.clone());
            }
            groups.into_iter().collect()
        })
    }

    /// Reduce values per key with a commutative, associative operation.
    pub fn reduce_by_key<F>(&self, engine: &Engine, parts: usize, f: F) -> Dataset<(K, V)>
    where
        F: Fn(&V, &V) -> V + Send + Sync + 'static,
    {
        // Map-side combine first (the optimization Spark calls a combiner):
        // shrink each partition to one record per key before shuffling.
        let f = Arc::new(f);
        let f1 = Arc::clone(&f);
        let combined: Dataset<(K, V)> = self.map_partitions(engine, move |_, records| {
            let mut acc: HashMap<K, V> = HashMap::new();
            for (k, v) in records {
                match acc.get_mut(k) {
                    Some(existing) => *existing = f1(existing, v),
                    None => {
                        acc.insert(k.clone(), v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        });
        let shuffled = combined.shuffle_by_key(engine, parts);
        let f2 = Arc::clone(&f);
        shuffled.map_partitions(engine, move |_, records| {
            let mut acc: HashMap<K, V> = HashMap::new();
            for (k, v) in records {
                match acc.get_mut(k) {
                    Some(existing) => *existing = f2(existing, v),
                    None => {
                        acc.insert(k.clone(), v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    #[test]
    fn shuffle_colocates_keys() {
        let e = engine();
        let data: Vec<(u64, u64)> = (0..200).map(|i| (i % 10, i)).collect();
        let ds = Dataset::from_vec(data, 8);
        let shuffled = ds.shuffle_by_key(&e, 4);
        assert_eq!(shuffled.len(), 200);
        // Every key must appear in exactly one partition.
        for key in 0u64..10 {
            let holders = (0..shuffled.num_partitions())
                .filter(|&p| shuffled.partition(p).iter().any(|(k, _)| *k == key))
                .count();
            assert_eq!(holders, 1, "key {key} split across partitions");
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let e = engine();
        let data: Vec<(u32, u32)> = (0..97).map(|i| (i * 7 % 13, i)).collect();
        let ds = Dataset::from_vec(data.clone(), 5);
        let mut before: Vec<_> = data;
        let mut after = ds.shuffle_by_key(&e, 3).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let e = engine();
        let data: Vec<(u8, u32)> = (0..60).map(|i| ((i % 3) as u8, i)).collect();
        let ds = Dataset::from_vec(data, 6);
        let grouped = ds.group_by_key(&e, 2);
        let mut groups = grouped.collect();
        groups.sort_by_key(|(k, _)| *k);
        assert_eq!(groups.len(), 3);
        for (k, vs) in groups {
            assert_eq!(vs.len(), 20, "key {k}");
            for v in vs {
                assert_eq!(v % 3, u32::from(k));
            }
        }
    }

    #[test]
    fn reduce_by_key_sums() {
        let e = engine();
        let data: Vec<(u8, u64)> = (1..=100).map(|i| ((i % 4) as u8, i)).collect();
        let ds = Dataset::from_vec(data, 7);
        let mut reduced = ds.reduce_by_key(&e, 3, |a, b| a + b).collect();
        reduced.sort_by_key(|(k, _)| *k);
        let expected: Vec<(u8, u64)> = (0..4u8)
            .map(|k| (k, (1..=100u64).filter(|i| (i % 4) as u8 == k).sum()))
            .collect();
        assert_eq!(reduced, expected);
    }

    #[test]
    fn shuffle_empty_dataset() {
        let e = engine();
        let ds: Dataset<(u64, u64)> = Dataset::from_vec(vec![], 4);
        let s = ds.shuffle_by_key(&e, 4);
        assert!(s.is_empty());
        assert_eq!(s.num_partitions(), 4);
    }
}
