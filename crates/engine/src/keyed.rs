//! Additional keyed-dataset operators: distributed sort and inner join.
//!
//! These round out the Spark-substitute surface used by the surveillance
//! pipelines: sorting cohort results for reporting, and joining per-cohort
//! metrics against cohort metadata. Both follow the classic two-stage
//! shapes — sample-based range partitioning for the sort, hash
//! co-partitioning for the join.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::partitioner::HashPartitioner;
use crate::Engine;

impl<K, V> Dataset<(K, V)>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Globally sort by key into `parts` partitions: partition `i` holds
    /// keys ≤ partition `i+1`'s, and each partition is internally sorted.
    ///
    /// Range bounds come from sampling up to `sample_per_part` keys per
    /// input partition (Spark's `RangePartitioner` approach); skewed inputs
    /// degrade balance but never correctness.
    pub fn sort_by_key(
        &self,
        engine: &Engine,
        parts: usize,
        sample_per_part: usize,
    ) -> Dataset<(K, V)> {
        let parts = parts.max(1);
        if self.is_empty() {
            return Dataset::from_partitions((0..parts).map(|_| Vec::new()).collect());
        }
        // Driver-side sampling: take evenly spaced keys from each partition.
        let mut sample: Vec<K> = Vec::new();
        for p in 0..self.num_partitions() {
            let part = self.partition(p);
            if part.is_empty() {
                continue;
            }
            let step = (part.len() / sample_per_part.max(1)).max(1);
            sample.extend(part.iter().step_by(step).map(|(k, _)| k.clone()));
        }
        sample.sort();
        let bounds: Vec<K> = (1..parts)
            .filter_map(|i| {
                let idx = i * sample.len() / parts;
                sample.get(idx).cloned()
            })
            .collect();
        let bounds = Arc::new(bounds);

        // Map side: bucket records by range.
        let b2 = Arc::clone(&bounds);
        let bucketed: Dataset<Vec<(K, V)>> = self.map_partitions(engine, move |_, records| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
            for (k, v) in records {
                let target = b2.partition_point(|b| b <= k);
                buckets[target].push((k.clone(), v.clone()));
            }
            buckets
        });
        // Reduce side: concatenate and sort each range.
        let handles = bucketed.partition_handles().to_vec();
        let tasks: Vec<_> = (0..parts)
            .map(|target| {
                let handles = handles.clone();
                move || {
                    let mut out: Vec<(K, V)> = Vec::new();
                    for h in &handles {
                        out.extend(h[target].iter().cloned());
                    }
                    out.sort_by(|a, b| a.0.cmp(&b.0));
                    out
                }
            })
            .collect();
        let parts_vec = engine.run_job("sort_reduce", tasks).expect("sort failed");
        Dataset::from_partitions(parts_vec)
    }

    /// Inner hash join: for every key present in both datasets, emit one
    /// record per value pair. Output partition count is `parts`.
    pub fn join<W>(
        &self,
        engine: &Engine,
        other: &Dataset<(K, W)>,
        parts: usize,
    ) -> Dataset<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let partitioner = Arc::new(HashPartitioner::new(parts));
        let left = self.shuffle_with(engine, Arc::clone(&partitioner));
        let right = other.shuffle_with(engine, partitioner);
        // Co-partitioned: join each partition pair locally.
        let left_handles = left.partition_handles().to_vec();
        let right_handles = right.partition_handles().to_vec();
        let tasks: Vec<_> = (0..left_handles.len())
            .map(|p| {
                let lh = Arc::clone(&left_handles[p]);
                let rh = Arc::clone(&right_handles[p]);
                move || {
                    let mut table: HashMap<K, Vec<V>> = HashMap::new();
                    for (k, v) in lh.iter() {
                        table.entry(k.clone()).or_default().push(v.clone());
                    }
                    let mut out = Vec::new();
                    for (k, w) in rh.iter() {
                        if let Some(vs) = table.get(k) {
                            for v in vs {
                                out.push((k.clone(), (v.clone(), w.clone())));
                            }
                        }
                    }
                    out
                }
            })
            .collect();
        let parts_vec = engine.run_job("join", tasks).expect("join failed");
        Dataset::from_partitions(parts_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    #[test]
    fn sort_orders_globally() {
        let e = engine();
        let data: Vec<(i64, i64)> = (0..200).map(|i| ((i * 37) % 101, i)).collect();
        let ds = Dataset::from_vec(data.clone(), 7);
        let sorted = ds.sort_by_key(&e, 4, 8);
        assert_eq!(sorted.len(), 200);
        let keys: Vec<i64> = sorted.iter().map(|(k, _)| *k).collect();
        let mut expected: Vec<i64> = data.iter().map(|(k, _)| *k).collect();
        expected.sort();
        assert_eq!(keys, expected);
        // Partition boundaries respect the order.
        for p in 0..sorted.num_partitions() - 1 {
            if let (Some(last), Some(first)) =
                (sorted.partition(p).last(), sorted.partition(p + 1).first())
            {
                assert!(last.0 <= first.0);
            }
        }
    }

    #[test]
    fn sort_empty_and_single() {
        let e = engine();
        let empty: Dataset<(u32, u32)> = Dataset::from_vec(vec![], 3);
        assert!(empty.sort_by_key(&e, 3, 4).is_empty());
        let single = Dataset::from_vec(vec![(5u32, 1u32)], 2);
        assert_eq!(single.sort_by_key(&e, 3, 4).collect(), vec![(5, 1)]);
    }

    #[test]
    fn sort_with_heavy_skew_is_correct() {
        let e = engine();
        let data: Vec<(u8, u32)> = (0..100).map(|i| (7u8, i)).collect(); // one key
        let ds = Dataset::from_vec(data, 5);
        let sorted = ds.sort_by_key(&e, 4, 4);
        assert_eq!(sorted.len(), 100);
        assert!(sorted.iter().all(|(k, _)| *k == 7));
    }

    #[test]
    fn join_matches_nested_loop() {
        let e = engine();
        let left: Vec<(u32, &'static str)> = vec![(1, "a"), (2, "b"), (2, "b2"), (3, "c")];
        let right: Vec<(u32, i32)> = vec![(2, 20), (3, 30), (3, 31), (4, 40)];
        let l = Dataset::from_vec(left.clone(), 2);
        let r = Dataset::from_vec(right.clone(), 3);
        let mut joined = l.join(&e, &r, 4).collect();
        joined.sort();
        let mut expected = Vec::new();
        for (k, v) in &left {
            for (k2, w) in &right {
                if k == k2 {
                    expected.push((*k, (*v, *w)));
                }
            }
        }
        expected.sort();
        assert_eq!(joined, expected);
    }

    #[test]
    fn join_disjoint_keys_is_empty() {
        let e = engine();
        let l = Dataset::from_vec(vec![(1u32, 1u32)], 1);
        let r = Dataset::from_vec(vec![(2u32, 2u32)], 1);
        assert!(l.join(&e, &r, 2).is_empty());
    }
}
