//! Textual stage timeline — the terminal-friendly Spark UI.
//!
//! Renders a [`crate::MetricsRegistry`] snapshot as a per-job table plus an
//! ASCII bar per task, scaled to the slowest task. Useful when tuning
//! partition counts: a stage with one long bar and many short ones is
//! skewed; uniformly short bars with a long wall time means scheduling
//! overhead dominates.

use std::fmt::Write as _;
use std::time::Duration;

use crate::metrics::{JobMetrics, MetricsRegistry};
use crate::obs::SpanRecorder;

/// Render every recorded job as a compact text timeline.
pub fn render_timeline(registry: &MetricsRegistry) -> String {
    let jobs = registry.jobs();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} job(s), {} broadcast(s)",
        jobs.len(),
        registry.broadcast_count()
    );
    for (i, job) in jobs.iter().enumerate() {
        out.push_str(&render_job(i, job));
    }
    let service = registry.service_stats();
    if !service.is_quiet() {
        out.push_str(&render_service_summary(&service));
    }
    out
}

/// [`render_timeline`] plus the span recorder's one-line summary (`obs:`
/// segment) — what [`crate::Engine::render_timeline`] serves. The obs line
/// is empty when tracing is off or nothing was recorded, so untraced runs
/// render identically to [`render_timeline`].
pub fn render_timeline_with_obs(registry: &MetricsRegistry, recorder: &SpanRecorder) -> String {
    let mut out = render_timeline(registry);
    out.push_str(&recorder.summary_line());
    out
}

/// Render the service-level counters (queueing, batching, round latency) as
/// a two-line summary — the timeline's view above the stage table. Quiet
/// stats (no service traffic) render nothing; a third `plan:` line appears
/// only when the plan cache saw traffic, so cacheless runs render the
/// pinned two-line form.
pub fn render_service_summary(stats: &crate::metrics::ServiceStats) -> String {
    if stats.is_quiet() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service: {} submitted, {} shed, {} batch(es), {}/{} cohort(s) done, queue peak {}",
        stats.submitted,
        stats.shed,
        stats.batches,
        stats.cohorts_completed,
        stats.cohorts_opened,
        stats.queue_peak,
    );
    let p50 = stats
        .round_latency_percentile(0.50)
        .map(|d| format!("{d:?}"))
        .unwrap_or_else(|| "-".into());
    let p99 = stats
        .round_latency_percentile(0.99)
        .map(|d| format!("{d:?}"))
        .unwrap_or_else(|| "-".into());
    let _ = writeln!(
        out,
        "service: {} round(s) (p50 {p50}, p99 {p99}, {} recovered), {} checkpoint(s), {} restore(s)",
        stats.rounds, stats.recovered_rounds, stats.checkpoints, stats.restores,
    );
    let plan_total =
        stats.plan_hits + stats.plan_misses + stats.plan_extends + stats.plan_evictions;
    if plan_total > 0 {
        let looked_up = stats.plan_hits + stats.plan_misses;
        let rate = if looked_up > 0 {
            stats.plan_hits as f64 / looked_up as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "service: plan cache {} hit(s) / {} miss(es) ({rate:.0}% hit), {} extension(s), {} evicted",
            stats.plan_hits, stats.plan_misses, stats.plan_extends, stats.plan_evictions,
        );
    }
    // SLO burn-rate section: one line per tenant with an SLO-fed burn
    // window. Tenants without SLOs (and pre-SLO deployments) add nothing,
    // so the pinned two/three-line form above is preserved.
    for (tenant, lane) in stats.tenants() {
        if let Some(burn) = lane.burn_rate() {
            let (over, rounds) = lane.burn_window();
            let _ = writeln!(
                out,
                "slo: tenant {tenant} burn {burn:.2}x ({over}/{rounds} round(s) over target)",
            );
        }
    }
    out
}

/// Render one job: header line plus one bar per task (capped at 16 tasks;
/// more are summarized).
pub fn render_job(index: usize, job: &JobMetrics) -> String {
    let mut out = String::new();
    let status = if job.succeeded { "ok" } else { "FAILED" };
    // Quiet jobs (the common case) render without a chaos segment.
    let chaos = if job.faults.is_quiet() {
        String::new()
    } else {
        format!(
            " [chaos: {} injected, {} retried, spec {}/{}]",
            job.faults.injected_total(),
            job.faults.retries,
            job.faults.speculative_wins,
            job.faults.speculative_launched,
        )
    };
    let _ = writeln!(
        out,
        "[{index}] {name} — {tasks} task(s), wall {wall:?}, busy {busy:?}, skew {skew:.2} [{variant}] [{status}]{chaos}",
        name = job.name,
        tasks = job.tasks.len(),
        wall = job.wall,
        busy = job.total_task_time(),
        skew = job.skew(),
        variant = job.variant,
    );
    let max = job.max_task_time();
    const WIDTH: usize = 32;
    const SHOWN: usize = 16;
    for task in job.tasks.iter().take(SHOWN) {
        let bar_len = scaled_len(task.duration, max, WIDTH);
        let _ = writeln!(
            out,
            "    task {:>3} |{:<width$}| {:?}",
            task.index,
            "#".repeat(bar_len),
            task.duration,
            width = WIDTH
        );
    }
    if job.tasks.len() > SHOWN {
        let _ = writeln!(out, "    ... {} more task(s)", job.tasks.len() - SHOWN);
    }
    out
}

fn scaled_len(d: Duration, max: Duration, width: usize) -> usize {
    if max.is_zero() {
        return 0;
    }
    let frac = d.as_secs_f64() / max.as_secs_f64();
    ((frac * width as f64).round() as usize).min(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultStats, StageVariant, TaskMetrics};

    fn job(name: &str, ms: &[u64]) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            tasks: ms
                .iter()
                .enumerate()
                .map(|(index, &m)| TaskMetrics {
                    index,
                    duration: Duration::from_millis(m),
                })
                .collect(),
            wall: Duration::from_millis(ms.iter().copied().max().unwrap_or(0) + 1),
            succeeded: true,
            variant: StageVariant::default(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn renders_header_and_bars() {
        let j = job("update", &[10, 20, 40]);
        let text = render_job(0, &j);
        assert!(text.contains("[0] update — 3 task(s)"));
        assert!(text.contains("task   0"));
        assert!(text.contains("task   2"));
        // Longest task gets the full-width bar; half-length task gets half.
        let full = "#".repeat(32);
        let half = "#".repeat(16);
        assert!(text.contains(&full));
        assert!(text.contains(&half));
        assert!(text.contains("[ok]"));
    }

    #[test]
    fn variant_is_rendered() {
        let immutable = render_job(0, &job("update", &[4]));
        assert!(immutable.contains("[immutable]"));
        let mut j = job("update", &[4, 4]);
        j.variant = StageVariant::InPlace { unique: 2, cow: 0 };
        let in_place = render_job(1, &j);
        assert!(in_place.contains("[in-place 2u/0c]"));
        let mut k = job("lookahead:select", &[3, 3]);
        k.variant = StageVariant::Lookahead { branches: 4 };
        let lookahead = render_job(2, &k);
        assert!(lookahead.contains("[lookahead 4b]"));
        let mut s = job("fused-round:sparse", &[2]);
        s.variant = StageVariant::Sparse { support: 37 };
        let sparse = render_job(3, &s);
        assert!(sparse.contains("[sparse 37s]"));
    }

    /// Golden header line: exact format of a job with fault activity,
    /// including the chaos segment.
    #[test]
    fn chaos_segment_golden_header() {
        let mut j = job("update:in-place", &[10, 20]);
        j.wall = Duration::from_millis(21);
        j.faults = FaultStats {
            injected_panics: 1,
            injected_delays: 2,
            injected_poisons: 0,
            retries: 2,
            speculative_launched: 1,
            speculative_wins: 1,
        };
        let text = render_job(2, &j);
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "[2] update:in-place — 2 task(s), wall 21ms, busy 30ms, \
             skew 1.33 [immutable] [ok] [chaos: 3 injected, 2 retried, spec 1/1]"
        );
    }

    #[test]
    fn quiet_job_has_no_chaos_segment() {
        let text = render_job(0, &job("quiet", &[5]));
        assert!(!text.contains("chaos"));
    }

    #[test]
    fn failed_job_is_flagged() {
        let mut j = job("broken", &[]);
        j.succeeded = false;
        let text = render_job(3, &j);
        assert!(text.contains("[FAILED]"));
    }

    #[test]
    fn long_jobs_are_truncated() {
        let j = job("wide", &[5; 40]);
        let text = render_job(0, &j);
        assert!(text.contains("... 24 more task(s)"));
    }

    #[test]
    fn registry_rendering_counts_jobs() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("a", &[1, 2]));
        reg.record_job(job("b", &[3]));
        reg.record_broadcast();
        let text = render_timeline(&reg);
        assert!(text.starts_with("2 job(s), 1 broadcast(s)"));
        assert!(text.contains("[0] a"));
        assert!(text.contains("[1] b"));
    }

    /// Golden service summary: exact two-line format of a registry with
    /// service traffic, appended after the job table.
    #[test]
    fn service_summary_golden() {
        use crate::metrics::ServiceStats;
        let mut stats = ServiceStats::default();
        stats.observe_queue_depth(12);
        stats.submitted = 640;
        stats.shed = 3;
        stats.batches = 64;
        stats.cohorts_opened = 64;
        stats.cohorts_completed = 64;
        stats.recovered_rounds = 2;
        stats.checkpoints = 5;
        stats.restores = 5;
        for ms in [1u64, 2, 3, 4] {
            stats.record_round(Duration::from_millis(ms));
        }
        let text = render_service_summary(&stats);
        assert_eq!(
            text,
            "service: 640 submitted, 3 shed, 64 batch(es), 64/64 cohort(s) done, queue peak 12\n\
             service: 4 round(s) (p50 2.047ms, p99 4ms, 2 recovered), 5 checkpoint(s), 5 restore(s)\n"
        );
        // Plan-cache traffic appends exactly one more line; cacheless runs
        // keep the pinned two-line form above.
        stats.plan_hits = 30;
        stats.plan_misses = 10;
        stats.plan_extends = 9;
        stats.plan_evictions = 1;
        let text = render_service_summary(&stats);
        assert_eq!(
            text,
            "service: 640 submitted, 3 shed, 64 batch(es), 64/64 cohort(s) done, queue peak 12\n\
             service: 4 round(s) (p50 2.047ms, p99 4ms, 2 recovered), 5 checkpoint(s), 5 restore(s)\n\
             service: plan cache 30 hit(s) / 10 miss(es) (75% hit), 9 extension(s), 1 evicted\n"
        );
    }

    /// Golden `obs:` segment: a recorder with one recorded span appends
    /// exactly one summary line; an idle recorder appends nothing.
    #[test]
    fn obs_segment_golden() {
        use crate::obs::{ObsConfig, SpanKind, SpanMeta, SpanRecorder, TraceLevel};
        let reg = MetricsRegistry::new();
        reg.record_job(job("a", &[1]));

        let idle = SpanRecorder::new(ObsConfig::spans());
        let text = render_timeline_with_obs(&reg, &idle);
        assert!(!text.contains("obs:"), "idle recorder must add nothing");

        let rec = SpanRecorder::new(ObsConfig::spans());
        let name = rec.intern("update");
        let start = rec.now_ns();
        rec.record_span_ending_now(SpanKind::Stage, name, start, SpanMeta::default());
        let text = render_timeline_with_obs(&reg, &rec);
        let obs_line = text.lines().last().unwrap();
        assert_eq!(
            obs_line,
            "obs: level spans, 1 event(s) across 1 lane(s), 0 overwritten"
        );
        assert_eq!(rec.level(), TraceLevel::Spans);
    }

    /// Golden `slo:` section: a tenant with an SLO-fed burn window appends
    /// exactly one line; SLO-less tenants append nothing.
    #[test]
    fn slo_section_golden() {
        use crate::metrics::ServiceStats;
        let mut stats = ServiceStats::default();
        for ms in [1u64, 2, 3, 4] {
            stats.record_round(Duration::from_millis(ms));
        }
        // Tenant 3: SLO 10ms, 2 of 4 rounds over target -> burn 50x.
        let slo = Some(Duration::from_millis(10));
        stats.record_tenant_round(3, Duration::from_millis(50), slo);
        stats.record_tenant_round(3, Duration::from_millis(1), slo);
        stats.record_tenant_round(3, Duration::from_millis(50), slo);
        stats.record_tenant_round(3, Duration::from_millis(1), slo);
        // Tenant 5 has no SLO: no slo line.
        stats.record_tenant_round(5, Duration::from_millis(1), None);
        let text = render_service_summary(&stats);
        let slo_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("slo:")).collect();
        assert_eq!(
            slo_lines,
            ["slo: tenant 3 burn 50.00x (2/4 round(s) over target)"]
        );
    }

    #[test]
    fn quiet_service_stats_render_nothing() {
        use crate::metrics::ServiceStats;
        assert_eq!(render_service_summary(&ServiceStats::default()), "");
        // And the full timeline omits the section entirely.
        let reg = MetricsRegistry::new();
        reg.record_job(job("a", &[1]));
        assert!(!render_timeline(&reg).contains("service:"));
    }

    #[test]
    fn timeline_appends_service_section() {
        let reg = MetricsRegistry::new();
        reg.record_job(job("a", &[1]));
        reg.update_service(|s| {
            s.submitted = 8;
            s.record_round(Duration::from_millis(2));
        });
        let text = render_timeline(&reg);
        assert!(text.contains("[0] a"));
        assert!(text.contains("service: 8 submitted"));
    }

    #[test]
    fn zero_max_yields_empty_bars() {
        let j = job("instant", &[0, 0]);
        let text = render_job(0, &j);
        assert!(text.contains("|                                |"));
    }
}
