//! Partitioned datasets — the RDD analogue.
//!
//! A [`Dataset<T>`] is an immutable collection split into partitions, each
//! held behind an [`Arc`] so tasks can reference partition data without
//! copying it. Transformations (`map`, `filter`, `map_partitions`, ...)
//! submit one task per partition to the engine's executor pool and produce a
//! new dataset; actions (`reduce`, `aggregate`, `collect`, `count`) return a
//! value to the driver.
//!
//! Unlike Spark, execution is eager: each transformation is one job. SBGT's
//! dataflow is a short pipeline of wide barriers over the lattice shards, so
//! lazy DAG fusion would buy nothing here — the important Spark semantics
//! (partition-parallelism, broadcast, shuffle, barriers) are preserved.
//!
//! # Panics
//!
//! If a user closure panics inside a task, the convenience methods on
//! `Dataset` propagate the panic on the driver thread (like Spark rethrowing
//! an executor exception). Use the `try_*` variants to receive an
//! [`EngineError`] instead.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::partitioner::partition_ranges;
use crate::Engine;

/// An immutable, partitioned, in-memory collection.
pub struct Dataset<T> {
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            partitions: self.partitions.clone(),
        }
    }
}

impl<T> Dataset<T> {
    /// Build a dataset from existing partition vectors.
    pub fn from_partitions(parts: Vec<Vec<T>>) -> Self {
        Dataset {
            partitions: parts.into_iter().map(Arc::new).collect(),
        }
    }

    /// Split `data` into `parts` balanced contiguous partitions.
    pub fn from_vec(mut data: Vec<T>, parts: usize) -> Self {
        let ranges = partition_ranges(data.len(), parts);
        // Split from the back so each split_off is O(moved elements).
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
        for range in ranges.iter().rev() {
            partitions.push(data.split_off(range.start));
        }
        partitions.reverse();
        Dataset {
            partitions: partitions.into_iter().map(Arc::new).collect(),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(|p| p.is_empty())
    }

    /// Borrow one partition.
    pub fn partition(&self, i: usize) -> &[T] {
        &self.partitions[i]
    }

    /// Shared handles to all partitions.
    pub fn partition_handles(&self) -> &[Arc<Vec<T>>] {
        &self.partitions
    }

    /// Consume the dataset, yielding its partition handles. Handles that are
    /// uniquely owned can then be moved out with [`Arc::try_unwrap`] —
    /// the zero-copy way to take a stage's output to the driver.
    pub fn into_partitions(self) -> Vec<Arc<Vec<T>>> {
        self.partitions
    }

    /// Iterate over records in partition order (driver-side, sequential).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.partitions.iter().flat_map(|p| p.iter())
    }
}

impl<T: Send + Sync + 'static> Dataset<T> {
    /// Per-partition transformation; the fallible primitive all other
    /// transformations lower to. `f` receives the partition index and a
    /// borrowed slice of its records.
    pub fn try_map_partitions<U, F>(&self, engine: &Engine, name: &str, f: F) -> Result<Dataset<U>>
    where
        U: Send + Sync + 'static,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(idx, part)| {
                let part = Arc::clone(part);
                let f = Arc::clone(&f);
                move || f(idx, &part)
            })
            .collect();
        let parts = engine.run_stage(name, tasks)?;
        Ok(Dataset::from_partitions(parts))
    }

    /// Per-partition transformation (panics on task failure).
    pub fn map_partitions<U, F>(&self, engine: &Engine, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    {
        unwrap_job(self.try_map_partitions(engine, "map_partitions", f))
    }

    /// In-place per-partition stage: each task receives `&mut [T]` for its
    /// partition and returns one scalar to the driver; **no output dataset
    /// is materialized**. This is the zero-copy primitive for iterated
    /// numeric passes (posterior updates) where the immutable path's
    /// per-stage output allocation dominates.
    ///
    /// # Uniqueness and copy-on-write
    ///
    /// A partition is mutated in place only when its `Arc` handle is
    /// uniquely owned by this dataset (checked per task with
    /// [`Arc::try_unwrap`]). If the handle is shared — a live clone of the
    /// dataset, a held [`Self::partition_handles`] handle — the task clones
    /// the partition and mutates the copy, so other owners never observe
    /// the mutation. Either way `self` ends up owning the updated
    /// partitions. The unique/COW split is recorded on the job's metrics as
    /// [`crate::StageVariant::InPlace`].
    ///
    /// # Fault tolerance
    ///
    /// When [`Engine::fault_tolerance_active`] (retries, speculation, or an
    /// installed fault plan), the zero-copy path is unsound for recovery:
    /// a retried attempt must re-run against **pristine** input, but an
    /// in-place attempt may have half-mutated its partition before dying.
    /// The stage therefore switches to a retry-safe variant: the dataset
    /// keeps its partition handles on the driver and every attempt mutates
    /// a private copy (recorded as all-COW on the job's metrics). First
    /// attempts pay one copy per partition — exactly what COW would have
    /// cost — and retried or speculative attempts are automatically
    /// idempotent and race-free.
    ///
    /// # Errors
    ///
    /// With fault tolerance off, a task failure loses the consumed
    /// partitions with the failed job: the dataset is left **empty** (zero
    /// partitions). Callers that need the pre-stage data after a failure
    /// must clone first. With fault tolerance on, a failed stage leaves the
    /// dataset **unchanged** (pristine pre-stage partitions; no partial
    /// results are leaked).
    pub fn try_map_partitions_in_place<R, F>(
        &mut self,
        engine: &Engine,
        name: &str,
        f: F,
    ) -> Result<Vec<R>>
    where
        T: Clone,
        R: Send + 'static,
        F: Fn(usize, &mut [T]) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        if engine.fault_tolerance_active() {
            return self.map_in_place_retry_safe(engine, name, f);
        }
        let handles = std::mem::take(&mut self.partitions);
        let tasks: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(idx, handle)| {
                let f = Arc::clone(&f);
                move || {
                    let (mut values, unique) = match Arc::try_unwrap(handle) {
                        Ok(values) => (values, true),
                        // Shared handle: copy-on-write so other owners keep
                        // the pre-stage values.
                        Err(shared) => ((*shared).clone(), false),
                    };
                    let result = f(idx, &mut values);
                    (Arc::new(values), result, unique)
                }
            })
            .collect();
        let outputs = engine.run_job(name, tasks)?;
        let mut results = Vec::with_capacity(outputs.len());
        let (mut unique, mut cow) = (0, 0);
        self.partitions = outputs
            .into_iter()
            .map(|(handle, result, was_unique)| {
                if was_unique {
                    unique += 1;
                } else {
                    cow += 1;
                }
                results.push(result);
                handle
            })
            .collect();
        engine
            .metrics()
            .annotate_last_job(crate::StageVariant::InPlace { unique, cow });
        Ok(results)
    }

    /// Retry-safe in-place stage: the driver keeps the pristine handles and
    /// each attempt mutates a private copy, so attempts are idempotent
    /// (retries) and never race each other (speculation). On failure the
    /// dataset is left exactly as it was.
    fn map_in_place_retry_safe<R, F>(
        &mut self,
        engine: &Engine,
        name: &str,
        f: Arc<F>,
    ) -> Result<Vec<R>>
    where
        T: Clone,
        R: Send + 'static,
        F: Fn(usize, &mut [T]) -> R + Send + Sync + 'static,
    {
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(idx, handle)| {
                let handle = Arc::clone(handle);
                let f = Arc::clone(&f);
                move || {
                    // Copy from the pristine handle on *every* attempt; the
                    // driver's copy is never mutated, so a re-run after a
                    // half-complete panic still sees unmutated input.
                    let mut values = (*handle).clone();
                    let result = f(idx, &mut values);
                    (Arc::new(values), result)
                }
            })
            .collect();
        // On failure `self.partitions` has not been touched: pristine.
        let outputs = engine.run_stage(name, tasks)?;
        let cow = outputs.len();
        let mut results = Vec::with_capacity(cow);
        self.partitions = outputs
            .into_iter()
            .map(|(handle, result)| {
                results.push(result);
                handle
            })
            .collect();
        engine
            .metrics()
            .annotate_last_job(crate::StageVariant::InPlace { unique: 0, cow });
        Ok(results)
    }

    /// In-place per-partition stage (panics on task failure); see
    /// [`Self::try_map_partitions_in_place`].
    pub fn map_partitions_in_place<R, F>(&mut self, engine: &Engine, f: F) -> Vec<R>
    where
        T: Clone,
        R: Send + 'static,
        F: Fn(usize, &mut [T]) -> R + Send + Sync + 'static,
    {
        unwrap_job(self.try_map_partitions_in_place(engine, "map_partitions_in_place", f))
    }

    /// Read-only per-partition stage returning one value per partition to
    /// the driver, without materializing an output dataset (Spark's
    /// `runJob`). The lighter sibling of
    /// [`Self::try_map_partitions_in_place`] for aggregations whose
    /// per-partition result is small (sums, histograms, local argmaxes).
    pub fn try_aggregate_partitions<R, F>(
        &self,
        engine: &Engine,
        name: &str,
        f: F,
    ) -> Result<Vec<R>>
    where
        R: Send + 'static,
        F: Fn(usize, &[T]) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(idx, part)| {
                let part = Arc::clone(part);
                let f = Arc::clone(&f);
                move || f(idx, &part)
            })
            .collect();
        engine.run_stage(name, tasks)
    }

    /// Read-only per-partition stage (panics on task failure); see
    /// [`Self::try_aggregate_partitions`].
    pub fn aggregate_partitions<R, F>(&self, engine: &Engine, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &[T]) -> R + Send + Sync + 'static,
    {
        unwrap_job(self.try_aggregate_partitions(engine, "aggregate_partitions", f))
    }

    /// Element-wise map.
    pub fn map<U, F>(&self, engine: &Engine, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        unwrap_job(
            self.try_map_partitions(engine, "map", move |_, part| part.iter().map(&f).collect()),
        )
    }

    /// Keep records matching the predicate.
    pub fn filter<F>(&self, engine: &Engine, f: F) -> Dataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        unwrap_job(self.try_map_partitions(engine, "filter", move |_, part| {
            part.iter().filter(|x| f(x)).cloned().collect()
        }))
    }

    /// Map each record to zero or more outputs.
    pub fn flat_map<U, F, I>(&self, engine: &Engine, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync + 'static,
    {
        unwrap_job(self.try_map_partitions(engine, "flat_map", move |_, part| {
            part.iter().flat_map(&f).collect()
        }))
    }

    /// Run a side-effecting closure over every partition (e.g. to feed
    /// accumulators). Returns after the barrier.
    pub fn for_each_partition<F>(&self, engine: &Engine, f: F)
    where
        F: Fn(usize, &[T]) + Send + Sync + 'static,
    {
        unwrap_job(
            self.try_map_partitions(engine, "for_each", move |idx, part| {
                f(idx, part);
                Vec::<()>::with_capacity(0)
            }),
        );
    }

    /// General two-phase aggregation: fold each partition with `seq` from a
    /// clone of `zero`, then combine partition results with `comb` on the
    /// driver. This is the workhorse action (normalization sums, mass sums,
    /// marginal accumulation all lower to it).
    pub fn aggregate<A, S, C>(&self, engine: &Engine, zero: A, seq: S, comb: C) -> A
    where
        A: Clone + Send + Sync + 'static,
        S: Fn(A, &T) -> A + Send + Sync + 'static,
        C: Fn(A, A) -> A,
    {
        let seq = Arc::new(seq);
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                let seq = Arc::clone(&seq);
                let zero = zero.clone();
                // `zero.clone()` per invocation keeps the task re-runnable
                // (retry/speculation re-invoke the closure).
                move || part.iter().fold(zero.clone(), |acc, x| seq(acc, x))
            })
            .collect();
        let partials = unwrap_job(engine.run_stage("aggregate", tasks));
        partials.into_iter().fold(zero, comb)
    }

    /// Reduce with a binary operation; `None` on an empty dataset.
    pub fn reduce<F>(&self, engine: &Engine, f: F) -> Option<T>
    where
        T: Clone,
        F: Fn(&T, &T) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                let f = Arc::clone(&f);
                move || {
                    let mut iter = part.iter();
                    let first = iter.next()?.clone();
                    Some(iter.fold(first, |acc, x| f(&acc, x)))
                }
            })
            .collect();
        let partials = unwrap_job(engine.run_stage("reduce", tasks));
        partials.into_iter().flatten().reduce(|a, b| f(&a, &b))
    }

    /// Count records (parallel).
    pub fn count(&self, engine: &Engine) -> usize {
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                move || part.len()
            })
            .collect();
        unwrap_job(engine.run_stage("count", tasks))
            .into_iter()
            .sum()
    }

    /// Gather all records to the driver in partition order.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for part in &self.partitions {
            out.extend(part.iter().cloned());
        }
        out
    }

    /// First `n` records in partition order.
    pub fn take(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().take(n).cloned().collect()
    }

    /// Pairwise combination of two datasets with identical partition shapes
    /// (same partition count and per-partition lengths).
    pub fn try_zip_map<U, V, F>(
        &self,
        engine: &Engine,
        other: &Dataset<U>,
        f: F,
    ) -> Result<Dataset<V>>
    where
        U: Send + Sync + 'static,
        V: Send + Sync + 'static,
        F: Fn(&T, &U) -> V + Send + Sync + 'static,
    {
        if self.num_partitions() != other.num_partitions() {
            return Err(EngineError::PartitionMismatch {
                left: self.num_partitions(),
                right: other.num_partitions(),
            });
        }
        for (a, b) in self.partitions.iter().zip(&other.partitions) {
            if a.len() != b.len() {
                return Err(EngineError::PartitionMismatch {
                    left: a.len(),
                    right: b.len(),
                });
            }
        }
        let f = Arc::new(f);
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .zip(&other.partitions)
            .map(|(a, b)| {
                let a = Arc::clone(a);
                let b = Arc::clone(b);
                let f = Arc::clone(&f);
                move || {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| f(x, y))
                        .collect::<Vec<V>>()
                }
            })
            .collect();
        let parts = engine.run_stage("zip_map", tasks)?;
        Ok(Dataset::from_partitions(parts))
    }

    /// Pairwise combination; panics on shape mismatch or task failure.
    pub fn zip_map<U, V, F>(&self, engine: &Engine, other: &Dataset<U>, f: F) -> Dataset<V>
    where
        U: Send + Sync + 'static,
        V: Send + Sync + 'static,
        F: Fn(&T, &U) -> V + Send + Sync + 'static,
    {
        unwrap_job(self.try_zip_map(engine, other, f))
    }

    /// Rebalance into `parts` contiguous partitions.
    pub fn repartition(&self, parts: usize) -> Dataset<T>
    where
        T: Clone,
    {
        Dataset::from_vec(self.collect(), parts)
    }

    /// Concatenate two datasets (partitions of `self` followed by
    /// partitions of `other`).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        Dataset { partitions }
    }

    /// Remove duplicate records (via a shuffle-free driver-side pass;
    /// order of first occurrence is preserved).
    pub fn distinct(&self, parts: usize) -> Dataset<T>
    where
        T: Clone + Eq + std::hash::Hash,
    {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for item in self.iter() {
            if seen.insert(item.clone()) {
                out.push(item.clone());
            }
        }
        Dataset::from_vec(out, parts)
    }

    /// Deterministic subsample: keep each record with probability `frac`,
    /// decided by a per-record hash of `(seed, partition, offset)` — the
    /// Spark-style reproducible Bernoulli sample that needs no RNG state
    /// shared across tasks.
    pub fn sample(&self, engine: &Engine, frac: f64, seed: u64) -> Dataset<T>
    where
        T: Clone,
    {
        assert!((0.0..=1.0).contains(&frac), "fraction {frac} outside [0,1]");
        let threshold = (frac * u64::MAX as f64) as u64;
        unwrap_job(
            self.try_map_partitions(engine, "sample", move |pidx, part| {
                part.iter()
                    .enumerate()
                    .filter(|(off, _)| {
                        let mut h = crate::partitioner::FxHasher::default();
                        use std::hash::Hasher as _;
                        h.write_u64(seed);
                        h.write_usize(pidx);
                        h.write_usize(*off);
                        h.finish() <= threshold
                    })
                    .map(|(_, x)| x.clone())
                    .collect()
            }),
        )
    }
}

fn unwrap_job<T>(result: Result<T>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => panic!("dataset job failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_threads(2))
    }

    #[test]
    fn from_vec_balances() {
        let ds = Dataset::from_vec((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(ds.num_partitions(), 3);
        assert_eq!(ds.partition(0), &[0, 1, 2, 3]);
        assert_eq!(ds.partition(1), &[4, 5, 6]);
        assert_eq!(ds.partition(2), &[7, 8, 9]);
        assert_eq!(ds.len(), 10);
        assert!(!ds.is_empty());
    }

    #[test]
    fn from_vec_more_parts_than_items() {
        let ds = Dataset::from_vec(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.collect(), vec![1, 2]);
    }

    #[test]
    fn map_preserves_order() {
        let e = engine();
        let ds = Dataset::from_vec((0..100).collect::<Vec<i64>>(), 7);
        let out = ds.map(&e, |x| x + 1).collect();
        assert_eq!(out, (1..101).collect::<Vec<i64>>());
    }

    #[test]
    fn filter_and_flat_map() {
        let e = engine();
        let ds = Dataset::from_vec((0..20).collect::<Vec<u32>>(), 4);
        let evens = ds.filter(&e, |x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 10);
        let doubled = ds.flat_map(&e, |x| vec![*x, *x]).count(&e);
        assert_eq!(doubled, 40);
    }

    #[test]
    fn aggregate_sums() {
        let e = engine();
        let ds = Dataset::from_vec((1..=100u64).collect::<Vec<_>>(), 9);
        let sum = ds.aggregate(&e, 0u64, |acc, x| acc + x, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn reduce_max() {
        let e = engine();
        let ds = Dataset::from_vec(vec![3, 9, 2, 7, 5], 3);
        let max = ds.reduce(&e, |a, b| (*a).max(*b)).unwrap();
        assert_eq!(max, 9);
    }

    #[test]
    fn reduce_empty_is_none() {
        let e = engine();
        let ds: Dataset<i32> = Dataset::from_vec(vec![], 4);
        assert!(ds.reduce(&e, |a, b| a + b).is_none());
    }

    #[test]
    fn reduce_with_empty_partitions() {
        let e = engine();
        // 2 items across 5 partitions -> 3 empty partitions.
        let ds = Dataset::from_vec(vec![4, 6], 5);
        assert_eq!(ds.reduce(&e, |a, b| a + b), Some(10));
    }

    #[test]
    fn zip_map_matches_element_wise() {
        let e = engine();
        let a = Dataset::from_vec((0..50).collect::<Vec<i64>>(), 6);
        let b = Dataset::from_vec((0..50).map(|x| x * 10).collect::<Vec<i64>>(), 6);
        let c = a.zip_map(&e, &b, |x, y| x + y).collect();
        assert_eq!(c, (0..50).map(|x| x * 11).collect::<Vec<i64>>());
    }

    #[test]
    fn zip_map_rejects_mismatched_partitions() {
        let e = engine();
        let a = Dataset::from_vec((0..10).collect::<Vec<i64>>(), 2);
        let b = Dataset::from_vec((0..10).collect::<Vec<i64>>(), 3);
        match a.try_zip_map(&e, &b, |x, y| x + y) {
            Err(EngineError::PartitionMismatch { left: 2, right: 3 }) => {}
            other => panic!("unexpected: {:?}", other.map(|d| d.len())),
        }
    }

    #[test]
    fn repartition_preserves_content() {
        let ds = Dataset::from_vec((0..17).collect::<Vec<_>>(), 2);
        let re = ds.repartition(5);
        assert_eq!(re.num_partitions(), 5);
        assert_eq!(re.collect(), (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn take_and_iter() {
        let ds = Dataset::from_vec((0..9).collect::<Vec<_>>(), 3);
        assert_eq!(ds.take(4), vec![0, 1, 2, 3]);
        assert_eq!(ds.iter().count(), 9);
    }

    #[test]
    #[should_panic(expected = "dataset job failed")]
    fn map_propagates_user_panic() {
        let e = engine();
        let ds = Dataset::from_vec(vec![1, 2, 3], 2);
        let _ = ds.map(&e, |x| if *x == 2 { panic!("bad record") } else { *x });
    }

    #[test]
    fn union_concatenates() {
        let a = Dataset::from_vec(vec![1, 2], 2);
        let b = Dataset::from_vec(vec![3, 4, 5], 1);
        let u = a.union(&b);
        assert_eq!(u.collect(), vec![1, 2, 3, 4, 5]);
        assert_eq!(u.num_partitions(), 3);
    }

    #[test]
    fn distinct_preserves_first_occurrence() {
        let ds = Dataset::from_vec(vec![3, 1, 3, 2, 1, 3], 3);
        assert_eq!(ds.distinct(2).collect(), vec![3, 1, 2]);
    }

    #[test]
    fn sample_is_reproducible_and_proportional() {
        let e = engine();
        let ds = Dataset::from_vec((0..10_000).collect::<Vec<u32>>(), 8);
        let a = ds.sample(&e, 0.3, 7).collect();
        let b = ds.sample(&e, 0.3, 7).collect();
        assert_eq!(a, b);
        let frac = a.len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "fraction {frac}");
        let c = ds.sample(&e, 0.3, 8).collect();
        assert_ne!(a, c, "different seeds should differ");
        assert!(ds.sample(&e, 0.0, 1).is_empty());
        assert_eq!(ds.sample(&e, 1.0, 1).len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn sample_validates_fraction() {
        let e = engine();
        let ds = Dataset::from_vec(vec![1], 1);
        let _ = ds.sample(&e, 1.5, 0);
    }

    #[test]
    fn in_place_mutates_without_copy_when_unique() {
        let e = engine();
        let mut ds = Dataset::from_vec((0..100i64).collect::<Vec<_>>(), 4);
        let before: Vec<*const i64> = ds.partition_handles().iter().map(|h| h.as_ptr()).collect();
        let sums = ds.map_partitions_in_place(&e, |_, part| {
            let mut sum = 0i64;
            for x in part.iter_mut() {
                *x *= 2;
                sum += *x;
            }
            sum
        });
        assert_eq!(sums.iter().sum::<i64>(), 99 * 100);
        assert_eq!(ds.collect(), (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Unique handles: the very same buffers were mutated, no copies.
        let after: Vec<*const i64> = ds.partition_handles().iter().map(|h| h.as_ptr()).collect();
        assert_eq!(before, after);
        let jobs = e.metrics().jobs();
        assert_eq!(
            jobs.last().unwrap().variant,
            crate::StageVariant::InPlace { unique: 4, cow: 0 }
        );
    }

    #[test]
    fn in_place_copies_on_write_when_shared() {
        let e = engine();
        let mut ds = Dataset::from_vec((0..40i64).collect::<Vec<_>>(), 4);
        let snapshot = ds.clone(); // shares every handle
        let results = ds.map_partitions_in_place(&e, |idx, part| {
            for x in part.iter_mut() {
                *x += 1;
            }
            idx
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
        // The mutation landed in `ds`...
        assert_eq!(ds.collect(), (1..41).collect::<Vec<_>>());
        // ...while the shared snapshot is untouched (COW).
        assert_eq!(snapshot.collect(), (0..40).collect::<Vec<_>>());
        let jobs = e.metrics().jobs();
        assert_eq!(
            jobs.last().unwrap().variant,
            crate::StageVariant::InPlace { unique: 0, cow: 4 }
        );
    }

    #[test]
    fn in_place_mixed_uniqueness_is_per_partition() {
        let e = engine();
        let mut ds = Dataset::from_vec((0..40i64).collect::<Vec<_>>(), 4);
        // Share only one partition's handle.
        let held = Arc::clone(&ds.partition_handles()[2]);
        ds.map_partitions_in_place(&e, |_, part| {
            for x in part.iter_mut() {
                *x = -*x;
            }
        });
        assert_eq!(ds.collect(), (0..40).map(|x| -x).collect::<Vec<_>>());
        assert_eq!(*held, (20..30).collect::<Vec<_>>());
        let jobs = e.metrics().jobs();
        assert_eq!(
            jobs.last().unwrap().variant,
            crate::StageVariant::InPlace { unique: 3, cow: 1 }
        );
    }

    #[test]
    fn in_place_failure_empties_dataset() {
        let e = engine();
        let mut ds = Dataset::from_vec((0..10i64).collect::<Vec<_>>(), 2);
        let err = ds.try_map_partitions_in_place(&e, "boom", |idx, _part| {
            if idx == 1 {
                panic!("bad partition");
            }
        });
        assert!(err.is_err());
        assert_eq!(ds.num_partitions(), 0);
        assert!(ds.is_empty());
    }

    #[test]
    fn in_place_failure_restores_pristine_under_fault_tolerance() {
        let e = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_retry(crate::RetryPolicy::clamped(2)),
        );
        let mut ds = Dataset::from_vec((0..10i64).collect::<Vec<_>>(), 2);
        // Mutates its copy before dying on every attempt: the partial
        // results must never land in the dataset.
        let err = ds
            .try_map_partitions_in_place(&e, "boom", |idx, part| {
                for x in part.iter_mut() {
                    *x = -1;
                }
                if idx == 1 {
                    panic!("bad partition");
                }
            })
            .unwrap_err();
        match err {
            EngineError::TaskPanicked {
                stage,
                task,
                attempts,
                ..
            } => {
                assert_eq!(stage, "boom");
                assert_eq!(task, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unchanged, not emptied and not partially mutated.
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn in_place_recovers_from_injected_panic_bit_for_bit() {
        let clean = {
            let e = engine();
            let mut ds = Dataset::from_vec((0..40i64).collect::<Vec<_>>(), 4);
            ds.map_partitions_in_place(&e, |_, part| {
                for x in part.iter_mut() {
                    *x = x.wrapping_mul(17) ^ 3;
                }
            });
            ds.collect()
        };
        let e = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_retry(crate::RetryPolicy::clamped(2)),
        );
        e.set_fault_plan(crate::FaultPlan::new().panic_at("hot", 2, 0));
        let mut ds = Dataset::from_vec((0..40i64).collect::<Vec<_>>(), 4);
        ds.try_map_partitions_in_place(&e, "hot", |_, part| {
            for x in part.iter_mut() {
                *x = x.wrapping_mul(17) ^ 3;
            }
        })
        .unwrap();
        assert_eq!(ds.collect(), clean);
        let job = e.metrics().jobs().pop().unwrap();
        assert!(job.succeeded);
        assert_eq!(job.faults.injected_panics, 1);
        assert_eq!(job.faults.retries, 1);
        // Retry-safe stages run all-COW from pristine handles.
        assert_eq!(
            job.variant,
            crate::StageVariant::InPlace { unique: 0, cow: 4 }
        );
    }

    #[test]
    fn immutable_stage_recovers_from_injected_panic() {
        let e = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_retry(crate::RetryPolicy::clamped(3)),
        );
        e.set_fault_plan(crate::FaultPlan::new().panic_at("map", 0, 0));
        let ds = Dataset::from_vec((0..30i64).collect::<Vec<_>>(), 3);
        let out = ds.map(&e, |x| x + 1).collect();
        assert_eq!(out, (1..31).collect::<Vec<_>>());
        // Make sure the fault actually fired and was absorbed somewhere in
        // this engine's jobs.
        let totals = e.metrics().fault_totals();
        assert_eq!(totals.injected_panics, 1);
        assert_eq!(totals.retries, 1);
    }

    #[test]
    fn aggregate_partitions_returns_per_partition_results() {
        let e = engine();
        let ds = Dataset::from_vec((0..100u64).collect::<Vec<_>>(), 5);
        let sums = ds.aggregate_partitions(&e, |_, part| part.iter().sum::<u64>());
        assert_eq!(sums.len(), 5);
        assert_eq!(sums.iter().sum::<u64>(), 4950);
        // Read-only: the dataset is intact and the stage is immutable.
        assert_eq!(ds.len(), 100);
        let jobs = e.metrics().jobs();
        assert_eq!(jobs.last().unwrap().variant, crate::StageVariant::Immutable);
    }

    #[test]
    fn into_partitions_moves_handles_out() {
        let ds = Dataset::from_vec((0..6i32).collect::<Vec<_>>(), 2);
        let handles = ds.into_partitions();
        assert_eq!(handles.len(), 2);
        let owned: Vec<Vec<i32>> = handles
            .into_iter()
            .map(|h| Arc::try_unwrap(h).expect("unique"))
            .collect();
        assert_eq!(owned, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn for_each_partition_side_effects() {
        let e = engine();
        let ds = Dataset::from_vec((0..100u64).collect::<Vec<_>>(), 8);
        let acc = Arc::new(crate::SumAccumulator::new());
        let acc2 = Arc::clone(&acc);
        ds.for_each_partition(&e, move |_, part| {
            acc2.add(part.iter().map(|&x| x as f64).sum());
        });
        assert_eq!(acc.value(), 4950.0);
    }
}
