//! # sbgt-engine — partitioned in-memory dataflow engine
//!
//! SBGT (IPDPS '23) scales Bayesian group testing by distributing the
//! exponential lattice state space over Apache Spark. This crate is the
//! Spark substitute used by the Rust reproduction: an in-process,
//! partition-parallel dataflow engine that mirrors the Spark primitives the
//! paper relies on:
//!
//! * [`Engine`] — the driver: owns a [`ThreadPool`] of executor threads and a
//!   [`MetricsRegistry`] recording per-task and per-job timings (the
//!   equivalent of Spark's stage/task UI, used by the benchmark harness).
//! * [`Dataset`] — an immutable partitioned collection (the RDD analogue)
//!   with `map`, `filter`, `map_partitions`, `reduce`, `aggregate`, `zip`,
//!   and shuffle-based `repartition`/`group_by_key` operations.
//! * [`Broadcast`] — read-only variables shared with every task (likelihood
//!   tables, pool masks).
//! * [`accumulator`] — commutative counters/sums updated from tasks
//!   (posterior normalization constants, mass accumulators).
//!
//! Everything runs inside one process: "executors" are worker threads and a
//! "cluster" is a thread count, per the reproduction guidance to rebuild the
//! distribution layer on rayon/threads. The dataflow semantics (pure tasks
//! over partitions, barriers between stages, broadcast of read-only state)
//! match what the SBGT paper's dataflow needs, so the scaling structure of
//! the original system is preserved.
//!
//! ## Immutable vs in-place stages
//!
//! Stages come in two execution variants, recorded per job as a
//! [`StageVariant`] in the metrics registry and rendered in the timeline:
//!
//! * **Immutable** (`map_partitions` and everything lowering to it): tasks
//!   read shared partition handles and materialize new output vectors. Any
//!   number of dataset clones can coexist; nothing is ever mutated. This is
//!   the Spark-faithful default, but each stage allocates output the size
//!   of its input — ruinous for a `2^N` posterior updated hundreds of times
//!   per episode.
//! * **In-place** ([`Dataset::map_partitions_in_place`] /
//!   [`Dataset::try_map_partitions_in_place`]): tasks receive `&mut [T]`
//!   and return only a per-partition scalar; no output dataset is
//!   materialized. Mutating through a shared `Arc` would be unsound, so
//!   each task proves uniqueness at runtime with [`Arc::try_unwrap`]:
//!   a partition whose handle is uniquely owned by this dataset is mutated
//!   in place (zero copies); a partition whose handle is shared — a live
//!   [`Dataset::clone`], an outstanding [`Dataset::partition_handles`]
//!   borrow kept alive, a concurrent reader — is **copied first**
//!   (copy-on-write), so observers of the old handle never see the
//!   mutation. The per-stage unique/COW split is what
//!   [`StageVariant::InPlace`] records.
//!
//! The uniqueness rule means in-place stages are *semantically* identical
//! to running the same closure immutably and replacing the dataset — only
//! the allocation profile differs. The single caveat: if an in-place stage
//! fails (task panic), the consumed partitions are gone and the dataset is
//! left empty; see `try_map_partitions_in_place`.
//!
//! ## Example
//!
//! ```
//! use sbgt_engine::{Engine, EngineConfig, Dataset};
//!
//! let engine = Engine::new(EngineConfig::default().with_threads(2));
//! let ds = Dataset::from_vec((0u64..1000).collect::<Vec<_>>(), 8);
//! let sum: u64 = ds
//!     .map(&engine, |x| x * 2)
//!     .aggregate(&engine, 0u64, |acc, x| acc + x, |a, b| a + b);
//! assert_eq!(sum, 999 * 1000);
//! ```

pub mod accumulator;
pub mod broadcast;
pub mod config;
pub mod dataset;
pub mod error;
pub mod keyed;
pub mod metrics;
pub mod partitioner;
pub mod pool;
pub mod retry;
pub mod shuffle;
pub mod timeline;

pub use accumulator::{CountAccumulator, SumAccumulator};
pub use broadcast::Broadcast;
pub use config::EngineConfig;
pub use dataset::Dataset;
pub use error::{EngineError, Result};
pub use metrics::{JobMetrics, MetricsRegistry, StageVariant, TaskMetrics};
pub use partitioner::{partition_ranges, HashPartitioner, Partitioner, RangePartitioner};
pub use pool::ThreadPool;
pub use retry::RetryPolicy;

use std::sync::Arc;

/// The driver of the dataflow engine.
///
/// An `Engine` owns a pool of executor threads and a metrics registry. All
/// [`Dataset`] operations take `&Engine` and submit one task per partition to
/// the pool; the engine records wall-clock timings per task and per job so
/// benchmarks can report Spark-style stage breakdowns.
///
/// `Engine` is cheap to clone conceptually — wrap it in [`Arc`] if multiple
/// owners are needed; all of its methods take `&self`.
pub struct Engine {
    pool: ThreadPool,
    config: EngineConfig,
    metrics: Arc<MetricsRegistry>,
}

impl Engine {
    /// Create an engine with the given configuration, spawning
    /// `config.threads` executor threads immediately.
    pub fn new(config: EngineConfig) -> Self {
        let pool = ThreadPool::new(config.threads, "sbgt-exec");
        Engine {
            pool,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Engine with default configuration (one executor per available core).
    pub fn default_local() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of executor threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Default partition count for datasets created through this engine:
    /// `partitions_per_thread * threads`, at least 1.
    pub fn default_partitions(&self) -> usize {
        (self.config.partitions_per_thread * self.pool.threads()).max(1)
    }

    /// The metrics registry recording job/task timings.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The underlying executor pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Run a named job: one closure per task, results returned in task order.
    ///
    /// This is the primitive every `Dataset` operation lowers to. Task
    /// panics are caught and surfaced as [`EngineError::TaskPanicked`]; the
    /// job's timing is recorded in the metrics registry whether it succeeds
    /// or fails.
    pub fn run_job<T, F>(&self, name: &str, tasks: Vec<F>) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let start = std::time::Instant::now();
        let n_tasks = tasks.len();
        let outcome = self.pool.run_tasks(tasks);
        let elapsed = start.elapsed();
        match outcome {
            Ok(results) => {
                let task_metrics = results
                    .iter()
                    .enumerate()
                    .map(|(i, r)| TaskMetrics {
                        index: i,
                        duration: r.duration,
                    })
                    .collect();
                self.metrics.record_job(JobMetrics {
                    name: name.to_string(),
                    tasks: task_metrics,
                    wall: elapsed,
                    succeeded: true,
                    variant: StageVariant::Immutable,
                });
                Ok(results.into_iter().map(|r| r.value).collect())
            }
            Err(e) => {
                self.metrics.record_job(JobMetrics {
                    name: name.to_string(),
                    tasks: Vec::with_capacity(0),
                    wall: elapsed,
                    succeeded: false,
                    variant: StageVariant::Immutable,
                });
                let _ = n_tasks;
                Err(e)
            }
        }
    }

    /// Broadcast a read-only value to tasks (Spark `sc.broadcast`).
    pub fn broadcast<T: Send + Sync + 'static>(&self, value: T) -> Broadcast<T> {
        self.metrics.record_broadcast();
        Broadcast::new(value)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.pool.threads())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_runs_simple_job() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        let out = engine.run_job("squares", tasks).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn engine_records_metrics() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        engine
            .run_job("a", (0..4).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        engine
            .run_job("b", (0..2).map(|i| move || i).collect::<Vec<_>>())
            .unwrap();
        let jobs = engine.metrics().jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "a");
        assert_eq!(jobs[0].tasks.len(), 4);
        assert_eq!(jobs[1].name, "b");
        assert!(jobs.iter().all(|j| j.succeeded));
    }

    #[test]
    fn engine_surfaces_task_panic() {
        let engine = Engine::new(EngineConfig::default().with_threads(2));
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
        let err = engine.run_job("panicky", tasks).unwrap_err();
        match err {
            EngineError::TaskPanicked { .. } => {}
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // Pool must stay usable after a panic.
        let ok = engine.run_job("after", vec![|| 42]).unwrap();
        assert_eq!(ok, vec![42]);
    }

    #[test]
    fn default_partitions_positive() {
        let engine = Engine::new(EngineConfig::default().with_threads(1));
        assert!(engine.default_partitions() >= 1);
    }
}
